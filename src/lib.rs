//! # uavnet — Coverage Maximization of Heterogeneous UAV Networks
//!
//! A faithful, laptop-scale reproduction of *"Coverage Maximization of
//! Heterogeneous UAV Networks"* (Li, Xiang, Xu et al., IEEE ICDCS 2023).
//!
//! This façade crate re-exports the entire workspace:
//!
//! * [`geom`] — disaster-zone geometry and the hovering-plane grid;
//! * [`channel`] — air-to-ground (LoS/NLoS) and UAV-to-UAV channel models;
//! * [`graph`] — BFS hop metrics, MSTs, Eulerian paths, connectivity;
//! * [`flow`] — integral max-flow (Dinic) with incremental augmentation;
//! * [`matroid`] — matroids and lazy-greedy submodular maximization;
//! * [`workload`] — fat-tailed scenario and heterogeneous fleet generation;
//! * [`core`] — the maximum connected coverage problem, the optimal user
//!   assignment (Lemma 1), Algorithm 1 (`L_max`, `p*`), and the
//!   `O(√(s/K))`-approximation `approAlg` (Algorithm 2);
//! * [`baselines`] — the four comparison algorithms of the evaluation;
//! * [`obs`] — the tracing/metrics facade every pipeline phase reports
//!   into (compiled to no-ops unless the `obs` cargo feature is on).
//!
//! # Quickstart
//!
//! ```
//! use uavnet::workload::{ScenarioSpec, UserDistribution};
//! use uavnet::core::{ApproxConfig, approx_alg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small disaster zone with 60 users and 4 heterogeneous UAVs.
//! let spec = ScenarioSpec::builder()
//!     .area_m(1_200.0, 1_200.0)
//!     .cell_m(300.0)
//!     .users(60)
//!     .distribution(UserDistribution::FatTailed { clusters: 3, zipf_exponent: 1.2 })
//!     .uavs(4)
//!     .capacity_range(10, 40)
//!     .seed(7)
//!     .build()?;
//! let instance = spec.instantiate()?;
//! let solution = approx_alg(&instance, &ApproxConfig::with_s(1))?;
//! assert!(solution.served_users() > 0);
//! solution.validate(&instance)?; // capacity, rate and connectivity checks
//! # Ok(())
//! # }
//! ```

pub use uavnet_baselines as baselines;
pub use uavnet_channel as channel;
pub use uavnet_core as core;
pub use uavnet_flow as flow;
pub use uavnet_geom as geom;
pub use uavnet_graph as graph;
pub use uavnet_matroid as matroid;
pub use uavnet_obs as obs;
pub use uavnet_workload as workload;
