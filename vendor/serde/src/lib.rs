//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public model
//! types as an API affordance but never serializes anything (there is
//! no `serde_json` in the dependency tree). This stub keeps the derive
//! attributes resolving without registry access: the traits are empty
//! and blanket-implemented, and the re-exported derive macros expand to
//! nothing.

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
