//! Offline stand-in for `proptest`.
//!
//! Provides the API surface this workspace's property tests use —
//! `proptest!`, `prop_compose!`, `prop_oneof!`, range/`Just`/tuple/
//! `collection::vec`/`option::of` strategies and the `prop_assert*`
//! macros — as plain deterministic random testing. Each test runs
//! `ProptestConfig::cases` iterations with an RNG seeded from the test
//! name, so failures reproduce exactly. **No shrinking** is performed:
//! a failing case panics with the sampled values' debug output left to
//! the assertion message.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type. The stub samples
    /// directly; there is no shrink tree.
    pub trait Strategy {
        /// The type of value produced.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                    let r = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                    (start as $wide).wrapping_add(r as $wide) as $t
                }
            }
        )*};
    }

    int_strategy!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + rng.unit_f64() as $t * (end - start)
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );

    /// Samples by calling a closure — the building block behind
    /// `prop_compose!`.
    pub struct FnStrategy<F>(F);

    impl<F> FnStrategy<F> {
        /// Wraps a sampling function.
        pub fn new<T>(f: F) -> Self
        where
            F: Fn(&mut TestRng) -> T,
        {
            FnStrategy(f)
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Boxes a strategy as a trait object (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Uniform choice among boxed strategies — built by `prop_oneof!`.
    pub struct OneOf<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// Builds from a non-empty list of alternatives.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: an exact size or a
    /// (half-open / inclusive) range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option`s: `None` one time in four.
    pub struct OptionStrategy<S>(S);

    /// `Option` strategy over an inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honored by the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each `proptest!` test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xoshiro256++ RNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, SplitMix64-expanded.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut x = h;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Skips the current case when the assumption fails. The stub expands
/// test bodies inline in the per-case loop, so this is a `continue`;
/// skipped cases still count toward `cases`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a condition inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Defines a function returning a composite strategy. Supports the
/// one- and two-stage (`flat_map`-style) forms the real macro offers;
/// the stub samples the stages sequentially inside one closure.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($params:tt)*)
            ($($f1:ident in $s1:expr),+ $(,)?)
            ($($f2:ident in $s2:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($params)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $f1 = $crate::strategy::Strategy::sample(&($s1), rng);)+
                $(let $f2 = $crate::strategy::Strategy::sample(&($s2), rng);)+
                $body
            })
        }
    };
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($params:tt)*)
            ($($f1:ident in $s1:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($params)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |rng: &mut $crate::test_runner::TestRng| {
                $(let $f1 = $crate::strategy::Strategy::sample(&($s1), rng);)+
                $body
            })
        }
    };
}

/// Defines property tests: each runs `cases` deterministic random
/// iterations of its body with fresh samples per iteration.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;
    use crate::test_runner::TestRng;

    prop_compose! {
        fn pairs()(a in 0usize..10)(a in Just(a), b in a..a + 10) -> (usize, usize) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn composed_pairs_ordered((a, b) in pairs()) {
            prop_assert!(b >= a && b < a + 10);
        }

        #[test]
        fn vectors_respect_size(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("same-name");
        let mut b = TestRng::deterministic("same-name");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
