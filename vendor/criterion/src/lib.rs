//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches
//! use (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `black_box`,
//! `Throughput`) with straightforward wall-clock timing: a short
//! warm-up, then `sample_size` timed samples, reporting mean/min/max
//! to stdout. There is no statistical analysis, HTML report, or
//! baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (printed alongside the timing when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs closures under timing, recording one [`Duration`] per sample.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then `sample_size` timed runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2.min(self.samples) {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, times: &[Duration], throughput: Option<Throughput>) {
    let total: Duration = times.iter().sum();
    let mean = total / times.len().max(1) as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let extra = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{group}/{id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples){extra}",
        times.len()
    );
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchId>, mut f: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        let start = Instant::now();
        f(&mut b);
        if b.times.is_empty() {
            // The closure never called `iter`; report its wall clock.
            b.times.push(start.elapsed());
        }
        report(&self.name, &id.into().0, &b.times, self.throughput);
        self
    }

    /// Benchmarks a closure against one input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        let start = Instant::now();
        f(&mut b, input);
        if b.times.is_empty() {
            b.times.push(start.elapsed());
        }
        report(&self.name, &id.into().0, &b.times, self.throughput);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// String-or-`BenchmarkId` conversion for `bench_*` identifiers.
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<R>(&mut self, id: &str, f: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, as the real macro does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups (CLI args are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
