//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The vendored `serde` stub blanket-implements its (empty) traits, so
//! these derives only need to exist for attribute resolution — they
//! emit nothing.

use proc_macro::TokenStream;

/// Emits nothing; the stub `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing; the stub `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
