//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the `rand` API this workspace uses —
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open and inclusive integer/float
//! ranges, [`Rng::gen_bool`] and [`Rng::gen`] for `f64`/`f32` — on a
//! xoshiro256++ core seeded through SplitMix64. Streams are
//! deterministic per seed but are **not** bit-compatible with the real
//! crate; everything in-tree treats the RNG as an arbitrary
//! deterministic source, so only reproducibility matters.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples a value from the standard distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by widening multiply (tiny modulo
/// bias, irrelevant for test workloads).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = (u128::from(rng.next_u64()) * span) >> 64;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// A standard-distribution sample (uniform `[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the same family the real `SmallRng` uses on
    /// 64-bit targets (different seeding, so different streams).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core documents.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the stub backs `StdRng` with the same core.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
