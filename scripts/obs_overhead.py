#!/usr/bin/env python3
"""Measure the runtime cost of the uavnet-obs instrumentation.

Usage: obs_overhead.py [--reps N] [--rounds N] [--out PATH] [--check]

Compares the quick-scale sweep report across three configurations:

* ``off``          — instrumentation compiled out (no `obs` feature);
* ``on-idle``      — compiled in, **no session recording**. This is
  the configuration every non-benchmark user of an obs-enabled build
  pays for, so its overhead is the contract: every probe must
  amortize to one relaxed atomic load of the session-active flag;
* ``on-recording`` — compiled in and recording (counters, spans,
  latency histograms, event log). Allowed to cost more; reported so
  regressions are visible, not gated.

Measurement protocol: both binaries are built once up front, then the
three configurations run in alternating rounds (off, idle, recording,
off, idle, ...) and each configuration keeps the **minimum**
`wall_ns_min` over all its rounds. The double-min (min of reps within
a process, min over processes) is what makes a 2% gate meaningful on
a noisy machine: scheduler interference and frequency scaling only
ever *add* time, so the minima converge to the true cost while means
drift with load. A single-process-per-config protocol shows 10%+
phantom "overhead" from process-level noise alone.

Writes a JSON report (default ``BENCH_obs_overhead.json``) with the
minima and the overhead ratios vs ``off``. With ``--check``, exits
non-zero if the **aggregate** on-idle ratio — summed minima across
the `s` sweep — exceeds 1.02 (the ≤ 2% budget asserted in the CI
perf job). The gate is aggregate rather than per-`s` because the
shortest runs (~100 µs) carry per-binary code-alignment noise of the
same magnitude as the budget; the sum weights each run by the number
of probes it actually executes. Per-`s` ratios are still reported.
"""

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

IDLE_BUDGET = 1.02

CONFIGS = ("off", "on-idle", "on-recording")


def build(features, dest):
    cmd = ["cargo", "build", "--release", "-q", "-p", "uavnet-bench",
           "--bin", "sweep_report", *features]
    print(f"obs_overhead: {' '.join(cmd)}", file=sys.stderr)
    subprocess.run(cmd, check=True)
    meta = subprocess.run(
        ["cargo", "metadata", "--format-version", "1", "--no-deps"],
        check=True, capture_output=True, text=True)
    target_dir = json.loads(meta.stdout)["target_directory"]
    shutil.copy2(Path(target_dir) / "release" / "sweep_report", dest)


def run_once(binary, name, reps, threads, workdir):
    out = Path(workdir) / f"sweep_{name}.json"
    cmd = [str(binary), "--scale", "quick", "--reps", str(reps),
           "--threads", str(threads), "--out", str(out)]
    if name == "on-recording":
        cmd += ["--obs-metrics", str(Path(workdir) / "metrics.json")]
    subprocess.run(cmd, check=True, stderr=subprocess.DEVNULL)
    report = json.loads(out.read_text())
    return {run["s"]: run["wall_ns_min"]
            for scale in report["scales"] for run in scale["runs"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--reps", type=int, default=20)
    ap.add_argument("--rounds", type=int, default=5)
    ap.add_argument("--threads", type=int, default=2)
    ap.add_argument("--out", default="BENCH_obs_overhead.json")
    ap.add_argument("--check", action="store_true",
                    help=f"fail if the aggregate on-idle ratio exceeds {IDLE_BUDGET}")
    args = ap.parse_args()

    with tempfile.TemporaryDirectory() as workdir:
        binaries = {
            "off": Path(workdir) / "sweep_report_off",
            "on-idle": Path(workdir) / "sweep_report_obs",
        }
        binaries["on-recording"] = binaries["on-idle"]
        build([], binaries["off"])
        build(["--features", "obs"], binaries["on-idle"])

        mins = {name: {} for name in CONFIGS}
        for rnd in range(args.rounds):
            for name in CONFIGS:
                got = run_once(binaries[name], name, args.reps,
                               args.threads, workdir)
                for s, ns in got.items():
                    cur = mins[name].get(s)
                    mins[name][s] = ns if cur is None else min(cur, ns)
            print(f"obs_overhead: round {rnd + 1}/{args.rounds} done",
                  file=sys.stderr)

    off = mins["off"]
    rows = []
    for s in sorted(off):
        row = {"s": s, "off_wall_ns_min": off[s]}
        for name in ("on-idle", "on-recording"):
            ns = mins[name][s]
            row[f"{name.replace('-', '_')}_wall_ns_min"] = ns
            row[f"{name.replace('-', '_')}_ratio"] = round(ns / off[s], 4)
        rows.append(row)

    totals = {name: sum(mins[name].values()) for name in CONFIGS}
    idle_ratio = round(totals["on-idle"] / totals["off"], 4)
    recording_ratio = round(totals["on-recording"] / totals["off"], 4)

    report = {
        "benchmark": "obs_overhead",
        "scale": "quick",
        "reps": args.reps,
        "rounds": args.rounds,
        "threads": args.threads,
        "statistic": ("min over rounds of wall_ns_min "
                      "(alternating-round double-min protocol)"),
        "idle_budget_ratio": IDLE_BUDGET,
        "aggregate": {
            "off_wall_ns_min_total": totals["off"],
            "on_idle_ratio": idle_ratio,
            "on_recording_ratio": recording_ratio,
        },
        "regenerate": "python3 scripts/obs_overhead.py",
        "runs": rows,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for row in rows:
        print(f"s={row['s']}: on-idle {row['on_idle_ratio']:.4f}x, "
              f"on-recording {row['on_recording_ratio']:.4f}x")
    status = "ok" if idle_ratio <= IDLE_BUDGET else "OVER BUDGET"
    print(f"aggregate: on-idle {idle_ratio:.4f}x, "
          f"on-recording {recording_ratio:.4f}x [{status}]")
    print(f"obs_overhead: wrote {args.out}")
    if args.check and idle_ratio > IDLE_BUDGET:
        print(f"obs_overhead: aggregate on-idle overhead exceeds {IDLE_BUDGET}",
              file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
