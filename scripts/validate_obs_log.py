#!/usr/bin/env python3
"""Validate a uavnet-obs JSON-lines event log and metrics snapshot.

Usage: validate_obs_log.py EVENTS.jsonl [METRICS.json]

Checks the `uavnet-obs/1` schema contract that downstream tooling
(diffing two run logs, the CI artifact consumers) relies on:

* every line is a self-contained JSON object with integer `seq`,
  integer `t_ns` and a known `type`;
* `seq` starts at 0 and increases strictly; `t_ns` never decreases;
* the log opens with exactly one `session_start` carrying the schema
  id and closes with exactly one `session_end`;
* `span` lines carry `name` (string) and `ns` (int); `counter` lines
  carry `name` and `value`; `run` lines carry `name` and a flat
  string->int `fields` object;
* the snapshot (if given) carries the same schema id and its counters
  equal the final `counter` events of the log.

Exits non-zero with a line-numbered message on the first violation.
"""

import json
import sys

SCHEMA = "uavnet-obs/1"
TYPES = {"session_start", "session_end", "span", "counter", "run"}


def fail(msg):
    print(f"validate_obs_log: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_events(path):
    events = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(f"{path}:{lineno}: blank line")
            try:
                e = json.loads(line)
            except json.JSONDecodeError as err:
                fail(f"{path}:{lineno}: invalid JSON: {err}")
            for key, ty in (("seq", int), ("t_ns", int), ("type", str)):
                if not isinstance(e.get(key), ty):
                    fail(f"{path}:{lineno}: missing/mistyped {key!r}")
            if e["type"] not in TYPES:
                fail(f"{path}:{lineno}: unknown type {e['type']!r}")
            if e["type"] == "session_start" and e.get("schema") != SCHEMA:
                fail(f"{path}:{lineno}: schema {e.get('schema')!r} != {SCHEMA!r}")
            if e["type"] == "span":
                if not isinstance(e.get("name"), str) or not isinstance(e.get("ns"), int):
                    fail(f"{path}:{lineno}: span needs string name and int ns")
            if e["type"] == "counter":
                if not isinstance(e.get("name"), str) or not isinstance(e.get("value"), int):
                    fail(f"{path}:{lineno}: counter needs string name and int value")
            if e["type"] == "run":
                fields = e.get("fields")
                if not isinstance(e.get("name"), str) or not isinstance(fields, dict):
                    fail(f"{path}:{lineno}: run needs string name and fields object")
                for k, v in fields.items():
                    if not isinstance(k, str) or not isinstance(v, int):
                        fail(f"{path}:{lineno}: run field {k!r} must map string->int")
            events.append((lineno, e))

    if not events:
        fail(f"{path}: empty log")
    for (_, prev), (lineno, cur) in zip(events, events[1:]):
        if cur["seq"] <= prev["seq"]:
            fail(f"{path}:{lineno}: seq {cur['seq']} not after {prev['seq']}")
        if cur["t_ns"] < prev["t_ns"]:
            fail(f"{path}:{lineno}: t_ns went backwards")
    starts = [e for _, e in events if e["type"] == "session_start"]
    ends = [e for _, e in events if e["type"] == "session_end"]
    if len(starts) != 1 or events[0][1]["type"] != "session_start":
        fail(f"{path}: expected exactly one leading session_start")
    if len(ends) != 1 or events[-1][1]["type"] != "session_end":
        fail(f"{path}: expected exactly one trailing session_end")
    if events[0][1]["seq"] != 0:
        fail(f"{path}: session_start must have seq 0")
    return {e["name"]: e["value"] for _, e in events if e["type"] == "counter"}


def validate_metrics(path, final_counters):
    with open(path) as f:
        snap = json.load(f)
    if snap.get("schema") != SCHEMA:
        fail(f"{path}: schema {snap.get('schema')!r} != {SCHEMA!r}")
    counters = snap.get("counters")
    phases = snap.get("phases")
    if not isinstance(counters, dict) or not isinstance(phases, dict):
        fail(f"{path}: needs counters and phases objects")
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name!r} not a non-negative int")
    for name, p in phases.items():
        if not isinstance(p.get("total_ns"), int) or not isinstance(p.get("count"), int):
            fail(f"{path}: phase {name!r} needs int total_ns and count")
    if counters != final_counters:
        diff = {
            k: (final_counters.get(k), counters.get(k))
            for k in set(counters) | set(final_counters)
            if counters.get(k) != final_counters.get(k)
        }
        fail(f"{path}: snapshot counters diverge from the event log: {diff}")


def main():
    if len(sys.argv) not in (2, 3):
        fail("usage: validate_obs_log.py EVENTS.jsonl [METRICS.json]")
    final_counters = validate_events(sys.argv[1])
    if len(sys.argv) == 3:
        validate_metrics(sys.argv[2], final_counters)
    print(
        f"validate_obs_log: ok — {len(final_counters)} counters, "
        f"schema {SCHEMA}"
    )


if __name__ == "__main__":
    main()
