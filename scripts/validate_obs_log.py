#!/usr/bin/env python3
"""Validate a uavnet-obs JSON-lines event log and metrics snapshot.

Usage: validate_obs_log.py EVENTS.jsonl [METRICS.json] [--single-root]

Accepts every schema generation (`uavnet-obs/1` through
`uavnet-obs/3`) and checks the contract downstream tooling (obs_diff,
the CI artifact consumers) relies on.

Common to all schema generations:

* every line is a self-contained JSON object with integer `seq`,
  integer `t_ns` and a known `type`;
* `seq` starts at 0 and increases strictly; `t_ns` never decreases;
* the log opens with exactly one `session_start` carrying the schema
  id and closes with exactly one `session_end`;
* `span` lines carry `name` (string) and `ns` (int); `counter` lines
  carry `name` and `value`; `run` lines carry `name` and a flat
  string->int `fields` object;
* the snapshot (if given) carries the same schema id and its counters
  equal the final `counter` events of the log.

Additional `uavnet-obs/2` checks (also applied to `uavnet-obs/3`):

* the `session_start` header carries provenance: string `git_sha`,
  string `features`, int `threads`, and an `instance_fingerprint`
  formatted as an 18-char `0x`-prefixed hex string;
* `span` lines carry a unique positive int `id`, `self_ns` with
  `0 <= self_ns <= ns`, and an optional int `parent_id` that
  references another span's `id` with `parent_id < id` (ids are
  allocated on span *entry*, so a parent always has the smaller id
  even though its event line — written on *exit* — appears later;
  the ordering also makes the parent relation acyclic by
  construction);
* with `--single-root`, exactly one span has no `parent_id` (the log
  is one rooted tree, as `sweep_report` produces);
* `hist` lines carry int `count`/`sum_ns`/`max_ns` and `buckets` as
  [upper_bound, cumulative_count] pairs with strictly increasing
  bounds and monotone non-decreasing cumulative counts ending at
  `count`;
* the snapshot's `provenance` equals the log header's, its phases
  report `self_ns <= total_ns` plus p50/p90/p99/max percentiles when
  non-empty, and its `hists` section agrees with the log's trailing
  `hist` events where names coincide.

Additional `uavnet-obs/3` checks:

* `span` lines carry a non-negative int `tid` (stable per-thread
  ordinal, so cross-thread span parenting is reconstructible);
* `gauge` lines carry `name` and a non-negative int `value`;
* the snapshot carries a `gauges` object agreeing with the log's
  trailing `gauge` events.

Exits non-zero with a line-numbered message on the first violation.
"""

import json
import re
import sys

SCHEMAS = ("uavnet-obs/1", "uavnet-obs/2", "uavnet-obs/3")
TYPES_V1 = {"session_start", "session_end", "span", "counter", "run"}
TYPES_V2 = TYPES_V1 | {"hist"}
TYPES_V3 = TYPES_V2 | {"gauge"}
FINGERPRINT_RE = re.compile(r"^0x[0-9a-f]{16}$")


def fail(msg):
    print(f"validate_obs_log: {msg}", file=sys.stderr)
    sys.exit(1)


def check_hist_fields(where, e):
    for key in ("count", "sum_ns", "max_ns"):
        if not isinstance(e.get(key), int) or e[key] < 0:
            fail(f"{where}: hist needs non-negative int {key!r}")
    buckets = e.get("buckets")
    if not isinstance(buckets, list):
        fail(f"{where}: hist needs a buckets array")
    prev_bound, prev_cum = -1, 0
    for pair in buckets:
        if (
            not isinstance(pair, list)
            or len(pair) != 2
            or not all(isinstance(x, int) for x in pair)
        ):
            fail(f"{where}: hist bucket {pair!r} is not an [int, int] pair")
        bound, cum = pair
        if bound <= prev_bound:
            fail(f"{where}: hist bucket bounds not strictly increasing at {bound}")
        if cum < prev_cum:
            fail(f"{where}: hist cumulative counts decrease at bound {bound}")
        prev_bound, prev_cum = bound, cum
    if buckets and prev_cum != e["count"]:
        fail(f"{where}: hist cumulative total {prev_cum} != count {e['count']}")
    if not buckets and e["count"] != 0:
        fail(f"{where}: hist count {e['count']} but no buckets")


def check_provenance_fields(where, e):
    if not isinstance(e.get("git_sha"), str) or not e["git_sha"]:
        fail(f"{where}: provenance needs a non-empty string git_sha")
    if not isinstance(e.get("features"), str):
        fail(f"{where}: provenance needs a string features list")
    if not isinstance(e.get("threads"), int) or e["threads"] < 1:
        fail(f"{where}: provenance needs a positive int threads")
    fp = e.get("instance_fingerprint")
    if not isinstance(fp, str) or not FINGERPRINT_RE.match(fp):
        fail(
            f"{where}: instance_fingerprint {fp!r} is not an 18-char "
            "0x-prefixed hex string"
        )


def validate_events(path, single_root):
    events = []
    schema = None
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(f"{path}:{lineno}: blank line")
            try:
                e = json.loads(line)
            except json.JSONDecodeError as err:
                fail(f"{path}:{lineno}: invalid JSON: {err}")
            for key, ty in (("seq", int), ("t_ns", int), ("type", str)):
                if not isinstance(e.get(key), ty):
                    fail(f"{path}:{lineno}: missing/mistyped {key!r}")
            if e["type"] == "session_start":
                schema = e.get("schema")
                if schema not in SCHEMAS:
                    fail(f"{path}:{lineno}: schema {schema!r} not in {SCHEMAS}")
                if schema in ("uavnet-obs/2", "uavnet-obs/3"):
                    check_provenance_fields(f"{path}:{lineno}", e)
            events.append((lineno, e))

    if not events:
        fail(f"{path}: empty log")
    if events[0][1]["type"] != "session_start":
        fail(f"{path}: log must open with session_start")
    v3 = schema == "uavnet-obs/3"
    v2plus = v3 or schema == "uavnet-obs/2"
    types = TYPES_V3 if v3 else TYPES_V2 if v2plus else TYPES_V1

    span_ids = {}
    parent_refs = []
    roots = []
    hist_events = {}
    gauge_events = {}
    for lineno, e in events:
        where = f"{path}:{lineno}"
        if e["type"] not in types:
            fail(f"{where}: unknown type {e['type']!r} for schema {schema}")
        if e["type"] == "span":
            if not isinstance(e.get("name"), str) or not isinstance(e.get("ns"), int):
                fail(f"{where}: span needs string name and int ns")
            if v2plus:
                sid = e.get("id")
                if not isinstance(sid, int) or sid < 1:
                    fail(f"{where}: span needs a positive int id")
                if sid in span_ids:
                    fail(f"{where}: duplicate span id {sid}")
                span_ids[sid] = lineno
                self_ns = e.get("self_ns")
                if not isinstance(self_ns, int) or not 0 <= self_ns <= e["ns"]:
                    fail(f"{where}: span needs int self_ns in [0, ns]")
                parent = e.get("parent_id")
                if parent is None:
                    roots.append((lineno, e["name"]))
                else:
                    if not isinstance(parent, int):
                        fail(f"{where}: span parent_id must be an int")
                    if parent >= sid:
                        fail(
                            f"{where}: span parent_id {parent} >= id {sid} "
                            "(parents are entered, and numbered, first)"
                        )
                    parent_refs.append((lineno, parent))
            if v3:
                tid = e.get("tid")
                if not isinstance(tid, int) or tid < 1:
                    fail(f"{where}: v3 span needs a positive int tid")
        if e["type"] == "gauge":
            if not isinstance(e.get("name"), str):
                fail(f"{where}: gauge needs a string name")
            value = e.get("value")
            if not isinstance(value, int) or value < 0:
                fail(f"{where}: gauge {e['name']!r} needs a non-negative int value")
            gauge_events[e["name"]] = value
        if e["type"] == "counter":
            if not isinstance(e.get("name"), str) or not isinstance(e.get("value"), int):
                fail(f"{where}: counter needs string name and int value")
        if e["type"] == "hist":
            if not isinstance(e.get("name"), str):
                fail(f"{where}: hist needs a string name")
            check_hist_fields(where, e)
            hist_events[e["name"]] = e
        if e["type"] == "run":
            fields = e.get("fields")
            if not isinstance(e.get("name"), str) or not isinstance(fields, dict):
                fail(f"{where}: run needs string name and fields object")
            for k, v in fields.items():
                if not isinstance(k, str) or not isinstance(v, int):
                    fail(f"{where}: run field {k!r} must map string->int")

    for (_, prev), (lineno, cur) in zip(events, events[1:]):
        if cur["seq"] <= prev["seq"]:
            fail(f"{path}:{lineno}: seq {cur['seq']} not after {prev['seq']}")
        if cur["t_ns"] < prev["t_ns"]:
            fail(f"{path}:{lineno}: t_ns went backwards")
    starts = [e for _, e in events if e["type"] == "session_start"]
    ends = [e for _, e in events if e["type"] == "session_end"]
    if len(starts) != 1:
        fail(f"{path}: expected exactly one session_start")
    if len(ends) != 1 or events[-1][1]["type"] != "session_end":
        fail(f"{path}: expected exactly one trailing session_end")
    if events[0][1]["seq"] != 0:
        fail(f"{path}: session_start must have seq 0")

    # Referential integrity: children close (and log) before their
    # parents, so a parent_id may point at a line appearing later —
    # resolve against the full id set.
    for lineno, parent in parent_refs:
        if parent not in span_ids:
            fail(f"{path}:{lineno}: span parent_id {parent} matches no span id")
    if single_root:
        if not v2plus:
            fail(f"{path}: --single-root requires a uavnet-obs/2+ log")
        if len(roots) != 1:
            fail(
                f"{path}: expected exactly one root span, found "
                f"{[(n, l) for l, n in roots]}"
            )

    counters = {e["name"]: e["value"] for _, e in events if e["type"] == "counter"}
    return schema, starts[0], counters, hist_events, gauge_events


def validate_metrics(path, schema, session_start, final_counters, hist_events, gauge_events):
    with open(path) as f:
        snap = json.load(f)
    if snap.get("schema") != schema:
        fail(f"{path}: schema {snap.get('schema')!r} != log schema {schema!r}")
    counters = snap.get("counters")
    phases = snap.get("phases")
    if not isinstance(counters, dict) or not isinstance(phases, dict):
        fail(f"{path}: needs counters and phases objects")
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name!r} not a non-negative int")
    for name, p in phases.items():
        if not isinstance(p.get("total_ns"), int) or not isinstance(p.get("count"), int):
            fail(f"{path}: phase {name!r} needs int total_ns and count")
    if counters != final_counters:
        diff = {
            k: (final_counters.get(k), counters.get(k))
            for k in set(counters) | set(final_counters)
            if counters.get(k) != final_counters.get(k)
        }
        fail(f"{path}: snapshot counters diverge from the event log: {diff}")
    if schema not in ("uavnet-obs/2", "uavnet-obs/3"):
        return

    prov = snap.get("provenance")
    if not isinstance(prov, dict):
        fail(f"{path}: v2 snapshot needs a provenance object")
    check_provenance_fields(path, prov)
    for key in ("git_sha", "features", "threads", "instance_fingerprint"):
        if prov.get(key) != session_start.get(key):
            fail(
                f"{path}: provenance {key!r} {prov.get(key)!r} != "
                f"log header {session_start.get(key)!r}"
            )
    for name, p in phases.items():
        if not isinstance(p.get("self_ns"), int) or p["self_ns"] > p["total_ns"]:
            fail(f"{path}: phase {name!r} needs int self_ns <= total_ns")
        if p["count"] > 0:
            for key in ("p50_ns", "p90_ns", "p99_ns", "max_ns"):
                if not isinstance(p.get(key), int):
                    fail(f"{path}: phase {name!r} with samples needs int {key}")
            if not p["p50_ns"] <= p["p90_ns"] <= p["p99_ns"] <= p["max_ns"]:
                fail(f"{path}: phase {name!r} percentiles not monotone")
    hists = snap.get("hists")
    if not isinstance(hists, dict):
        fail(f"{path}: v2 snapshot needs a hists object")
    for name, h in hists.items():
        for key in ("count", "sum_ns", "p50_ns", "p90_ns", "p99_ns", "max_ns"):
            if not isinstance(h.get(key), int) or h[key] < 0:
                fail(f"{path}: hist {name!r} needs non-negative int {key}")
        if not h["p50_ns"] <= h["p90_ns"] <= h["p99_ns"] <= h["max_ns"]:
            fail(f"{path}: hist {name!r} percentiles not monotone")
        if name in hist_events and hist_events[name]["count"] != h["count"]:
            fail(
                f"{path}: hist {name!r} count {h['count']} != event-log "
                f"count {hist_events[name]['count']}"
            )
    if schema != "uavnet-obs/3":
        return

    gauges = snap.get("gauges")
    if not isinstance(gauges, dict):
        fail(f"{path}: v3 snapshot needs a gauges object")
    for name, value in gauges.items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: gauge {name!r} not a non-negative int")
        if name in gauge_events and gauge_events[name] != value:
            fail(
                f"{path}: gauge {name!r} value {value} != event-log "
                f"value {gauge_events[name]}"
            )


def main():
    args = [a for a in sys.argv[1:] if a != "--single-root"]
    single_root = "--single-root" in sys.argv[1:]
    if len(args) not in (1, 2):
        fail("usage: validate_obs_log.py EVENTS.jsonl [METRICS.json] [--single-root]")
    schema, session_start, final_counters, hist_events, gauge_events = validate_events(
        args[0], single_root
    )
    if len(args) == 2:
        validate_metrics(
            args[1], schema, session_start, final_counters, hist_events, gauge_events
        )
    print(
        f"validate_obs_log: ok — {len(final_counters)} counters, "
        f"schema {schema}"
    )


if __name__ == "__main__":
    main()
