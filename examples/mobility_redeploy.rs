//! Mobility & re-deployment: users drift between epochs; the
//! dispatcher compares "stay put" against a full `approAlg` re-plan
//! each epoch (§II-C of the paper).
//!
//! ```text
//! cargo run --release --example mobility_redeploy
//! ```

use uavnet::channel::UavRadio;
use uavnet::core::{approx_alg, redeploy, ApproxConfig, Instance};
use uavnet::geom::{AreaSpec, GridSpec};
use uavnet::workload::{sample_users, MobilityModel, MobilitySimulator, UserDistribution};

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build_instance(area: AreaSpec, users: &[uavnet::geom::Point2]) -> Instance {
    let grid = GridSpec::new(area, 300.0, 300.0).unwrap().build();
    let mut b = Instance::builder(grid, 600.0);
    for &p in users {
        b.add_user(p, 2_000.0);
    }
    for cap in [40u32, 30, 20, 15, 12, 10] {
        b.add_uav(cap, UavRadio::new(30.0, 5.0, 450.0));
    }
    b.build().expect("valid instance")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let area = AreaSpec::new(2_100.0, 2_100.0, 500.0)?;
    let mut rng = SmallRng::seed_from_u64(2);
    let start = sample_users(
        &mut rng,
        area,
        160,
        UserDistribution::FatTailed {
            clusters: 4,
            zipf_exponent: 1.3,
        },
    );
    // Evacuees walking toward assembly points at ~1.4 m/s; an epoch is
    // five minutes → ~420 m per epoch.
    let mut sim = MobilitySimulator::new(
        area,
        start,
        MobilityModel::RandomWaypoint {
            speed_m_per_step: 420.0,
        },
        9,
    );

    let config = ApproxConfig::with_s(2);
    let mut instance = build_instance(area, sim.positions());
    let mut plan = approx_alg(&instance, &config)?;
    plan.validate(&instance)?;
    println!(
        "epoch 0: deployed {} UAVs, serving {}/{} users",
        plan.deployment().len(),
        plan.served_users(),
        instance.num_users()
    );

    for epoch in 1..=4 {
        sim.step();
        instance = build_instance(area, sim.positions());
        let (new_plan, stats) = redeploy(&instance, &plan, &config)?;
        new_plan.validate(&instance)?;
        println!(
            "epoch {epoch}: stay-put serves {:>3}, re-plan serves {:>3} \
             (+{:>3}); {} UAVs moved {:>6.0} m total, {} launched, {} grounded",
            stats.stay_served,
            new_plan.served_users(),
            new_plan.served_users().saturating_sub(stats.stay_served),
            stats.moved_uavs,
            stats.total_move_m,
            stats.launched,
            stats.grounded
        );
        plan = new_plan;
    }
    Ok(())
}
