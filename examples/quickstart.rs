//! Quickstart: generate a disaster scenario, deploy a heterogeneous
//! UAV fleet with `approAlg`, and inspect the solution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uavnet::core::{approx_alg_with_stats, ApproxConfig};
use uavnet::workload::{ScenarioSpec, UserDistribution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1.8 km × 1.8 km disaster zone with 150 trapped users bunched
    // into a few hotspots, and 6 UAVs of mixed capacity.
    let spec = ScenarioSpec::builder()
        .area_m(1_800.0, 1_800.0)
        .cell_m(300.0)
        .users(150)
        .distribution(UserDistribution::FatTailed {
            clusters: 4,
            zipf_exponent: 1.3,
        })
        .uavs(6)
        .capacity_range(10, 50)
        .seed(42)
        .build()?;
    let instance = spec.instantiate()?;
    println!(
        "instance: {} users, {} UAVs, {} candidate hovering cells",
        instance.num_users(),
        instance.num_uavs(),
        instance.num_locations()
    );

    // Algorithm 2 with s = 2 seeds.
    let (solution, stats) = approx_alg_with_stats(&instance, &ApproxConfig::with_s(2))?;
    solution.validate(&instance)?;

    println!(
        "approAlg(s=2): served {} / {} users ({} subsets evaluated, L_max = {})",
        solution.served_users(),
        instance.num_users(),
        stats.subsets_evaluated,
        stats.plan.l_max()
    );
    println!("deployment (capacity @ grid cell -> load):");
    for (i, &(uav, loc)) in solution.deployment().placements().iter().enumerate() {
        let (col, row) = instance.grid().col_row(loc);
        println!(
            "  UAV {uav} (capacity {:>3}) @ cell ({col},{row}) serves {:>3} users",
            instance.uavs()[uav].capacity,
            solution.loads()[i]
        );
    }
    println!(
        "proven ratio for this plan: {:.3} of the optimum",
        stats.plan.approx_ratio()
    );
    Ok(())
}
