//! Fleet planning: how many UAVs does a target service level need,
//! and what does the `s` knob buy?
//!
//! Sweeps the fleet size `K`, reporting the marginal value of each
//! pair of UAVs, and shows Algorithm 1's segment plan (`L_max`, relay
//! budget `g`, proven ratio) for each configuration — the quantities a
//! dispatcher would consult before launching.
//!
//! ```text
//! cargo run --release --example fleet_planning
//! ```

use uavnet::core::{approx_alg, ApproxConfig, SegmentPlan};
use uavnet::workload::{ScenarioSpec, UserDistribution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target_coverage = 0.80;
    println!(
        "target: serve ≥ {:.0}% of trapped users\n",
        target_coverage * 100.0
    );

    println!(
        "{:>3} {:>7} {:>9} {:>6} {:>5} {:>7}",
        "K", "served", "coverage", "L_max", "g", "ratio"
    );
    let mut previous = 0usize;
    let mut chosen_k = None;
    for k in (2..=12).step_by(2) {
        let spec = ScenarioSpec::builder()
            .area_m(2_100.0, 2_100.0)
            .cell_m(300.0)
            .users(200)
            .distribution(UserDistribution::FatTailed {
                clusters: 5,
                zipf_exponent: 1.2,
            })
            .uavs(k)
            .capacity_range(8, 45)
            .seed(11)
            .build()?;
        let instance = spec.instantiate()?;
        let s = 2usize.min(k);
        let solution = approx_alg(&instance, &ApproxConfig::with_s(s))?;
        solution.validate(&instance)?;
        let plan = SegmentPlan::optimal(k, s)?;
        let coverage = solution.served_users() as f64 / instance.num_users() as f64;
        println!(
            "{k:>3} {:>7} {:>8.1}% {:>6} {:>5} {:>7.3}  (+{} vs previous)",
            solution.served_users(),
            coverage * 100.0,
            plan.l_max(),
            plan.g(),
            plan.approx_ratio(),
            solution.served_users().saturating_sub(previous),
        );
        previous = solution.served_users();
        if coverage >= target_coverage && chosen_k.is_none() {
            chosen_k = Some(k);
        }
    }
    match chosen_k {
        Some(k) => println!(
            "\n→ a fleet of {k} UAVs meets the {:.0}% target",
            target_coverage * 100.0
        ),
        None => println!("\n→ no fleet size up to 12 meets the target; consider stronger radios"),
    }
    Ok(())
}
