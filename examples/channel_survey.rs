//! Channel survey: how far can a UAV base station actually serve?
//!
//! Walks the air-to-ground model of §II-B across environments and
//! distances, printing pathloss / SNR / achievable rate, and derives
//! the effective service radius for a target rate — the physical
//! grounding behind the `R_user` values used everywhere else.
//!
//! ```text
//! cargo run --release --example channel_survey
//! ```

use uavnet::channel::{AtgChannel, ChannelParams, Environment, UavRadio};
use uavnet::geom::{Point2, Point3};

fn main() {
    let radio = UavRadio::new(30.0, 5.0, 5_000.0); // radius off: pure physics
    let altitude = 300.0;
    let uav = Point3::new(0.0, 0.0, altitude);

    for env in [
        Environment::Suburban,
        Environment::Urban,
        Environment::DenseUrban,
        Environment::Highrise,
    ] {
        let channel = AtgChannel::new(ChannelParams::builder().environment(env).build());
        println!("== {env} (H = {altitude:.0} m, 2 GHz, 180 kHz sub-band) ==");
        println!(
            "{:>9} {:>10} {:>8} {:>12}",
            "dist (m)", "PL (dB)", "SNR(dB)", "rate (kbps)"
        );
        for d in [0.0, 100.0, 250.0, 500.0, 1_000.0, 2_000.0] {
            let user = Point2::new(d, 0.0);
            println!(
                "{d:>9.0} {:>10.1} {:>8.1} {:>12.1}",
                channel.mean_pathloss_db(uav, user),
                channel.snr_db(&radio, uav, user),
                channel.data_rate_bps(&radio, uav, user) / 1_000.0
            );
        }

        // Effective service radii: binary search on the monotone
        // rate-distance curve. The 2 kbps voice floor holds for tens
        // of kilometers (which is why the paper's binding constraint
        // is the hardware radius R_user); a 2 Mbps video feed pins the
        // radius to a few hundred meters.
        for (label, target) in [("2 kbps voice", 2_000.0), ("2 Mbps video", 2_000_000.0)] {
            let (mut lo, mut hi) = (0.0f64, 100_000.0f64);
            for _ in 0..60 {
                let mid = (lo + hi) / 2.0;
                if channel.data_rate_bps(&radio, uav, Point2::new(mid, 0.0)) >= target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            println!("→ {label} service radius ≈ {lo:.0} m");
        }
        println!();
    }
}
