//! Disaster response: an earthquake scenario with a mixed
//! Matrice 600 / Matrice 300-class fleet, comparing `approAlg` with
//! every baseline of the paper's evaluation.
//!
//! The fleet is deliberately lopsided — two strong UAVs and four weak
//! ones — so the heterogeneity-aware placement (big capacity on dense
//! hotspots, small capacity as relays) shows up directly in the
//! per-UAV load table.
//!
//! ```text
//! cargo run --release --example disaster_response
//! ```

use uavnet::baselines::{
    DeploymentAlgorithm, GreedyAssign, MaxThroughput, Mcs, MotionCtrl, RandomConnected,
};
use uavnet::channel::UavRadio;
use uavnet::core::{approx_alg, ApproxConfig, Instance};
use uavnet::geom::{AreaSpec, GridSpec};
use uavnet::workload::{sample_users, UserDistribution};

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build_instance() -> Result<Instance, Box<dyn std::error::Error>> {
    let area = AreaSpec::new(2_400.0, 2_400.0, 500.0)?;
    let grid = GridSpec::new(area, 300.0, 300.0)?.build();

    // 260 trapped users in three dense pockets (collapsed blocks) and
    // a thin scatter of stragglers.
    let mut rng = SmallRng::seed_from_u64(7);
    let users = sample_users(
        &mut rng,
        area,
        260,
        UserDistribution::FatTailed {
            clusters: 3,
            zipf_exponent: 1.5,
        },
    );

    let mut builder = Instance::builder(grid, 600.0);
    // The emergency communication vehicle (Internet uplink) parks at
    // the south-west staging area; one UAV must stay in its range.
    builder.gateway(uavnet::geom::Point2::new(60.0, 60.0));
    for pos in users {
        builder.add_user(pos, 2_000.0); // 2 kbps voice floor
    }
    // Two Matrice 600-class UAVs: big payload, strong base station.
    for _ in 0..2 {
        builder.add_uav(60, UavRadio::new(33.0, 6.0, 500.0));
    }
    // Four Matrice 300-class UAVs: light payload, modest base station.
    for _ in 0..4 {
        builder.add_uav(18, UavRadio::new(27.0, 4.0, 380.0));
    }
    Ok(builder.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = build_instance()?;
    println!(
        "earthquake zone: {} users, fleet of {} (2 heavy + 4 light), {} cells\n",
        instance.num_users(),
        instance.num_uavs(),
        instance.num_locations()
    );

    let algorithms: Vec<Box<dyn DeploymentAlgorithm>> = vec![
        Box::new(Mcs),
        Box::new(GreedyAssign),
        Box::new(MaxThroughput),
        Box::new(MotionCtrl::default()),
        Box::new(RandomConnected::new(3)),
    ];

    println!(
        "{:<16} {:>8} {:>10} {:>9}",
        "algorithm", "served", "coverage", "uplink?"
    );
    let appro = approx_alg(&instance, &ApproxConfig::with_s(2))?;
    appro.validate(&instance)?; // includes the gateway check
    println!(
        "{:<16} {:>8} {:>9.1}% {:>9}",
        "approAlg(s=2)",
        appro.served_users(),
        100.0 * appro.served_users() as f64 / instance.num_users() as f64,
        "yes"
    );
    for algo in &algorithms {
        let sol = algo.deploy(&instance)?;
        // The baselines are gateway-blind; report whether their
        // deployment happens to reach the vehicle.
        let uplink = sol
            .deployment()
            .locations()
            .iter()
            .any(|&l| instance.is_gateway_cell(l));
        println!(
            "{:<16} {:>8} {:>9.1}% {:>9}",
            algo.name(),
            sol.served_users(),
            100.0 * sol.served_users() as f64 / instance.num_users() as f64,
            if uplink { "yes" } else { "NO" }
        );
    }

    println!("\napproAlg per-UAV loads (heavy UAVs should sit on hotspots):");
    for (i, &(uav, loc)) in appro.deployment().placements().iter().enumerate() {
        let class = if instance.uavs()[uav].capacity >= 60 {
            "heavy"
        } else {
            "light"
        };
        let (col, row) = instance.grid().col_row(loc);
        println!(
            "  {class} UAV {uav} (cap {:>2}) @ ({col},{row}): {:>3} users",
            instance.uavs()[uav].capacity,
            appro.loads()[i]
        );
    }
    Ok(())
}
