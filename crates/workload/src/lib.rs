//! Scenario generation for the evaluation of §IV: fat-tailed user
//! placement and heterogeneous UAV fleets.
//!
//! The paper's experimental environment is a 3 km × 3 km disaster zone
//! with 1 000–3 000 users whose density is *fat-tailed* ("many users
//! are located at a small portion of places", citing Song et al.'s
//! human-mobility scaling laws), and `K = 2 … 20` UAVs with service
//! capacities drawn uniformly from `[50, 300]`.
//!
//! [`ScenarioSpec`] captures all of that declaratively and
//! deterministically (every scenario is a pure function of its seed),
//! and [`ScenarioSpec::instantiate`] produces a ready-to-solve
//! [`uavnet_core::Instance`].
//!
//! # Examples
//!
//! ```
//! use uavnet_workload::{ScenarioSpec, UserDistribution};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ScenarioSpec::builder()
//!     .area_m(1_500.0, 1_500.0)
//!     .cell_m(300.0)
//!     .users(100)
//!     .uavs(5)
//!     .capacity_range(10, 40)
//!     .seed(42)
//!     .build()?;
//! let instance = spec.instantiate()?;
//! assert_eq!(instance.num_users(), 100);
//! assert_eq!(instance.num_uavs(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fat_tailed;
mod fleet;
mod mobility;
mod spec;

pub use fat_tailed::{sample_users, UserDistribution};
pub use fleet::{sample_fleet, FleetStyle};
pub use mobility::{MobilityModel, MobilitySimulator};
pub use spec::{ScenarioSpec, ScenarioSpecBuilder, WorkloadError};
