//! Heterogeneous fleet sampling.

use rand::Rng;
use serde::{Deserialize, Serialize};
use uavnet_channel::UavRadio;
use uavnet_core::Uav;

/// How the fleet's radios relate to its capacities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FleetStyle {
    /// Every UAV carries the same radio (the paper's evaluation:
    /// heterogeneous *capacities*, common `R_user`).
    CommonRadio,
    /// Radio strength scales with capacity: a UAV at the top of the
    /// capacity range gets the full coverage radius and transmit
    /// power; one at the bottom gets 70 % of the radius and −6 dB
    /// transmit power (Matrice 600- vs Matrice 300-class payloads).
    CapacityScaledRadio,
}

/// Samples `k` UAVs with capacities uniform in
/// `[capacity_min, capacity_max]`.
///
/// The base radio is `(tx_power_dbm, antenna_gain_dbi, user_range_m)`;
/// `style` decides whether weaker UAVs also carry weaker radios.
///
/// # Panics
///
/// Panics if `capacity_min > capacity_max` or `user_range_m ≤ 0`.
///
/// # Examples
///
/// ```
/// use uavnet_workload::{sample_fleet, FleetStyle};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let fleet = sample_fleet(&mut rng, 20, 50, 300, 30.0, 5.0, 500.0, FleetStyle::CommonRadio);
/// assert_eq!(fleet.len(), 20);
/// assert!(fleet.iter().all(|u| (50..=300).contains(&u.capacity)));
/// ```
#[allow(clippy::too_many_arguments)]
pub fn sample_fleet<R: Rng>(
    rng: &mut R,
    k: usize,
    capacity_min: u32,
    capacity_max: u32,
    tx_power_dbm: f64,
    antenna_gain_dbi: f64,
    user_range_m: f64,
    style: FleetStyle,
) -> Vec<Uav> {
    assert!(
        capacity_min <= capacity_max,
        "capacity range [{capacity_min}, {capacity_max}] is empty"
    );
    (0..k)
        .map(|_| {
            let capacity = rng.gen_range(capacity_min..=capacity_max);
            let radio = match style {
                FleetStyle::CommonRadio => {
                    UavRadio::new(tx_power_dbm, antenna_gain_dbi, user_range_m)
                }
                FleetStyle::CapacityScaledRadio => {
                    let rel = if capacity_max == capacity_min {
                        1.0
                    } else {
                        f64::from(capacity - capacity_min) / f64::from(capacity_max - capacity_min)
                    };
                    UavRadio::new(
                        tx_power_dbm - 6.0 * (1.0 - rel),
                        antenna_gain_dbi,
                        user_range_m * (0.7 + 0.3 * rel),
                    )
                }
            };
            Uav { capacity, radio }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn capacities_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let fleet = sample_fleet(
            &mut rng,
            200,
            50,
            300,
            30.0,
            5.0,
            500.0,
            FleetStyle::CommonRadio,
        );
        assert!(fleet.iter().all(|u| (50..=300).contains(&u.capacity)));
        // Heterogeneity: with 200 draws the spread should be wide.
        let min = fleet.iter().map(|u| u.capacity).min().unwrap();
        let max = fleet.iter().map(|u| u.capacity).max().unwrap();
        assert!(max - min > 150, "spread {min}..{max} too narrow");
    }

    #[test]
    fn common_radio_is_identical() {
        let mut rng = SmallRng::seed_from_u64(5);
        let fleet = sample_fleet(
            &mut rng,
            10,
            50,
            300,
            30.0,
            5.0,
            500.0,
            FleetStyle::CommonRadio,
        );
        for u in &fleet {
            assert_eq!(u.radio, fleet[0].radio);
        }
    }

    #[test]
    fn scaled_radio_tracks_capacity() {
        let mut rng = SmallRng::seed_from_u64(5);
        let fleet = sample_fleet(
            &mut rng,
            50,
            50,
            300,
            30.0,
            5.0,
            500.0,
            FleetStyle::CapacityScaledRadio,
        );
        for u in &fleet {
            assert!(u.radio.user_range_m() >= 0.7 * 500.0 - 1e-9);
            assert!(u.radio.user_range_m() <= 500.0 + 1e-9);
        }
        let strongest = fleet.iter().max_by_key(|u| u.capacity).unwrap();
        let weakest = fleet.iter().min_by_key(|u| u.capacity).unwrap();
        assert!(strongest.radio.user_range_m() > weakest.radio.user_range_m());
        assert!(strongest.radio.tx_power_dbm() > weakest.radio.tx_power_dbm());
    }

    #[test]
    fn degenerate_capacity_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let fleet = sample_fleet(
            &mut rng,
            5,
            100,
            100,
            30.0,
            5.0,
            500.0,
            FleetStyle::CapacityScaledRadio,
        );
        assert!(fleet.iter().all(|u| u.capacity == 100));
        assert!(fleet
            .iter()
            .all(|u| (u.radio.user_range_m() - 500.0).abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_inverted_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = sample_fleet(
            &mut rng,
            5,
            300,
            50,
            30.0,
            5.0,
            500.0,
            FleetStyle::CommonRadio,
        );
    }
}
