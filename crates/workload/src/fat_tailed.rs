//! User-placement distributions.

use rand::Rng;
use serde::{Deserialize, Serialize};
use uavnet_geom::{AreaSpec, Point2};

/// How users are scattered over the disaster zone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UserDistribution {
    /// Uniform placement over the whole footprint.
    Uniform,
    /// The paper's fat-tailed density (Song et al., reference 30 of the paper): `clusters`
    /// hotspot centers with Zipf-distributed popularity
    /// (`weight_i ∝ i^{−zipf_exponent}`), users scattered around their
    /// hotspot with a Gaussian of `sigma_m` meters; a small uniform
    /// background (10 %) models stragglers.
    FatTailed {
        /// Number of hotspot centers.
        clusters: usize,
        /// Zipf popularity exponent (≈ 1.2 reproduces the heavy head
        /// the paper describes).
        zipf_exponent: f64,
    },
}

impl Default for UserDistribution {
    fn default() -> Self {
        UserDistribution::FatTailed {
            clusters: 12,
            zipf_exponent: 1.2,
        }
    }
}

/// Standard deviation of the per-hotspot Gaussian scatter, in meters.
const CLUSTER_SIGMA_M: f64 = 150.0;

/// Fraction of users placed uniformly regardless of hotspots.
const BACKGROUND_FRACTION: f64 = 0.10;

/// Samples `n` user positions inside `area` from `distribution`.
///
/// Deterministic given the RNG state. Positions outside the footprint
/// (Gaussian tails) are re-drawn a few times and finally clamped, so
/// every returned point lies inside the zone.
///
/// # Panics
///
/// Panics if a fat-tailed distribution is requested with zero clusters
/// or a non-finite exponent.
pub fn sample_users<R: Rng>(
    rng: &mut R,
    area: AreaSpec,
    n: usize,
    distribution: UserDistribution,
) -> Vec<Point2> {
    match distribution {
        UserDistribution::Uniform => (0..n).map(|_| uniform_point(rng, area)).collect(),
        UserDistribution::FatTailed {
            clusters,
            zipf_exponent,
        } => {
            assert!(
                clusters > 0,
                "fat-tailed placement needs at least one cluster"
            );
            assert!(
                zipf_exponent.is_finite() && zipf_exponent >= 0.0,
                "invalid Zipf exponent {zipf_exponent}"
            );
            // Hotspot centers, kept a sigma away from the border so the
            // mass is not clipped too aggressively.
            let margin = CLUSTER_SIGMA_M
                .min(area.length_m() / 4.0)
                .min(area.width_m() / 4.0);
            let centers: Vec<Point2> = (0..clusters)
                .map(|_| {
                    Point2::new(
                        rng.gen_range(margin..=area.length_m() - margin),
                        rng.gen_range(margin..=area.width_m() - margin),
                    )
                })
                .collect();
            // Zipf weights: w_i ∝ (i+1)^{-a}, cumulative for sampling.
            let weights: Vec<f64> = (0..clusters)
                .map(|i| ((i + 1) as f64).powf(-zipf_exponent))
                .collect();
            let total: f64 = weights.iter().sum();
            let mut cumulative = Vec::with_capacity(clusters);
            let mut acc = 0.0;
            for w in &weights {
                acc += w / total;
                cumulative.push(acc);
            }

            (0..n)
                .map(|_| {
                    if rng.gen_bool(BACKGROUND_FRACTION) {
                        return uniform_point(rng, area);
                    }
                    let u: f64 = rng.gen();
                    let cluster = cumulative
                        .iter()
                        .position(|&c| u <= c)
                        .unwrap_or(clusters - 1);
                    gaussian_around(rng, area, centers[cluster], CLUSTER_SIGMA_M)
                })
                .collect()
        }
    }
}

fn uniform_point<R: Rng>(rng: &mut R, area: AreaSpec) -> Point2 {
    Point2::new(
        rng.gen_range(0.0..=area.length_m()),
        rng.gen_range(0.0..=area.width_m()),
    )
}

/// Box–Muller Gaussian scatter around `center`, redrawn up to 8 times
/// if it lands outside the zone, then clamped.
fn gaussian_around<R: Rng>(rng: &mut R, area: AreaSpec, center: Point2, sigma: f64) -> Point2 {
    for _ in 0..8 {
        let (z0, z1) = box_muller(rng);
        let p = Point2::new(center.x + sigma * z0, center.y + sigma * z1);
        if area.contains(p) {
            return p;
        }
    }
    let (z0, z1) = box_muller(rng);
    area.clamp(Point2::new(center.x + sigma * z0, center.y + sigma * z1))
}

fn box_muller<R: Rng>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn area() -> AreaSpec {
        AreaSpec::new(3_000.0, 3_000.0, 500.0).unwrap()
    }

    #[test]
    fn all_points_inside_zone() {
        let mut rng = SmallRng::seed_from_u64(1);
        for dist in [
            UserDistribution::Uniform,
            UserDistribution::default(),
            UserDistribution::FatTailed {
                clusters: 1,
                zipf_exponent: 0.0,
            },
        ] {
            let pts = sample_users(&mut rng, area(), 500, dist);
            assert_eq!(pts.len(), 500);
            for p in pts {
                assert!(area().contains(p), "{p} escaped with {dist:?}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sample_users(
            &mut SmallRng::seed_from_u64(7),
            area(),
            100,
            UserDistribution::default(),
        );
        let b = sample_users(
            &mut SmallRng::seed_from_u64(7),
            area(),
            100,
            UserDistribution::default(),
        );
        assert_eq!(a, b);
        let c = sample_users(
            &mut SmallRng::seed_from_u64(8),
            area(),
            100,
            UserDistribution::default(),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn fat_tailed_is_more_concentrated_than_uniform() {
        // Compare the occupancy of the busiest 10 % of a 10×10 grid:
        // the fat-tailed placement should pack far more users there.
        let occupancy_top_decile = |pts: &[Point2]| {
            let mut counts = vec![0usize; 100];
            for p in pts {
                let cx = ((p.x / 300.0) as usize).min(9);
                let cy = ((p.y / 300.0) as usize).min(9);
                counts[cy * 10 + cx] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            counts[..10].iter().sum::<usize>()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let fat = sample_users(&mut rng, area(), 2_000, UserDistribution::default());
        let mut rng = SmallRng::seed_from_u64(3);
        let uni = sample_users(&mut rng, area(), 2_000, UserDistribution::Uniform);
        let fat_top = occupancy_top_decile(&fat);
        let uni_top = occupancy_top_decile(&uni);
        assert!(
            fat_top > 2 * uni_top,
            "fat-tailed top decile {fat_top} vs uniform {uni_top}"
        );
    }

    #[test]
    fn zipf_head_dominates() {
        // With a strong exponent, the single busiest grid cell should
        // hold a sizable share of all users.
        let mut rng = SmallRng::seed_from_u64(11);
        let pts = sample_users(
            &mut rng,
            area(),
            1_000,
            UserDistribution::FatTailed {
                clusters: 20,
                zipf_exponent: 2.0,
            },
        );
        let mut counts = vec![0usize; 100];
        for p in &pts {
            let cx = ((p.x / 300.0) as usize).min(9);
            let cy = ((p.y / 300.0) as usize).min(9);
            counts[cy * 10 + cx] += 1;
        }
        assert!(*counts.iter().max().unwrap() > 100);
    }

    #[test]
    fn zero_users_is_fine() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(sample_users(&mut rng, area(), 0, UserDistribution::Uniform).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn rejects_zero_clusters() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = sample_users(
            &mut rng,
            area(),
            10,
            UserDistribution::FatTailed {
                clusters: 0,
                zipf_exponent: 1.0,
            },
        );
    }
}
