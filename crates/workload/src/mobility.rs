//! User mobility (§II-C): "the users in the disaster zone may move
//! around… we thus need to re-deploy the UAVs… later", with the most
//! recent locations re-detected from on-board cameras.
//!
//! [`MobilitySimulator`] evolves a user population step by step under
//! a pluggable [`MobilityModel`], producing the location snapshots a
//! re-deployment loop consumes (see `uavnet_core::redeploy`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uavnet_geom::{AreaSpec, Point2};

/// How users move between deployment epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MobilityModel {
    /// Independent Gaussian drift: each step adds `N(0, σ²)` per axis
    /// (evacuees milling around their shelter).
    GaussianWalk {
        /// Per-step standard deviation in meters.
        sigma_m: f64,
    },
    /// Random waypoint: every user walks toward a private uniformly
    /// random target at a fixed speed, drawing a new target on
    /// arrival (directed movement toward exits/assembly points).
    RandomWaypoint {
        /// Distance covered per step in meters.
        speed_m_per_step: f64,
    },
}

/// Deterministic, seedable user-mobility simulation over a disaster
/// zone.
///
/// # Examples
///
/// ```
/// use uavnet_geom::{AreaSpec, Point2};
/// use uavnet_workload::{MobilityModel, MobilitySimulator};
///
/// # fn main() -> Result<(), uavnet_geom::GeomError> {
/// let area = AreaSpec::new(1_000.0, 1_000.0, 500.0)?;
/// let start = vec![Point2::new(500.0, 500.0); 10];
/// let mut sim = MobilitySimulator::new(area, start, MobilityModel::GaussianWalk { sigma_m: 30.0 }, 7);
/// sim.step();
/// assert!(sim.positions().iter().all(|p| area.contains(*p)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MobilitySimulator {
    area: AreaSpec,
    model: MobilityModel,
    positions: Vec<Point2>,
    targets: Vec<Point2>,
    rng: SmallRng,
    steps: usize,
}

impl MobilitySimulator {
    /// Creates a simulator from initial positions.
    ///
    /// # Panics
    ///
    /// Panics if the model's parameter is not strictly positive and
    /// finite.
    pub fn new(area: AreaSpec, positions: Vec<Point2>, model: MobilityModel, seed: u64) -> Self {
        let param = match model {
            MobilityModel::GaussianWalk { sigma_m } => sigma_m,
            MobilityModel::RandomWaypoint { speed_m_per_step } => speed_m_per_step,
        };
        assert!(
            param.is_finite() && param > 0.0,
            "mobility parameter must be positive, got {param}"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let targets = positions
            .iter()
            .map(|_| uniform_point(&mut rng, area))
            .collect();
        MobilitySimulator {
            area,
            model,
            positions,
            targets,
            rng,
            steps: 0,
        }
    }

    /// Current user positions.
    #[inline]
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Number of steps simulated so far.
    #[inline]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Advances the simulation one step and returns the new positions.
    pub fn step(&mut self) -> &[Point2] {
        match self.model {
            MobilityModel::GaussianWalk { sigma_m } => {
                for p in &mut self.positions {
                    let (dx, dy) = gaussian_pair(&mut self.rng, sigma_m);
                    *p = self.area.clamp(Point2::new(p.x + dx, p.y + dy));
                }
            }
            MobilityModel::RandomWaypoint { speed_m_per_step } => {
                for (p, t) in self.positions.iter_mut().zip(self.targets.iter_mut()) {
                    let dist = p.distance(*t);
                    if dist <= speed_m_per_step {
                        *p = *t;
                        *t = uniform_point(&mut self.rng, self.area);
                    } else {
                        let f = speed_m_per_step / dist;
                        *p = Point2::new(p.x + f * (t.x - p.x), p.y + f * (t.y - p.y));
                    }
                }
            }
        }
        self.steps += 1;
        &self.positions
    }

    /// Runs `n` steps and returns the final positions.
    pub fn run(&mut self, n: usize) -> &[Point2] {
        for _ in 0..n {
            self.step();
        }
        &self.positions
    }

    /// Advances one step and emits `(user_id, new_position)` for every
    /// user displaced by at least `threshold_m` meters, ready to feed
    /// an incremental solver as a `UserMoved` batch (see
    /// `uavnet_core::Delta`).
    ///
    /// A zero threshold reports every user each tick; a camera-grade
    /// threshold (tens of meters) suppresses jitter that cannot change
    /// cell membership.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_m` is negative or NaN.
    pub fn step_deltas(&mut self, threshold_m: f64) -> Vec<(u32, Point2)> {
        assert!(
            threshold_m >= 0.0,
            "displacement threshold must be non-negative, got {threshold_m}"
        );
        let before = self.positions.clone();
        self.step();
        before
            .iter()
            .zip(self.positions.iter())
            .enumerate()
            .filter(|(_, (old, new))| old.distance(**new) >= threshold_m)
            .map(|(id, (_, new))| (id as u32, *new))
            .collect()
    }
}

fn uniform_point(rng: &mut SmallRng, area: AreaSpec) -> Point2 {
    Point2::new(
        rng.gen_range(0.0..=area.length_m()),
        rng.gen_range(0.0..=area.width_m()),
    )
}

fn gaussian_pair(rng: &mut SmallRng, sigma: f64) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let r = sigma * (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area() -> AreaSpec {
        AreaSpec::new(1_000.0, 800.0, 500.0).unwrap()
    }

    fn start() -> Vec<Point2> {
        (0..50)
            .map(|i| {
                Point2::new(
                    20.0 * (i % 10) as f64 + 100.0,
                    15.0 * (i / 10) as f64 + 100.0,
                )
            })
            .collect()
    }

    #[test]
    fn walk_stays_in_area_forever() {
        let mut sim = MobilitySimulator::new(
            area(),
            start(),
            MobilityModel::GaussianWalk { sigma_m: 120.0 },
            3,
        );
        for _ in 0..100 {
            sim.step();
            assert!(sim.positions().iter().all(|p| area().contains(*p)));
        }
        assert_eq!(sim.steps(), 100);
    }

    #[test]
    fn walk_actually_moves() {
        let before = start();
        let mut sim = MobilitySimulator::new(
            area(),
            before.clone(),
            MobilityModel::GaussianWalk { sigma_m: 25.0 },
            3,
        );
        sim.step();
        let moved = before
            .iter()
            .zip(sim.positions())
            .filter(|(a, b)| a.distance(**b) > 1.0)
            .count();
        assert!(moved > 40, "only {moved} users moved");
    }

    #[test]
    fn step_deltas_matches_plain_step() {
        let mk = || {
            MobilitySimulator::new(
                area(),
                start(),
                MobilityModel::GaussianWalk { sigma_m: 40.0 },
                11,
            )
        };
        let mut plain = mk();
        let mut delta = mk();
        plain.step();
        let moves = delta.step_deltas(0.0);
        // Zero threshold reports every user, with the same trajectory
        // the plain stepper produces from the same seed.
        assert_eq!(moves.len(), start().len());
        assert_eq!(plain.positions(), delta.positions());
        for (id, pos) in moves {
            assert_eq!(plain.positions()[id as usize], pos);
        }
        assert_eq!(delta.steps(), 1);
    }

    #[test]
    fn step_deltas_threshold_filters_small_displacements() {
        let mut sim = MobilitySimulator::new(
            area(),
            start(),
            MobilityModel::GaussianWalk { sigma_m: 20.0 },
            5,
        );
        let before = sim.positions().to_vec();
        let threshold = 25.0;
        let moves = sim.step_deltas(threshold);
        let after = sim.positions().to_vec();
        // Exactly the users displaced >= threshold are reported.
        let expected: Vec<u32> = before
            .iter()
            .zip(after.iter())
            .enumerate()
            .filter(|(_, (a, b))| a.distance(**b) >= threshold)
            .map(|(i, _)| i as u32)
            .collect();
        let got: Vec<u32> = moves.iter().map(|&(id, _)| id).collect();
        assert_eq!(got, expected);
        assert!(moves.len() < start().len(), "threshold filtered nothing");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn step_deltas_rejects_negative_threshold() {
        let mut sim = MobilitySimulator::new(
            area(),
            start(),
            MobilityModel::GaussianWalk { sigma_m: 20.0 },
            5,
        );
        sim.step_deltas(-1.0);
    }

    #[test]
    fn waypoint_speed_bounds_displacement() {
        let speed = 15.0;
        let mut sim = MobilitySimulator::new(
            area(),
            start(),
            MobilityModel::RandomWaypoint {
                speed_m_per_step: speed,
            },
            5,
        );
        let before = sim.positions().to_vec();
        sim.step();
        for (a, b) in before.iter().zip(sim.positions()) {
            assert!(a.distance(*b) <= speed + 1e-9);
        }
    }

    #[test]
    fn waypoint_reaches_and_replaces_targets() {
        // With a huge speed, each step lands exactly on the target.
        let mut sim = MobilitySimulator::new(
            area(),
            vec![Point2::new(0.0, 0.0)],
            MobilityModel::RandomWaypoint {
                speed_m_per_step: 10_000.0,
            },
            5,
        );
        let first = sim.step()[0];
        let second = sim.step()[0];
        assert_ne!(first, second, "target should be redrawn after arrival");
    }

    #[test]
    fn determinism_per_seed() {
        let mk = |seed| {
            let mut sim = MobilitySimulator::new(
                area(),
                start(),
                MobilityModel::GaussianWalk { sigma_m: 40.0 },
                seed,
            );
            sim.run(10).to_vec()
        };
        assert_eq!(mk(9), mk(9));
        assert_ne!(mk(9), mk(10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_sigma() {
        let _ = MobilitySimulator::new(
            area(),
            start(),
            MobilityModel::GaussianWalk { sigma_m: 0.0 },
            1,
        );
    }
}
