//! Declarative scenario specifications.

use crate::{sample_fleet, sample_users, FleetStyle, UserDistribution};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use uavnet_core::{CoreError, Instance};
use uavnet_geom::{AreaSpec, GeomError, GridSpec};

/// Error raised when a scenario specification is invalid or cannot be
/// instantiated.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A parameter failed validation.
    InvalidParameter(String),
    /// The underlying geometry was rejected.
    Geometry(GeomError),
    /// The instance builder rejected the generated scenario.
    Core(CoreError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            WorkloadError::Geometry(e) => write!(f, "geometry: {e}"),
            WorkloadError::Core(e) => write!(f, "instance: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Geometry(e) => Some(e),
            WorkloadError::Core(e) => Some(e),
            WorkloadError::InvalidParameter(_) => None,
        }
    }
}

impl From<GeomError> for WorkloadError {
    fn from(e: GeomError) -> Self {
        WorkloadError::Geometry(e)
    }
}

impl From<CoreError> for WorkloadError {
    fn from(e: CoreError) -> Self {
        WorkloadError::Core(e)
    }
}

/// A complete, reproducible description of one experimental scenario.
///
/// Every field is plain data (serde-serializable); instantiation is a
/// pure function of the spec, so two runs with the same spec solve the
/// same instance bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    area_length_m: f64,
    area_width_m: f64,
    area_height_m: f64,
    cell_m: f64,
    altitude_m: f64,
    num_users: usize,
    distribution: UserDistribution,
    min_rate_bps: f64,
    num_uavs: usize,
    capacity_min: u32,
    capacity_max: u32,
    tx_power_dbm: f64,
    antenna_gain_dbi: f64,
    user_range_m: f64,
    uav_range_m: f64,
    fleet_style: FleetStyle,
    gateway: Option<(f64, f64)>,
    auto_altitude_pl_db: Option<f64>,
    seed: u64,
}

impl ScenarioSpec {
    /// Starts a builder preloaded with laptop-scale defaults derived
    /// from the paper's evaluation (3 km × 3 km zone, fat-tailed
    /// users, capacities in `[50, 300]`, `H = 300 m`, `R_uav = 600 m`,
    /// `R_user = 500 m`) — with a 300 m grid cell instead of the
    /// paper's 50 m so that `approAlg`'s subset sweep stays tractable
    /// on a laptop (see EXPERIMENTS.md).
    pub fn builder() -> ScenarioSpecBuilder {
        ScenarioSpecBuilder::default()
    }

    /// The paper's Figure 4/5/6 environment at reduced grid
    /// resolution: `n` users, `K` UAVs, everything else §IV-A.
    pub fn paper_figure(n: usize, k: usize, seed: u64) -> Result<ScenarioSpec, WorkloadError> {
        ScenarioSpec::builder().users(n).uavs(k).seed(seed).build()
    }

    /// Instantiates the scenario into a solvable [`Instance`].
    ///
    /// # Errors
    ///
    /// [`WorkloadError`] if the geometry or generated data is
    /// rejected (should not happen for a validated spec).
    pub fn instantiate(&self) -> Result<Instance, WorkloadError> {
        let area = AreaSpec::new(self.area_length_m, self.area_width_m, self.area_height_m)?;
        // §II-A: H_uav is "the optimal altitude for the maximum
        // coverage from the sky", computable per Al-Hourani et al.
        let altitude = match self.auto_altitude_pl_db {
            Some(budget) => {
                let params = uavnet_channel::ChannelParams::default();
                let (h, _) = uavnet_channel::optimal_altitude_m(
                    &params,
                    budget,
                    (50.0, self.area_height_m.max(51.0)),
                );
                h
            }
            None => self.altitude_m,
        };
        let grid = GridSpec::new(area, self.cell_m, altitude)?.build();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let users = sample_users(&mut rng, area, self.num_users, self.distribution);
        let fleet = sample_fleet(
            &mut rng,
            self.num_uavs,
            self.capacity_min,
            self.capacity_max,
            self.tx_power_dbm,
            self.antenna_gain_dbi,
            self.user_range_m,
            self.fleet_style,
        );
        let mut builder = Instance::builder(grid, self.uav_range_m);
        if let Some((x, y)) = self.gateway {
            builder.gateway(uavnet_geom::Point2::new(x, y));
        }
        for pos in users {
            builder.add_user(pos, self.min_rate_bps);
        }
        builder.uavs(fleet);
        Ok(builder.build()?)
    }

    /// Number of users `n`.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of UAVs `K`.
    pub fn num_uavs(&self) -> usize {
        self.num_uavs
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Builder for [`ScenarioSpec`]; see [`ScenarioSpec::builder`].
#[derive(Debug, Clone)]
pub struct ScenarioSpecBuilder {
    spec: ScenarioSpec,
}

impl Default for ScenarioSpecBuilder {
    fn default() -> Self {
        ScenarioSpecBuilder {
            spec: ScenarioSpec {
                area_length_m: 3_000.0,
                area_width_m: 3_000.0,
                area_height_m: 500.0,
                cell_m: 300.0,
                altitude_m: 300.0,
                num_users: 1_000,
                distribution: UserDistribution::default(),
                min_rate_bps: 2_000.0,
                num_uavs: 10,
                capacity_min: 50,
                capacity_max: 300,
                tx_power_dbm: 30.0,
                antenna_gain_dbi: 5.0,
                user_range_m: 500.0,
                uav_range_m: 600.0,
                fleet_style: FleetStyle::CommonRadio,
                gateway: None,
                auto_altitude_pl_db: None,
                seed: 0,
            },
        }
    }
}

impl ScenarioSpecBuilder {
    /// Sets the zone footprint in meters.
    pub fn area_m(&mut self, length: f64, width: f64) -> &mut Self {
        self.spec.area_length_m = length;
        self.spec.area_width_m = width;
        self
    }

    /// Sets the grid cell side `λ` in meters.
    pub fn cell_m(&mut self, cell: f64) -> &mut Self {
        self.spec.cell_m = cell;
        self
    }

    /// Sets the hovering altitude `H_uav` in meters.
    pub fn altitude_m(&mut self, altitude: f64) -> &mut Self {
        self.spec.altitude_m = altitude;
        self
    }

    /// Sets the number of users `n`.
    pub fn users(&mut self, n: usize) -> &mut Self {
        self.spec.num_users = n;
        self
    }

    /// Sets the user placement distribution.
    pub fn distribution(&mut self, d: UserDistribution) -> &mut Self {
        self.spec.distribution = d;
        self
    }

    /// Sets the common minimum data rate in bit/s.
    pub fn min_rate_bps(&mut self, rate: f64) -> &mut Self {
        self.spec.min_rate_bps = rate;
        self
    }

    /// Sets the fleet size `K`.
    pub fn uavs(&mut self, k: usize) -> &mut Self {
        self.spec.num_uavs = k;
        self
    }

    /// Sets the capacity range `[C_min, C_max]`.
    pub fn capacity_range(&mut self, min: u32, max: u32) -> &mut Self {
        self.spec.capacity_min = min;
        self.spec.capacity_max = max;
        self
    }

    /// Sets the base radio (transmit power dBm, antenna gain dBi).
    pub fn radio(&mut self, tx_power_dbm: f64, antenna_gain_dbi: f64) -> &mut Self {
        self.spec.tx_power_dbm = tx_power_dbm;
        self.spec.antenna_gain_dbi = antenna_gain_dbi;
        self
    }

    /// Sets the user coverage radius `R_user` in meters.
    pub fn user_range_m(&mut self, range: f64) -> &mut Self {
        self.spec.user_range_m = range;
        self
    }

    /// Sets the UAV-to-UAV range `R_uav` in meters.
    pub fn uav_range_m(&mut self, range: f64) -> &mut Self {
        self.spec.uav_range_m = range;
        self
    }

    /// Sets how radios scale with capacity.
    pub fn fleet_style(&mut self, style: FleetStyle) -> &mut Self {
        self.spec.fleet_style = style;
        self
    }

    /// Derives the hovering altitude from the channel model instead of
    /// using the fixed default: the Al-Hourani optimal altitude for a
    /// maximum tolerable pathloss of `budget_db`, clamped to the
    /// zone's ceiling (§II-A's "optimal altitude for the maximum
    /// coverage").
    pub fn auto_altitude(&mut self, budget_db: f64) -> &mut Self {
        self.spec.auto_altitude_pl_db = Some(budget_db);
        self
    }

    /// Parks the Internet gateway vehicle at a ground position; a
    /// valid deployment must then keep one UAV within `R_uav` of it.
    pub fn gateway_m(&mut self, x: f64, y: f64) -> &mut Self {
        self.spec.gateway = Some((x, y));
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.spec.seed = seed;
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::InvalidParameter`] for empty fleets/user sets,
    /// inverted capacity ranges or non-positive ranges;
    /// [`WorkloadError::Geometry`] if the grid parameters are invalid.
    pub fn build(&self) -> Result<ScenarioSpec, WorkloadError> {
        let s = &self.spec;
        if s.num_users == 0 {
            return Err(WorkloadError::InvalidParameter("users must be > 0".into()));
        }
        if s.num_uavs == 0 {
            return Err(WorkloadError::InvalidParameter("uavs must be > 0".into()));
        }
        if s.capacity_min > s.capacity_max {
            return Err(WorkloadError::InvalidParameter(format!(
                "capacity range [{}, {}] is empty",
                s.capacity_min, s.capacity_max
            )));
        }
        for (what, v) in [
            ("user_range_m", s.user_range_m),
            ("uav_range_m", s.uav_range_m),
            ("min_rate_bps", s.min_rate_bps),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(WorkloadError::InvalidParameter(format!("{what} = {v}")));
            }
        }
        // Validate the geometry eagerly so errors surface at build.
        let area = AreaSpec::new(s.area_length_m, s.area_width_m, s.area_height_m)?;
        GridSpec::new(area, s.cell_m, s.altitude_m)?;
        Ok(s.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_and_instantiate() {
        let spec = ScenarioSpec::builder().users(50).uavs(4).build().unwrap();
        let inst = spec.instantiate().unwrap();
        assert_eq!(inst.num_users(), 50);
        assert_eq!(inst.num_uavs(), 4);
        assert_eq!(inst.num_locations(), 100); // (3000/300)²
    }

    #[test]
    fn instantiation_is_deterministic() {
        let spec = ScenarioSpec::builder()
            .users(30)
            .uavs(3)
            .seed(9)
            .build()
            .unwrap();
        let a = spec.instantiate().unwrap();
        let b = spec.instantiate().unwrap();
        assert_eq!(a.users(), b.users());
        assert_eq!(a.uavs(), b.uavs());
        let other = ScenarioSpec::builder()
            .users(30)
            .uavs(3)
            .seed(10)
            .build()
            .unwrap();
        let c = other.instantiate().unwrap();
        assert_ne!(a.users(), c.users());
    }

    #[test]
    fn paper_figure_shorthand() {
        let spec = ScenarioSpec::paper_figure(100, 8, 3).unwrap();
        assert_eq!(spec.num_users(), 100);
        assert_eq!(spec.num_uavs(), 8);
        assert_eq!(spec.seed(), 3);
    }

    #[test]
    fn validation_failures() {
        assert!(ScenarioSpec::builder().users(0).build().is_err());
        assert!(ScenarioSpec::builder().uavs(0).build().is_err());
        assert!(ScenarioSpec::builder()
            .capacity_range(10, 5)
            .build()
            .is_err());
        assert!(ScenarioSpec::builder().user_range_m(-1.0).build().is_err());
        assert!(ScenarioSpec::builder().cell_m(7.0).build().is_err()); // 3000 % 7 ≠ 0
    }

    #[test]
    fn spec_is_serde_roundtrippable() {
        fn check<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        check::<ScenarioSpec>();
    }

    #[test]
    fn auto_altitude_changes_the_hovering_plane() {
        let fixed = ScenarioSpec::builder()
            .users(20)
            .uavs(2)
            .seed(4)
            .build()
            .unwrap()
            .instantiate()
            .unwrap();
        let auto = ScenarioSpec::builder()
            .users(20)
            .uavs(2)
            .seed(4)
            .auto_altitude(105.0)
            .build()
            .unwrap()
            .instantiate()
            .unwrap();
        let h_fixed = fixed.grid().spec().altitude_m();
        let h_auto = auto.grid().spec().altitude_m();
        assert_eq!(h_fixed, 300.0);
        assert_ne!(h_auto, 300.0);
        // Clamped to the zone ceiling.
        assert!(h_auto > 50.0 && h_auto <= 500.0, "h = {h_auto}");
    }

    #[test]
    fn error_chain_exposes_source() {
        let err = ScenarioSpec::builder().cell_m(7.0).build().unwrap_err();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("geometry"));
    }
}
