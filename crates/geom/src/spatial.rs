//! Uniform-grid spatial index over planar points.
//!
//! [`SpatialIndex`] bins a fixed point set (ground users) into square
//! bins of a caller-chosen side — keyed to the coarsest coverage radius
//! `R_user^k` of the fleet — so that "points within `r` of a query
//! center" touches only the bins overlapping the query disc instead of
//! the whole population. Instance construction uses it to build the
//! per-class coverage tables in `O(points + hits)` per location.

use crate::Point2;

/// An immutable uniform-grid index over a point set.
///
/// Points are stored in CSR layout: `starts[b]..starts[b + 1]` slices
/// `ids` with the (ascending) indices of the points falling into bin
/// `b`. Queries scan the bins overlapping the query disc's bounding
/// box and apply the exact `d² ≤ r²` test per point.
///
/// # Examples
///
/// ```
/// use uavnet_geom::{Point2, SpatialIndex};
///
/// let pts = vec![Point2::new(10.0, 10.0), Point2::new(500.0, 500.0)];
/// let index = SpatialIndex::build(&pts, 100.0);
/// let mut near: Vec<u32> = Vec::new();
/// index.for_each_within(&pts, Point2::new(0.0, 0.0), 50.0, |id| near.push(id));
/// assert_eq!(near, vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    bin_m: f64,
    min_x: f64,
    min_y: f64,
    cols: usize,
    rows: usize,
    /// CSR offsets: bin `b` holds `ids[starts[b]..starts[b + 1]]`.
    starts: Vec<u32>,
    /// Point indices grouped by bin, ascending within each bin.
    ids: Vec<u32>,
}

impl SpatialIndex {
    /// Builds an index over `points` with square bins of side `bin_m`.
    ///
    /// The bin side should be on the order of the largest query radius:
    /// a radius-`r` query then touches at most `⌈r/bin⌉ + 2` bins per
    /// axis. A non-finite or non-positive `bin_m` falls back to a
    /// single bin (the index degrades to a linear scan, never breaks).
    ///
    /// # Panics
    ///
    /// Panics if `points.len()` exceeds `u32::MAX`.
    pub fn build(points: &[Point2], bin_m: f64) -> Self {
        assert!(points.len() <= u32::MAX as usize, "too many points");
        let bin_m = if bin_m.is_finite() && bin_m > 0.0 {
            bin_m
        } else {
            f64::INFINITY
        };
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if points.is_empty() {
            return SpatialIndex {
                bin_m: 1.0,
                min_x: 0.0,
                min_y: 0.0,
                cols: 1,
                rows: 1,
                starts: vec![0, 0],
                ids: Vec::new(),
            };
        }
        let span_x = (max_x - min_x).max(0.0);
        let span_y = (max_y - min_y).max(0.0);
        let (cols, rows, bin_m) = if bin_m.is_finite() {
            (
                (span_x / bin_m).floor() as usize + 1,
                (span_y / bin_m).floor() as usize + 1,
                bin_m,
            )
        } else {
            (1, 1, span_x.max(span_y).max(1.0) + 1.0)
        };
        let num_bins = cols * rows;
        // Counting sort into CSR: count per bin, prefix-sum, fill.
        let bin_of = |p: &Point2| -> usize {
            let bx = (((p.x - min_x) / bin_m) as usize).min(cols - 1);
            let by = (((p.y - min_y) / bin_m) as usize).min(rows - 1);
            by * cols + bx
        };
        let mut counts = vec![0u32; num_bins + 1];
        for p in points {
            counts[bin_of(p) + 1] += 1;
        }
        for b in 0..num_bins {
            counts[b + 1] += counts[b];
        }
        let starts = counts.clone();
        let mut ids = vec![0u32; points.len()];
        let mut cursor = counts;
        for (i, p) in points.iter().enumerate() {
            let b = bin_of(p);
            ids[cursor[b] as usize] = i as u32;
            cursor[b] += 1;
        }
        SpatialIndex {
            bin_m,
            min_x,
            min_y,
            cols,
            rows,
            starts,
            ids,
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The bin side actually in use (meters).
    #[inline]
    pub fn bin_m(&self) -> f64 {
        self.bin_m
    }

    /// Calls `f` with the id of every indexed point within `radius_m`
    /// (Euclidean, inclusive: `d² ≤ r²`) of `center`.
    ///
    /// Ids arrive grouped by bin — ascending within a bin but **not**
    /// globally sorted; callers needing sorted output must sort. The
    /// caller supplies the point coordinates, so the exact distance
    /// test runs here against the index's own copy-free CSR ids.
    pub fn for_each_within(
        &self,
        points: &[Point2],
        center: Point2,
        radius_m: f64,
        mut f: impl FnMut(u32),
    ) {
        if radius_m < 0.0 || !radius_m.is_finite() || self.ids.is_empty() {
            return;
        }
        let r_sq = radius_m * radius_m;
        let lo_bx = (((center.x - radius_m - self.min_x) / self.bin_m).floor()).max(0.0) as usize;
        let lo_by = (((center.y - radius_m - self.min_y) / self.bin_m).floor()).max(0.0) as usize;
        let hi_bx =
            ((((center.x + radius_m - self.min_x) / self.bin_m).floor()) as isize).max(-1) as usize;
        let hi_by =
            ((((center.y + radius_m - self.min_y) / self.bin_m).floor()) as isize).max(-1) as usize;
        if lo_bx >= self.cols || lo_by >= self.rows || hi_bx == usize::MAX || hi_by == usize::MAX {
            return;
        }
        let hi_bx = hi_bx.min(self.cols - 1);
        let hi_by = hi_by.min(self.rows - 1);
        for by in lo_by..=hi_by {
            for bx in lo_bx..=hi_bx {
                let b = by * self.cols + bx;
                let (s, e) = (self.starts[b] as usize, self.starts[b + 1] as usize);
                for &id in &self.ids[s..e] {
                    if points[id as usize].distance_sq(center) <= r_sq {
                        f(id);
                    }
                }
            }
        }
    }
}

/// A partition of a `cols × rows` cell grid into square tiles of
/// `tile × tile` cells (edge tiles may be smaller). Tiles are the
/// shard boundaries of the hierarchical solver: each tile owns the
/// cells inside it, and tile ids follow row-major order over the tile
/// grid.
///
/// # Examples
///
/// ```
/// use uavnet_geom::TilePartition;
///
/// // A 5×4 grid in 2×2-cell tiles → 3×2 = 6 tiles.
/// let tiles = TilePartition::build(5, 4, 2);
/// assert_eq!(tiles.num_tiles(), 6);
/// assert_eq!(tiles.tile_of(0), 0);
/// assert_eq!(tiles.tile_of(4), 2); // col 4 → third tile column
/// let mut all: Vec<u32> = (0..tiles.num_tiles()).flat_map(|t| tiles.cells(t).to_vec()).collect();
/// all.sort_unstable();
/// assert_eq!(all, (0..20).collect::<Vec<u32>>());
/// ```
#[derive(Debug, Clone)]
pub struct TilePartition {
    tile: usize,
    grid_cols: usize,
    tile_cols: usize,
    tile_rows: usize,
    /// CSR offsets: tile `t` owns `cells[starts[t]..starts[t + 1]]`.
    starts: Vec<u32>,
    /// Cell indices grouped by tile, ascending within each tile.
    cells: Vec<u32>,
}

impl TilePartition {
    /// Partitions a `cols × rows` grid into `tile_cells`-sided tiles.
    /// A zero `tile_cells` (or one covering the whole grid) yields a
    /// single tile.
    ///
    /// # Panics
    ///
    /// Panics if the grid has zero cells or more than `u32::MAX`.
    pub fn build(cols: usize, rows: usize, tile_cells: usize) -> Self {
        assert!(cols > 0 && rows > 0, "empty grid");
        assert!(
            cols.saturating_mul(rows) <= u32::MAX as usize,
            "grid too large"
        );
        let tile = if tile_cells == 0 {
            cols.max(rows)
        } else {
            tile_cells
        };
        let tile_cols = cols.div_ceil(tile);
        let tile_rows = rows.div_ceil(tile);
        let num_tiles = tile_cols * tile_rows;
        // Counting sort of cells into tiles, mirroring SpatialIndex's
        // CSR build.
        let mut counts = vec![0u32; num_tiles + 1];
        let tile_of = |cell: usize| {
            let (c, r) = (cell % cols, cell / cols);
            (r / tile) * tile_cols + c / tile
        };
        for cell in 0..cols * rows {
            counts[tile_of(cell) + 1] += 1;
        }
        for t in 0..num_tiles {
            counts[t + 1] += counts[t];
        }
        let mut cursor = counts.clone();
        let mut cells = vec![0u32; cols * rows];
        for cell in 0..cols * rows {
            let t = tile_of(cell);
            cells[cursor[t] as usize] = cell as u32;
            cursor[t] += 1;
        }
        TilePartition {
            tile,
            grid_cols: cols,
            tile_cols,
            tile_rows,
            starts: counts,
            cells,
        }
    }

    /// Number of tiles.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        self.tile_cols * self.tile_rows
    }

    /// Tile side length in cells.
    #[inline]
    pub fn tile_cells(&self) -> usize {
        self.tile
    }

    /// The tile owning `cell` (row-major cell index).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the grid.
    #[inline]
    pub fn tile_of(&self, cell: usize) -> usize {
        assert!(cell < self.cells.len(), "cell {cell} outside the grid");
        let (c, r) = (cell % self.grid_cols, cell / self.grid_cols);
        (r / self.tile) * self.tile_cols + c / self.tile
    }

    /// The cells owned by tile `t`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[inline]
    pub fn cells(&self, t: usize) -> &[u32] {
        &self.cells[self.starts[t] as usize..self.starts[t + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Vec<Point2> {
        // Deterministic pseudo-random cloud over a 1 km square.
        let mut pts = Vec::new();
        let mut state = 0x9e37u64;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 33) as f64 % 1000.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 33) as f64 % 1000.0;
            pts.push(Point2::new(x, y));
        }
        pts
    }

    fn brute(points: &[Point2], center: Point2, r: f64) -> Vec<u32> {
        (0..points.len() as u32)
            .filter(|&i| points[i as usize].distance_sq(center) <= r * r)
            .collect()
    }

    #[test]
    fn matches_bruteforce_across_radii_and_bins() {
        let pts = cloud();
        for bin in [30.0, 100.0, 333.0, 5000.0] {
            let index = SpatialIndex::build(&pts, bin);
            for (cx, cy, r) in [
                (0.0, 0.0, 150.0),
                (500.0, 500.0, 100.0),
                (990.0, 10.0, 400.0),
                (500.0, 500.0, 0.0),
                (-200.0, -200.0, 100.0),
                (500.0, 500.0, 5000.0),
            ] {
                let center = Point2::new(cx, cy);
                let mut got = Vec::new();
                index.for_each_within(&pts, center, r, |id| got.push(id));
                got.sort_unstable();
                assert_eq!(
                    got,
                    brute(&pts, center, r),
                    "bin {bin} r {r} at ({cx},{cy})"
                );
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = SpatialIndex::build(&[], 100.0);
        assert!(empty.is_empty());
        let mut hits = 0;
        empty.for_each_within(&[], Point2::new(0.0, 0.0), 1e9, |_| hits += 1);
        assert_eq!(hits, 0);

        // All points coincident; zero span still indexes.
        let pts = vec![Point2::new(5.0, 5.0); 4];
        let idx = SpatialIndex::build(&pts, 10.0);
        assert_eq!(idx.len(), 4);
        let mut got = Vec::new();
        idx.for_each_within(&pts, Point2::new(5.0, 5.0), 0.0, |id| got.push(id));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn invalid_bin_degrades_to_single_bin() {
        let pts = cloud();
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let idx = SpatialIndex::build(&pts, bad);
            let center = Point2::new(400.0, 600.0);
            let mut got = Vec::new();
            idx.for_each_within(&pts, center, 250.0, |id| got.push(id));
            got.sort_unstable();
            assert_eq!(got, brute(&pts, center, 250.0), "bin {bad}");
        }
    }

    #[test]
    fn negative_or_nan_radius_yields_nothing() {
        let pts = cloud();
        let idx = SpatialIndex::build(&pts, 100.0);
        for r in [-1.0, f64::NAN] {
            let mut hits = 0;
            idx.for_each_within(&pts, Point2::new(500.0, 500.0), r, |_| hits += 1);
            assert_eq!(hits, 0);
        }
    }

    #[test]
    fn boundary_distance_is_inclusive() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(100.0, 0.0)];
        let idx = SpatialIndex::build(&pts, 50.0);
        let mut got = Vec::new();
        idx.for_each_within(&pts, Point2::new(0.0, 0.0), 100.0, |id| got.push(id));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]); // d == r is inside
    }

    #[test]
    fn tiles_partition_every_cell_exactly_once() {
        for (cols, rows, tile) in [(7, 5, 3), (8, 8, 4), (1, 9, 2), (6, 6, 10), (5, 5, 1)] {
            let p = TilePartition::build(cols, rows, tile);
            let mut seen = vec![false; cols * rows];
            for t in 0..p.num_tiles() {
                let cells = p.cells(t);
                assert!(cells.windows(2).all(|w| w[0] < w[1]), "unsorted tile {t}");
                for &c in cells {
                    assert_eq!(p.tile_of(c as usize), t);
                    assert!(!seen[c as usize], "cell {c} in two tiles");
                    seen[c as usize] = true;
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "{cols}x{rows}/{tile} missed a cell"
            );
        }
    }

    #[test]
    fn tile_geometry_is_row_major_blocks() {
        // 6×4 grid, 2-cell tiles → 3×2 tile grid.
        let p = TilePartition::build(6, 4, 2);
        assert_eq!(p.num_tiles(), 6);
        assert_eq!(p.cells(0), &[0, 1, 6, 7]);
        assert_eq!(p.cells(2), &[4, 5, 10, 11]);
        assert_eq!(p.cells(3), &[12, 13, 18, 19]);
    }

    #[test]
    fn zero_tile_side_is_one_tile() {
        let p = TilePartition::build(4, 3, 0);
        assert_eq!(p.num_tiles(), 1);
        assert_eq!(p.cells(0).len(), 12);
        assert_eq!(p.tile_cells(), 4);
    }
}
