//! Planar and spatial points with Euclidean metrics.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A point in the horizontal plane, in meters.
///
/// Ground users live at `(x, y, 0)`; candidate hovering locations live at
/// `(x, y, H_uav)`. Both are represented by a `Point2` plus, where needed,
/// an altitude (see [`Point3`] and [`Point2::at_altitude`]).
///
/// # Examples
///
/// ```
/// use uavnet_geom::Point2;
/// let a = Point2::new(0.0, 0.0);
/// let b = Point2::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// East coordinate in meters.
    pub x: f64,
    /// North coordinate in meters.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates in meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Squared Euclidean distance to `other`, in m².
    ///
    /// Cheaper than [`Point2::distance`]; prefer it for comparisons
    /// against a squared radius.
    #[inline]
    pub fn distance_sq(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`, in meters.
    #[inline]
    pub fn distance(self, other: Point2) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Lifts this planar point to altitude `z` meters.
    #[inline]
    pub fn at_altitude(self, z: f64) -> Point3 {
        Point3::new(self.x, self.y, z)
    }

    /// Midpoint of the segment between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point2) -> Point2 {
        Point2::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Whether every coordinate is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point2 {
    type Output = Point2;
    #[inline]
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    #[inline]
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

/// A point in 3-D space, in meters.
///
/// Used to measure slant (air-to-ground) distances between a hovering UAV
/// and a ground user.
///
/// # Examples
///
/// ```
/// use uavnet_geom::{Point2, Point3};
/// let user = Point2::new(0.0, 0.0).at_altitude(0.0);
/// let uav = Point3::new(0.0, 0.0, 300.0);
/// assert_eq!(user.distance(uav), 300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// East coordinate in meters.
    pub x: f64,
    /// North coordinate in meters.
    pub y: f64,
    /// Altitude in meters.
    pub z: f64,
}

impl Point3 {
    /// Creates a point from its coordinates in meters.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Squared Euclidean distance to `other`, in m².
    #[inline]
    pub fn distance_sq(self, other: Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Euclidean distance to `other`, in meters.
    #[inline]
    pub fn distance(self, other: Point3) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Projects onto the horizontal plane, discarding altitude.
    #[inline]
    pub fn to_plane(self) -> Point2 {
        Point2::new(self.x, self.y)
    }

    /// Horizontal (plane-projected) distance to `other`, in meters.
    #[inline]
    pub fn horizontal_distance(self, other: Point3) -> f64 {
        self.to_plane().distance(other.to_plane())
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1}, {:.1})", self.x, self.y, self.z)
    }
}

impl From<(f64, f64, f64)> for Point3 {
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Point3::new(x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345() {
        let a = Point2::new(1.0, 1.0);
        let b = Point2::new(4.0, 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point2::new(-3.5, 10.0);
        let b = Point2::new(7.25, -2.0);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point2::new(12.0, -9.0);
        assert_eq!(a.distance(a), 0.0);
        let p = a.at_altitude(100.0);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn slant_distance_uses_altitude() {
        let ground = Point3::new(0.0, 0.0, 0.0);
        let uav = Point3::new(300.0, 400.0, 0.0);
        assert_eq!(ground.distance(uav), 500.0);
        let uav_high = Point3::new(0.0, 400.0, 300.0);
        assert_eq!(ground.distance(uav_high), 500.0);
    }

    #[test]
    fn horizontal_distance_ignores_altitude() {
        let a = Point3::new(0.0, 0.0, 123.0);
        let b = Point3::new(3.0, 4.0, 999.0);
        assert_eq!(a.horizontal_distance(b), 5.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(0.5, -1.0);
        assert_eq!(a + b, Point2::new(1.5, 1.0));
        assert_eq!(a - b, Point2::new(0.5, 3.0));
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(10.0, 4.0);
        let m = a.midpoint(b);
        assert_eq!(m, Point2::new(5.0, 2.0));
        assert!((a.distance(m) - b.distance(m)).abs() < 1e-12);
    }

    #[test]
    fn conversions() {
        let p: Point2 = (2.0, 3.0).into();
        assert_eq!(p, Point2::new(2.0, 3.0));
        let q: Point3 = (2.0, 3.0, 4.0).into();
        assert_eq!(q.to_plane(), p);
    }

    #[test]
    fn is_finite_rejects_nan() {
        assert!(Point2::new(1.0, 2.0).is_finite());
        assert!(!Point2::new(f64::NAN, 2.0).is_finite());
        assert!(!Point2::new(1.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point2::new(1.0, 2.0).to_string(), "(1.0, 2.0)");
        assert_eq!(Point3::new(1.0, 2.0, 3.0).to_string(), "(1.0, 2.0, 3.0)");
    }

    #[test]
    fn points_are_serde_and_threadsafe() {
        fn assert_caps<T: serde::Serialize + serde::de::DeserializeOwned + Send + Sync>() {}
        assert_caps::<Point2>();
        assert_caps::<Point3>();
    }
}
