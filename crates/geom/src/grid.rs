//! The hovering-plane grid of candidate UAV locations.

use crate::{AreaSpec, GeomError, Point2, Point3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a grid cell / candidate hovering location (`v_j` in the paper).
///
/// Cells are numbered row-major: index `= row * cols + col`, with `col`
/// increasing eastwards and `row` increasing northwards.
pub type CellIndex = usize;

/// Parameters of the hovering-plane grid: the disaster zone, the cell side
/// `λ`, and the common hovering altitude `H_uav` (§II-A).
///
/// # Examples
///
/// ```
/// use uavnet_geom::{AreaSpec, GridSpec};
/// # fn main() -> Result<(), uavnet_geom::GeomError> {
/// let spec = GridSpec::new(AreaSpec::paper_default(), 50.0, 300.0)?;
/// let grid = spec.build();
/// assert_eq!(grid.num_cells(), 3_600); // (3000/50)^2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    area: AreaSpec,
    cell_m: f64,
    altitude_m: f64,
}

impl GridSpec {
    /// Creates a grid specification.
    ///
    /// # Errors
    ///
    /// * [`GeomError::NonPositiveDimension`] if `cell_m` or `altitude_m`
    ///   is not a strictly positive finite number;
    /// * [`GeomError::NotDivisible`] if the area's length or width is not
    ///   an (almost exact) integer multiple of `cell_m`, as the paper
    ///   assumes.
    pub fn new(area: AreaSpec, cell_m: f64, altitude_m: f64) -> Result<Self, GeomError> {
        for (what, value) in [("cell side", cell_m), ("altitude", altitude_m)] {
            if !(value.is_finite() && value > 0.0) {
                return Err(GeomError::NonPositiveDimension { what, value });
            }
        }
        for side in [area.length_m(), area.width_m()] {
            let ratio = side / cell_m;
            if (ratio - ratio.round()).abs() > 1e-9 || ratio.round() < 1.0 {
                return Err(GeomError::NotDivisible { side, cell: cell_m });
            }
        }
        Ok(GridSpec {
            area,
            cell_m,
            altitude_m,
        })
    }

    /// The enclosing disaster zone.
    #[inline]
    pub fn area(&self) -> AreaSpec {
        self.area
    }

    /// Cell side `λ` in meters.
    #[inline]
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Hovering altitude `H_uav` in meters.
    #[inline]
    pub fn altitude_m(&self) -> f64 {
        self.altitude_m
    }

    /// Materializes the grid (cell counts and center coordinates).
    pub fn build(self) -> Grid {
        let cols = (self.area.length_m() / self.cell_m).round() as usize;
        let rows = (self.area.width_m() / self.cell_m).round() as usize;
        let mut centers = Vec::with_capacity(cols * rows);
        for row in 0..rows {
            for col in 0..cols {
                centers.push(Point2::new(
                    (col as f64 + 0.5) * self.cell_m,
                    (row as f64 + 0.5) * self.cell_m,
                ));
            }
        }
        Grid {
            spec: self,
            cols,
            rows,
            centers,
        }
    }
}

/// The materialized hovering-plane grid: `m = cols × rows` candidate
/// hovering locations, one per cell center, all at altitude `H_uav`.
///
/// At most one UAV may occupy a cell (collision avoidance, §II-A); that
/// constraint is enforced by the deployment algorithms, not by this type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    spec: GridSpec,
    cols: usize,
    rows: usize,
    centers: Vec<Point2>,
}

impl Grid {
    /// The specification this grid was built from.
    #[inline]
    pub fn spec(&self) -> GridSpec {
        self.spec
    }

    /// Number of columns (`α / λ`).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows (`β / λ`).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of candidate hovering locations `m`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.centers.len()
    }

    /// Planar center of cell `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_cells()`.
    #[inline]
    pub fn cell_center(&self, idx: CellIndex) -> Point2 {
        self.centers[idx]
    }

    /// Hovering position (center of cell `idx` at altitude `H_uav`).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_cells()`.
    #[inline]
    pub fn hover_position(&self, idx: CellIndex) -> Point3 {
        self.centers[idx].at_altitude(self.spec.altitude_m())
    }

    /// All cell centers, indexed by [`CellIndex`].
    #[inline]
    pub fn centers(&self) -> &[Point2] {
        &self.centers
    }

    /// Converts `(col, row)` to a cell index.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols` or `row >= rows`.
    #[inline]
    pub fn index(&self, col: usize, row: usize) -> CellIndex {
        assert!(col < self.cols, "col {col} out of range {}", self.cols);
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        row * self.cols + col
    }

    /// Converts a cell index back to `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.num_cells()`.
    #[inline]
    pub fn col_row(&self, idx: CellIndex) -> (usize, usize) {
        assert!(idx < self.num_cells(), "cell {idx} out of range");
        (idx % self.cols, idx / self.cols)
    }

    /// The cell containing a planar point, or `None` if the point lies
    /// outside the zone footprint.
    pub fn locate(&self, p: Point2) -> Option<CellIndex> {
        if !self.spec.area().contains(p) {
            return None;
        }
        let cell = self.spec.cell_m();
        let col = ((p.x / cell) as usize).min(self.cols - 1);
        let row = ((p.y / cell) as usize).min(self.rows - 1);
        Some(self.index(col, row))
    }

    /// Iterator over the cell indices whose centers lie within `radius_m`
    /// (Euclidean, planar) of `center`. Uses the grid structure to visit
    /// only the bounding box of the disc.
    pub fn cells_within(&self, center: Point2, radius_m: f64) -> NeighborIter<'_> {
        let cell = self.spec.cell_m();
        let lo_col = (((center.x - radius_m) / cell).floor().max(0.0)) as usize;
        let lo_row = (((center.y - radius_m) / cell).floor().max(0.0)) as usize;
        let hi_col = (((center.x + radius_m) / cell).ceil() as isize).min(self.cols as isize - 1);
        let hi_row = (((center.y + radius_m) / cell).ceil() as isize).min(self.rows as isize - 1);
        NeighborIter {
            grid: self,
            center,
            radius_sq: radius_m * radius_m,
            lo_col,
            hi_col: hi_col.max(lo_col as isize - 1) as usize,
            row: lo_row,
            hi_row: hi_row.max(lo_row as isize - 1) as usize,
            col: lo_col,
            done: hi_col < lo_col as isize || hi_row < lo_row as isize,
        }
    }

    /// The 4-neighborhood (N/S/E/W) of a cell, clipped to the grid.
    pub fn orthogonal_neighbors(&self, idx: CellIndex) -> Vec<CellIndex> {
        let (col, row) = self.col_row(idx);
        let mut out = Vec::with_capacity(4);
        if col > 0 {
            out.push(self.index(col - 1, row));
        }
        if col + 1 < self.cols {
            out.push(self.index(col + 1, row));
        }
        if row > 0 {
            out.push(self.index(col, row - 1));
        }
        if row + 1 < self.rows {
            out.push(self.index(col, row + 1));
        }
        out
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} grid (cell {:.0}m, altitude {:.0}m)",
            self.cols,
            self.rows,
            self.spec.cell_m(),
            self.spec.altitude_m()
        )
    }
}

/// Iterator produced by [`Grid::cells_within`].
#[derive(Debug)]
pub struct NeighborIter<'a> {
    grid: &'a Grid,
    center: Point2,
    radius_sq: f64,
    lo_col: usize,
    hi_col: usize,
    row: usize,
    hi_row: usize,
    col: usize,
    done: bool,
}

impl Iterator for NeighborIter<'_> {
    type Item = CellIndex;

    fn next(&mut self) -> Option<CellIndex> {
        if self.done {
            return None;
        }
        loop {
            if self.row > self.hi_row {
                self.done = true;
                return None;
            }
            let idx = self.grid.index(self.col, self.row);
            let inside = self.grid.cell_center(idx).distance_sq(self.center) <= self.radius_sq;
            // advance cursor
            if self.col == self.hi_col {
                self.col = self.lo_col;
                self.row += 1;
            } else {
                self.col += 1;
            }
            if inside {
                return Some(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> Grid {
        let area = AreaSpec::new(400.0, 300.0, 100.0).unwrap();
        GridSpec::new(area, 100.0, 50.0).unwrap().build()
    }

    #[test]
    fn dimensions_match_spec() {
        let g = small_grid();
        assert_eq!(g.cols(), 4);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.num_cells(), 12);
    }

    #[test]
    fn rejects_indivisible_cell() {
        let area = AreaSpec::new(400.0, 300.0, 100.0).unwrap();
        assert!(matches!(
            GridSpec::new(area, 150.0, 50.0),
            Err(GeomError::NotDivisible { .. })
        ));
    }

    #[test]
    fn rejects_bad_altitude_and_cell() {
        let area = AreaSpec::new(400.0, 300.0, 100.0).unwrap();
        assert!(GridSpec::new(area, 0.0, 50.0).is_err());
        assert!(GridSpec::new(area, 100.0, -1.0).is_err());
    }

    #[test]
    fn centers_are_cell_midpoints() {
        let g = small_grid();
        assert_eq!(g.cell_center(0), Point2::new(50.0, 50.0));
        assert_eq!(g.cell_center(1), Point2::new(150.0, 50.0));
        assert_eq!(g.cell_center(4), Point2::new(50.0, 150.0));
        assert_eq!(g.cell_center(11), Point2::new(350.0, 250.0));
    }

    #[test]
    fn index_roundtrip() {
        let g = small_grid();
        for idx in 0..g.num_cells() {
            let (c, r) = g.col_row(idx);
            assert_eq!(g.index(c, r), idx);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_panics_out_of_range() {
        let g = small_grid();
        let _ = g.index(4, 0);
    }

    #[test]
    fn locate_finds_containing_cell() {
        let g = small_grid();
        assert_eq!(g.locate(Point2::new(10.0, 10.0)), Some(0));
        assert_eq!(g.locate(Point2::new(399.9, 299.9)), Some(11));
        // boundary point snaps into the last cell
        assert_eq!(g.locate(Point2::new(400.0, 300.0)), Some(11));
        assert_eq!(g.locate(Point2::new(401.0, 0.0)), None);
    }

    #[test]
    fn locate_agrees_with_centers() {
        let g = small_grid();
        for idx in 0..g.num_cells() {
            assert_eq!(g.locate(g.cell_center(idx)), Some(idx));
        }
    }

    #[test]
    fn hover_position_has_altitude() {
        let g = small_grid();
        let p = g.hover_position(0);
        assert_eq!(p.z, 50.0);
        assert_eq!(p.to_plane(), g.cell_center(0));
    }

    #[test]
    fn cells_within_radius_matches_bruteforce() {
        let g = small_grid();
        let center = Point2::new(170.0, 140.0);
        for radius in [0.0, 60.0, 120.0, 500.0] {
            let mut fast: Vec<_> = g.cells_within(center, radius).collect();
            fast.sort_unstable();
            let brute: Vec<_> = (0..g.num_cells())
                .filter(|&i| g.cell_center(i).distance(center) <= radius)
                .collect();
            assert_eq!(fast, brute, "radius {radius}");
        }
    }

    #[test]
    fn cells_within_offgrid_center() {
        let g = small_grid();
        // center far outside the grid still behaves
        let got: Vec<_> = g
            .cells_within(Point2::new(-1000.0, -1000.0), 100.0)
            .collect();
        assert!(got.is_empty());
        let all: Vec<_> = g.cells_within(Point2::new(-1000.0, -1000.0), 1e6).collect();
        assert_eq!(all.len(), g.num_cells());
    }

    #[test]
    fn orthogonal_neighbors_clip_at_edges() {
        let g = small_grid();
        let corner = g.orthogonal_neighbors(0);
        assert_eq!(corner.len(), 2);
        let middle = g.orthogonal_neighbors(g.index(1, 1));
        assert_eq!(middle.len(), 4);
    }

    #[test]
    fn paper_grid_has_3600_cells() {
        let g = GridSpec::new(AreaSpec::paper_default(), 50.0, 300.0)
            .unwrap()
            .build();
        assert_eq!(g.num_cells(), 3600);
        assert_eq!(g.cols(), 60);
    }

    #[test]
    fn display_mentions_shape() {
        let g = small_grid();
        assert!(g.to_string().contains("4x3"));
    }
}
