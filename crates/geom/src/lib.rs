//! Geometry and grid substrate for UAV hovering-plane models.
//!
//! This crate provides the spatial primitives used throughout `uavnet`:
//!
//! * [`Point2`] / [`Point3`] — positions of ground users and hovering UAVs;
//! * [`AreaSpec`] — the rectangular disaster zone (length `α`, width `β`,
//!   height `γ` in the paper's notation);
//! * [`Grid`] — the partition of the hovering plane at altitude `H_uav`
//!   into `m = (α/λ) × (β/λ)` square cells of side `λ`, whose centers are
//!   the candidate hovering locations `v_1 … v_m`;
//! * [`SpatialIndex`] — a uniform-grid point index answering "users
//!   within `R_user^k` of a location" by scanning only neighboring bins,
//!   the workhorse behind `O(users + hits)` coverage-table construction.
//!
//! # Examples
//!
//! ```
//! use uavnet_geom::{AreaSpec, GridSpec, Point2};
//!
//! # fn main() -> Result<(), uavnet_geom::GeomError> {
//! let area = AreaSpec::new(3_000.0, 3_000.0, 500.0)?;
//! let grid = GridSpec::new(area, 300.0, 300.0)?.build();
//! assert_eq!(grid.num_cells(), 100);
//! let c = grid.cell_center(0);
//! assert_eq!(c, Point2::new(150.0, 150.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod grid;
mod point;
mod spatial;

pub use area::AreaSpec;
pub use grid::{CellIndex, Grid, GridSpec, NeighborIter};
pub use point::{Point2, Point3};
pub use spatial::{SpatialIndex, TilePartition};

use std::error::Error;
use std::fmt;

/// Error raised when constructing geometric specifications from invalid
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum GeomError {
    /// A dimension (length, width, height, cell side, altitude) was not a
    /// strictly positive finite number.
    NonPositiveDimension {
        /// Which parameter was rejected.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The area sides are not divisible by the requested grid cell side.
    ///
    /// The paper assumes `α` and `β` are divisible by `λ` (§II-A); we
    /// enforce it so every cell is exactly square.
    NotDivisible {
        /// The side length of the area that failed the check.
        side: f64,
        /// The requested cell side `λ`.
        cell: f64,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::NonPositiveDimension { what, value } => {
                write!(f, "{what} must be a positive finite number, got {value}")
            }
            GeomError::NotDivisible { side, cell } => {
                write!(f, "area side {side} is not divisible by cell side {cell}")
            }
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = GeomError::NonPositiveDimension {
            what: "length",
            value: -1.0,
        };
        assert!(!e.to_string().is_empty());
        let e = GeomError::NotDivisible {
            side: 3000.0,
            cell: 37.0,
        };
        assert!(e.to_string().contains("divisible"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
