//! The rectangular disaster-zone model.

use crate::{GeomError, Point2};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The 3-dimensional disaster zone of §II-A: length `α`, width `β`, height
/// `γ`, all in meters.
///
/// Ground users live on the `z = 0` plane inside `[0, α] × [0, β]`; UAVs
/// hover at some altitude `H_uav ≤ γ`.
///
/// # Examples
///
/// ```
/// use uavnet_geom::AreaSpec;
/// # fn main() -> Result<(), uavnet_geom::GeomError> {
/// let area = AreaSpec::new(3_000.0, 3_000.0, 500.0)?;
/// assert_eq!(area.surface_m2(), 9_000_000.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaSpec {
    length_m: f64,
    width_m: f64,
    height_m: f64,
}

impl AreaSpec {
    /// Creates a disaster zone of `length × width` meters with maximum
    /// usable altitude `height` meters.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::NonPositiveDimension`] if any dimension is not
    /// a strictly positive finite number.
    pub fn new(length_m: f64, width_m: f64, height_m: f64) -> Result<Self, GeomError> {
        for (what, value) in [
            ("length", length_m),
            ("width", width_m),
            ("height", height_m),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(GeomError::NonPositiveDimension { what, value });
            }
        }
        Ok(AreaSpec {
            length_m,
            width_m,
            height_m,
        })
    }

    /// The paper's default 3 km × 3 km zone with a 500 m ceiling.
    pub fn paper_default() -> Self {
        AreaSpec {
            length_m: 3_000.0,
            width_m: 3_000.0,
            height_m: 500.0,
        }
    }

    /// East-west extent `α` in meters.
    #[inline]
    pub fn length_m(&self) -> f64 {
        self.length_m
    }

    /// North-south extent `β` in meters.
    #[inline]
    pub fn width_m(&self) -> f64 {
        self.width_m
    }

    /// Vertical extent `γ` in meters.
    #[inline]
    pub fn height_m(&self) -> f64 {
        self.height_m
    }

    /// Ground surface area in m².
    #[inline]
    pub fn surface_m2(&self) -> f64 {
        self.length_m * self.width_m
    }

    /// Whether a planar point lies inside the zone footprint
    /// (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        (0.0..=self.length_m).contains(&p.x) && (0.0..=self.width_m).contains(&p.y)
    }

    /// Clamps a planar point into the zone footprint.
    #[inline]
    pub fn clamp(&self, p: Point2) -> Point2 {
        Point2::new(p.x.clamp(0.0, self.length_m), p.y.clamp(0.0, self.width_m))
    }

    /// The geometric center of the footprint.
    #[inline]
    pub fn center(&self) -> Point2 {
        Point2::new(self.length_m / 2.0, self.width_m / 2.0)
    }
}

impl fmt::Display for AreaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0}m x {:.0}m x {:.0}m zone",
            self.length_m, self.width_m, self.height_m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_nonpositive_dimensions() {
        assert!(AreaSpec::new(0.0, 10.0, 10.0).is_err());
        assert!(AreaSpec::new(10.0, -1.0, 10.0).is_err());
        assert!(AreaSpec::new(10.0, 10.0, f64::NAN).is_err());
        assert!(AreaSpec::new(10.0, 10.0, f64::INFINITY).is_err());
    }

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let a = AreaSpec::paper_default();
        assert_eq!(a.length_m(), 3_000.0);
        assert_eq!(a.width_m(), 3_000.0);
        assert_eq!(a.height_m(), 500.0);
    }

    #[test]
    fn contains_is_boundary_inclusive() {
        let a = AreaSpec::new(100.0, 50.0, 10.0).unwrap();
        assert!(a.contains(Point2::new(0.0, 0.0)));
        assert!(a.contains(Point2::new(100.0, 50.0)));
        assert!(!a.contains(Point2::new(100.1, 50.0)));
        assert!(!a.contains(Point2::new(-0.1, 0.0)));
    }

    #[test]
    fn clamp_pulls_points_inside() {
        let a = AreaSpec::new(100.0, 50.0, 10.0).unwrap();
        assert_eq!(a.clamp(Point2::new(-5.0, 60.0)), Point2::new(0.0, 50.0));
        assert_eq!(a.clamp(Point2::new(20.0, 20.0)), Point2::new(20.0, 20.0));
    }

    #[test]
    fn center_is_centroid() {
        let a = AreaSpec::new(100.0, 50.0, 10.0).unwrap();
        assert_eq!(a.center(), Point2::new(50.0, 25.0));
    }

    #[test]
    fn display_mentions_dimensions() {
        let a = AreaSpec::new(100.0, 50.0, 10.0).unwrap();
        let s = a.to_string();
        assert!(s.contains("100") && s.contains("50"));
    }
}
