//! Stamps the build git SHA into `UAVNET_GIT_SHA` so run provenance
//! (the `session_start` header and `MetricsSnapshot`) can identify
//! which commit produced a recording without any runtime git
//! dependency. Falls back to `"unknown"` outside a git checkout (e.g.
//! a source tarball) — provenance is best-effort, never a build error.

use std::process::Command;

fn main() {
    let sha = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=UAVNET_GIT_SHA={sha}");
    // Re-stamp when the checked-out commit moves.
    for p in ["../../.git/HEAD", "../../.git/refs/heads"] {
        if std::path::Path::new(p).exists() {
            println!("cargo:rerun-if-changed={p}");
        }
    }
}
