//! Property tests of the log-linear latency histogram: counts survive
//! arbitrary concurrent `record` + `merge` interleavings, and every
//! reported percentile lands in the same bucket as the true order
//! statistic (i.e. the error is bounded by one bucket's relative
//! width, 1/8).

use proptest::prelude::*;
use uavnet_obs::{bucket_index, bucket_lower, bucket_upper, Histogram};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// R recorder threads hammer one shared histogram while M merger
    /// threads concurrently fold prefilled source histograms into it:
    /// no count, sum or max is ever lost.
    #[test]
    fn concurrent_record_and_merge_lose_nothing(
        values in proptest::collection::vec(0u64..5_000_000, 8..64),
        source_values in proptest::collection::vec(0u64..5_000_000, 1..32),
        recorders in 1usize..4,
        mergers in 1usize..4,
    ) {
        let target = Histogram::new();
        let source = Histogram::new();
        for &v in &source_values {
            source.record(v);
        }
        std::thread::scope(|scope| {
            for _ in 0..recorders {
                scope.spawn(|| {
                    for &v in &values {
                        target.record(v);
                    }
                });
            }
            for _ in 0..mergers {
                scope.spawn(|| target.merge_from(&source));
            }
        });
        let expect_count = (recorders * values.len() + mergers * source_values.len()) as u64;
        let expect_sum = recorders as u64 * values.iter().sum::<u64>()
            + mergers as u64 * source_values.iter().sum::<u64>();
        let expect_max = values
            .iter()
            .chain(&source_values)
            .copied()
            .max()
            .unwrap_or(0);
        prop_assert_eq!(target.count(), expect_count);
        prop_assert_eq!(target.sum(), expect_sum);
        prop_assert_eq!(target.max(), expect_max);
        // The cumulative dump agrees with the tallies and is monotone.
        let cum = target.cumulative_buckets();
        prop_assert_eq!(cum.last().map(|&(_, c)| c), Some(expect_count));
        for w in cum.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// Every reported percentile shares a bucket with the true
    /// rank-`ceil(q·n)` order statistic, bracketing the true quantile
    /// within one bucket's bounds.
    #[test]
    fn percentiles_bracket_true_quantiles(
        values in proptest::collection::vec(0u64..50_000_000, 1..300),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let n = sorted.len() as f64;
        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
            let true_v = sorted[rank - 1];
            let got = h.value_at_quantile(q);
            let b = bucket_index(true_v);
            prop_assert!(
                bucket_lower(b) <= got && got <= bucket_upper(b),
                "q={}: reported {} outside true value {}'s bucket [{}, {}]",
                q, got, true_v, bucket_lower(b), bucket_upper(b)
            );
            prop_assert!(got <= h.max());
        }
        // The exact maximum is preserved, not bucketed.
        prop_assert_eq!(h.value_at_quantile(1.0), *sorted.last().unwrap());
    }
}
