//! Zero-dependency log-linear latency histograms (HDR-style).
//!
//! A [`Histogram`] is a fixed array of atomic bucket counters indexed
//! by a **log-linear** scheme: values below [`SUB_BUCKETS`] get one
//! bucket each, and every octave `[2^k, 2^(k+1))` above that is split
//! into [`SUB_BUCKETS`] equal-width sub-buckets. The relative bucket
//! width is therefore at most `1 / SUB_BUCKETS` (12.5%), which bounds
//! the error of every reported percentile, while the whole structure
//! is a few KiB and every operation is a handful of relaxed atomics:
//!
//! * [`Histogram::record`] — one `fetch_add` on the bucket plus
//!   count/sum/max bookkeeping; wait-free, callable from any thread;
//! * [`Histogram::merge_from`] — bucket-wise `fetch_add` of another
//!   histogram's counts; lock-free and never loses counts even when
//!   the source is concurrently recording (the merge reads a snapshot
//!   of each bucket; the source keeps its own counts);
//! * [`Histogram::value_at_quantile`] — walks the cumulative counts
//!   and returns the inclusive upper bound of the bucket holding the
//!   requested rank, so the reported value and the true quantile
//!   always share a bucket (`tests/proptest_hist.rs` proves both
//!   properties).
//!
//! The instrumentation statics in [`crate::hists`] wrap a histogram
//! with a stable snapshot name and a session-gated [`HistTimer`]; the
//! raw type here is deliberately *not* gated on the `enabled` feature
//! so it can be exercised (and property-tested) as a plain concurrent
//! data structure.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of sub-buckets per octave (and width of the initial linear
/// region). Bounds the relative bucket error at `1 / SUB_BUCKETS`.
pub const SUB_BUCKETS: u64 = 8;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Octaves tracked above the linear region. With 8 sub-buckets this
/// covers values up to `2^45` ns (~9.7 hours) before saturating into
/// the final bucket; the exact maximum is still tracked separately.
const OCTAVES: usize = 42;

/// Total bucket count of every [`Histogram`].
pub const NUM_BUCKETS: usize = SUB_BUCKETS as usize * (OCTAVES + 1);

/// Index of the bucket covering `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS + 1) as usize;
    if octave > OCTAVES {
        return NUM_BUCKETS - 1;
    }
    let mantissa = (v >> (msb - SUB_BITS)) - SUB_BUCKETS;
    octave * SUB_BUCKETS as usize + mantissa as usize
}

/// Inclusive lower bound of bucket `idx`.
#[inline]
pub fn bucket_lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let octave = (idx / SUB_BUCKETS) as u32;
    let mantissa = idx % SUB_BUCKETS;
    (SUB_BUCKETS + mantissa) << (octave - 1)
}

/// Inclusive upper bound of bucket `idx` (`u64::MAX` for the
/// saturating final bucket).
#[inline]
pub fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(idx + 1) - 1
    }
}

/// Reported percentiles of one histogram (see
/// [`Histogram::quantiles`]). `max` is exact; the `p*` values are
/// bucket upper bounds clamped to `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Quantiles {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (ns when recording latencies).
    pub sum: u64,
    /// Median (bucket-resolution upper bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

/// A fixed-size log-linear histogram of `u64` values; see the
/// [module docs](self) for the bucket scheme and concurrency
/// guarantees.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. `const` so statics need no lazy init.
    pub const fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
        }
    }

    /// Records one value. Wait-free; callable from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds `other`'s counts into `self` bucket by bucket. Lock-free;
    /// never loses counts: `other` is only read (it keeps its own
    /// tallies), and every addition into `self` is a `fetch_add`.
    /// Concurrent recorders on either side are safe; the merge simply
    /// captures a point-in-time snapshot of each bucket.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            let n = src.load(Ordering::Relaxed);
            if n != 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zeroes every bucket and tally (used by `session_begin`).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value (0 when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` (in `0.0..=1.0`): the inclusive upper
    /// bound of the first bucket whose cumulative count reaches rank
    /// `ceil(q · count)`, clamped to the exact maximum. Returns 0 for
    /// an empty histogram. The reported value always lands in the same
    /// bucket as the true rank-`ceil(q·count)` order statistic, so the
    /// error is bounded by one bucket's width (≤ 12.5% relative).
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_upper(idx).min(self.max());
            }
        }
        self.max()
    }

    /// The standard percentile report (p50/p90/p99/max + count + sum).
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            count: self.count(),
            sum: self.sum(),
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
            max: self.max(),
        }
    }

    /// The non-empty buckets as `(inclusive_upper_bound,
    /// cumulative_count)` pairs, cumulative over the whole histogram —
    /// the wire format of `hist` event-log lines. Upper bounds are
    /// strictly increasing and cumulative counts monotone
    /// non-decreasing; the final pair's count equals [`count`].
    ///
    /// [`count`]: Histogram::count
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                cum += n;
                out.push((bucket_upper(idx).min(self.max()), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_contiguous_and_monotone() {
        // Indices are monotone in the value and every bucket's bounds
        // agree with the index function.
        let mut prev = 0usize;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotone at {v}");
            assert!(bucket_lower(idx) <= v && v <= bucket_upper(idx));
            prev = idx;
        }
        // The first linear region is exact.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
        }
        // Relative width stays within 1/SUB_BUCKETS beyond the linear
        // region.
        for idx in SUB_BUCKETS as usize..NUM_BUCKETS - 1 {
            let lo = bucket_lower(idx);
            let hi = bucket_upper(idx);
            assert!(hi >= lo);
            assert!(hi - lo < lo.div_ceil(SUB_BUCKETS) * 2);
        }
        // Huge values saturate into the final bucket without panicking.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn record_quantiles_and_merge() {
        let h = Histogram::new();
        assert_eq!(h.value_at_quantile(0.5), 0);
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        // Every reported percentile lands in the true value's bucket.
        for (q, true_v) in [(0.50, 500u64), (0.90, 900), (0.99, 990)] {
            let got = h.value_at_quantile(q);
            assert_eq!(
                bucket_index(got),
                bucket_index(true_v),
                "q={q}: {got} vs true {true_v}"
            );
        }
        let other = Histogram::new();
        other.record(5);
        other.record(2_000_000);
        other.merge_from(&h);
        assert_eq!(other.count(), 1002);
        assert_eq!(other.max(), 2_000_000);
        assert_eq!(other.sum(), 500_500 + 5 + 2_000_000);
        let cum = other.cumulative_buckets();
        assert_eq!(cum.last().unwrap().1, 1002);
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1);
        }
        other.reset();
        assert_eq!(other.count(), 0);
        assert!(other.cumulative_buckets().is_empty());
    }
}
