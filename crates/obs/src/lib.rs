//! Zero-dependency tracing/metrics facade for the `uavnet` pipeline.
//!
//! Every solver phase — Algorithm 1 segment planning, seed
//! enumeration, lazy-greedy selection, matching, MST/gateway
//! connection, the verify oracles — reports into this crate through
//! three primitives:
//!
//! * [`Counter`] — a named monotone `u64` (gain queries, BFS restarts,
//!   CELF bound hits, …). All counters are declared centrally in
//!   [`counters`] so a snapshot can enumerate them without life-before-
//!   main registration tricks.
//! * [`Phase`] — a named wall-clock accumulator (`total_ns`, `count`),
//!   fed either by a [`SpanGuard`] (RAII timing of one call) or by
//!   [`Phase::record_ns`] when the caller already aggregated timings
//!   (the subset sweep folds per-worker phase nanos first and reports
//!   once). Declared centrally in [`phases`].
//! * [`Event`] — a structured record appended to the in-memory session
//!   log and exportable as JSON-lines ([`Event::to_json_line`]):
//!   session boundaries, span completions, and per-run records with
//!   arbitrary `u64` fields ([`emit_run`]).
//!
//! # Sessions
//!
//! Recording is **off** until [`session_begin`] flips the global
//! active flag; [`session_end`] flips it back and returns a
//! [`MetricsSnapshot`] of every counter and phase. Instrumentation
//! call sites never check the flag themselves — [`Counter::add`],
//! [`Phase::span`] and [`emit_run`] are no-ops while inactive — so
//! enabling a session changes *observation only*, never solver
//! behavior (`tests/proptest_obs.rs` proves placements, assignments
//! and deterministic stats are bit-identical either way).
//!
//! # Compile-time gating
//!
//! Without the `enabled` cargo feature every public function keeps its
//! signature but compiles to an inlined empty body: no atomics, no
//! clock reads, no branches on the hot path. The solver crates expose
//! this as their `obs` feature (e.g. `uavnet-core/obs`); the perf gate
//! in CI runs with the feature off and must see zero overhead.
//!
//! # Event schema (`uavnet-obs/1`)
//!
//! One JSON object per line, every line carrying `seq` (global
//! sequence number), `t_ns` (nanoseconds since session start) and
//! `type`:
//!
//! ```json
//! {"seq":0,"t_ns":0,"type":"session_start","schema":"uavnet-obs/1"}
//! {"seq":1,"t_ns":12034,"type":"span","name":"alg1_plan","ns":11020}
//! {"seq":2,"t_ns":842113,"type":"run","name":"sweep","fields":{"s":2,"served":118}}
//! {"seq":3,"t_ns":850010,"type":"counter","name":"sweep.gain_queries","value":5310}
//! {"seq":4,"t_ns":85090,"type":"session_end"}
//! ```
//!
//! `counter` lines are emitted once per declared counter by
//! [`session_end`], so a complete log always ends with the final
//! counter values followed by `session_end`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::Mutex;
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Schema identifier stamped on session-start events and snapshots.
pub const SCHEMA: &str = "uavnet-obs/1";

static ACTIVE: AtomicBool = AtomicBool::new(false);

#[cfg(feature = "enabled")]
static SEQ: AtomicU64 = AtomicU64::new(0);

#[cfg(feature = "enabled")]
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());

#[cfg(feature = "enabled")]
static SESSION_START: Mutex<Option<Instant>> = Mutex::new(None);

/// Whether the instrumentation was compiled in (the `enabled` cargo
/// feature). When `false`, every other function in this crate is an
/// inlined no-op.
#[inline]
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Whether a recording session is currently active.
#[inline]
pub fn session_active() -> bool {
    is_enabled() && ACTIVE.load(Ordering::Relaxed)
}

/// Starts a recording session: resets every counter, phase and the
/// event log, then activates recording. Returns `false` (and does
/// nothing) when the instrumentation is compiled out or a session is
/// already active.
pub fn session_begin() -> bool {
    #[cfg(feature = "enabled")]
    {
        if ACTIVE.swap(true, Ordering::SeqCst) {
            return false;
        }
        for c in counters::ALL {
            c.value.store(0, Ordering::Relaxed);
        }
        for p in phases::ALL {
            p.total_ns.store(0, Ordering::Relaxed);
            p.count.store(0, Ordering::Relaxed);
        }
        SEQ.store(0, Ordering::Relaxed);
        let mut events = EVENTS.lock().expect("obs event log poisoned");
        events.clear();
        *SESSION_START.lock().expect("obs clock poisoned") = Some(Instant::now());
        drop(events);
        push_event(EventKind::SessionStart);
        true
    }
    #[cfg(not(feature = "enabled"))]
    false
}

/// Ends the active session: emits one `counter` event per declared
/// counter plus a `session_end` marker, deactivates recording and
/// returns the final [`MetricsSnapshot`]. Returns `None` when the
/// instrumentation is compiled out or no session was active.
pub fn session_end() -> Option<MetricsSnapshot> {
    #[cfg(feature = "enabled")]
    {
        if !ACTIVE.load(Ordering::SeqCst) {
            return None;
        }
        for c in counters::ALL {
            push_event(EventKind::Counter {
                name: c.name,
                value: c.get(),
            });
        }
        push_event(EventKind::SessionEnd);
        let snap = snapshot();
        ACTIVE.store(false, Ordering::SeqCst);
        Some(snap)
    }
    #[cfg(not(feature = "enabled"))]
    None
}

/// The current values of every declared counter and phase, whether or
/// not a session is active. Empty when the instrumentation is
/// compiled out.
pub fn snapshot() -> MetricsSnapshot {
    #[cfg(feature = "enabled")]
    {
        MetricsSnapshot {
            counters: counters::ALL.iter().map(|c| (c.name, c.get())).collect(),
            phases: phases::ALL
                .iter()
                .map(|p| PhaseStat {
                    name: p.name,
                    total_ns: p.total_ns.load(Ordering::Relaxed),
                    count: p.count.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    MetricsSnapshot {
        counters: Vec::new(),
        phases: Vec::new(),
    }
}

/// Drains and returns the accumulated session events (oldest first).
/// Empty when the instrumentation is compiled out.
pub fn drain_events() -> Vec<Event> {
    #[cfg(feature = "enabled")]
    {
        std::mem::take(&mut *EVENTS.lock().expect("obs event log poisoned"))
    }
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// Appends a `run` event with the given name and `u64` fields to the
/// session log — the structured per-run record (e.g. one per subset
/// sweep with served counts, bound tightness, relay budget
/// consumption). No-op while no session is active.
#[inline]
pub fn emit_run(name: &'static str, fields: &[(&'static str, u64)]) {
    #[cfg(feature = "enabled")]
    if session_active() {
        push_event(EventKind::Run {
            name,
            fields: fields.to_vec(),
        });
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (name, fields);
    }
}

#[cfg(feature = "enabled")]
fn push_event(kind: EventKind) {
    let t_ns = SESSION_START
        .lock()
        .expect("obs clock poisoned")
        .map(|s| s.elapsed().as_nanos() as u64)
        .unwrap_or(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    EVENTS
        .lock()
        .expect("obs event log poisoned")
        .push(Event { seq, t_ns, kind });
}

/// A named monotone counter. Declare instances in [`counters`]; call
/// sites do `counters::SWEEP_GAIN_QUERIES.add(1)`.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter with the given snapshot name.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The snapshot/event name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` when a session is active; no-op (and compiled out
    /// without the `enabled` feature) otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if session_active() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named wall-clock accumulator. Declare instances in [`phases`];
/// time a call with [`Phase::span`] or fold pre-aggregated
/// nanoseconds in with [`Phase::record_ns`].
#[derive(Debug)]
pub struct Phase {
    name: &'static str,
    total_ns: AtomicU64,
    count: AtomicU64,
}

impl Phase {
    /// A zeroed phase with the given snapshot name.
    pub const fn new(name: &'static str) -> Self {
        Phase {
            name,
            total_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// The snapshot/event name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Accumulated nanoseconds.
    #[inline]
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Number of recordings folded in.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds `ns` into the phase total and appends a `span` event.
    /// No-op while no session is active.
    #[inline]
    pub fn record_ns(&'static self, ns: u64) {
        #[cfg(feature = "enabled")]
        if session_active() {
            self.total_ns.fetch_add(ns, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            push_event(EventKind::Span {
                name: self.name,
                ns,
            });
        }
        #[cfg(not(feature = "enabled"))]
        let _ = ns;
    }

    /// An RAII guard that records the elapsed wall-clock into this
    /// phase when dropped. Reads the clock only while a session is
    /// active.
    #[inline]
    pub fn span(&'static self) -> SpanGuard {
        SpanGuard {
            #[cfg(feature = "enabled")]
            inner: session_active().then(|| (self, Instant::now())),
        }
    }
}

/// RAII timer returned by [`Phase::span`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    inner: Option<(&'static Phase, Instant)>,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some((phase, start)) = self.inner.take() {
            phase.record_ns(start.elapsed().as_nanos() as u64);
        }
    }
}

/// One structured record of the session log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number within the session (0-based).
    pub seq: u64,
    /// Nanoseconds since session start when the event was recorded.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A session began (always `seq` 0).
    SessionStart,
    /// A session ended; the log is complete.
    SessionEnd,
    /// A [`Phase`] recording completed.
    Span {
        /// The phase name.
        name: &'static str,
        /// Recorded nanoseconds.
        ns: u64,
    },
    /// A counter's final value, emitted by [`session_end`].
    Counter {
        /// The counter name.
        name: &'static str,
        /// Value at session end.
        value: u64,
    },
    /// A per-run record emitted by [`emit_run`].
    Run {
        /// Record name (e.g. `"sweep"`).
        name: &'static str,
        /// Named `u64` fields.
        fields: Vec<(&'static str, u64)>,
    },
}

impl Event {
    /// Serializes the event as one JSON-lines line (no trailing
    /// newline), following the [crate-level schema](crate).
    pub fn to_json_line(&self) -> String {
        let mut s = format!("{{\"seq\":{},\"t_ns\":{},", self.seq, self.t_ns);
        match &self.kind {
            EventKind::SessionStart => {
                s.push_str(&format!(
                    "\"type\":\"session_start\",\"schema\":\"{SCHEMA}\""
                ));
            }
            EventKind::SessionEnd => s.push_str("\"type\":\"session_end\""),
            EventKind::Span { name, ns } => {
                s.push_str("\"type\":\"span\",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(&format!(",\"ns\":{ns}"));
            }
            EventKind::Counter { name, value } => {
                s.push_str("\"type\":\"counter\",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(&format!(",\"value\":{value}"));
            }
            EventKind::Run { name, fields } => {
                s.push_str("\"type\":\"run\",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(",\"fields\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_json_str(&mut s, k);
                    s.push_str(&format!(":{v}"));
                }
                s.push('}');
            }
        }
        s.push('}');
        s
    }
}

/// Final value of one [`Phase`] inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// The phase name.
    pub name: &'static str,
    /// Accumulated nanoseconds.
    pub total_ns: u64,
    /// Number of recordings.
    pub count: u64,
}

/// End-of-run values of every declared counter and phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, in declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-phase totals, in declaration order.
    pub phases: Vec<PhaseStat>,
}

impl MetricsSnapshot {
    /// The value of a counter by name, if declared.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The stats of a phase by name, if declared.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Serializes the snapshot as a pretty-stable JSON document:
    /// `{"schema":…,"counters":{…},"phases":{name:{"total_ns":…,"count":…}}}`.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\n  \"schema\": \"{SCHEMA}\",\n  \"counters\": {{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_str(&mut s, name);
            s.push_str(&format!(": {value}"));
        }
        s.push_str("\n  },\n  \"phases\": {");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_str(&mut s, p.name);
            s.push_str(&format!(
                ": {{ \"total_ns\": {}, \"count\": {} }}",
                p.total_ns, p.count
            ));
        }
        s.push_str("\n  }\n}\n");
        s
    }
}

/// Appends `value` as a JSON string literal (quoted, escaped).
fn push_json_str(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Every counter of the pipeline, declared centrally so snapshots can
/// enumerate them. Names are dot-separated `snake_case` and stable —
/// they are the public schema of the event log.
pub mod counters {
    use super::Counter;

    /// Algorithm 1 segment plans computed.
    pub static ALG1_PLANS: Counter = Counter::new("alg1.plans");
    /// Subset sweeps completed ([`emit_run`](super::emit_run) `"sweep"`
    /// records carry the per-run detail).
    pub static SWEEP_RUNS: Counter = Counter::new("sweep.runs");
    /// `s`-subsets enumerated before chain pruning.
    pub static SWEEP_SUBSETS_ENUMERATED: Counter = Counter::new("sweep.subsets_enumerated");
    /// Subsets dropped by chain pruning.
    pub static SWEEP_SUBSETS_CHAIN_PRUNED: Counter = Counter::new("sweep.subsets_chain_pruned");
    /// Subsets fully evaluated (greedy + connection + scoring).
    pub static SWEEP_SUBSETS_EVALUATED: Counter = Counter::new("sweep.subsets_evaluated");
    /// Evaluated subsets whose connected set exceeded the fleet.
    pub static SWEEP_SUBSETS_UNCONNECTABLE: Counter = Counter::new("sweep.subsets_unconnectable");
    /// Marginal-gain (trial-insertion) queries issued by the sweep.
    pub static SWEEP_GAIN_QUERIES: Counter = Counter::new("sweep.gain_queries");
    /// Lazy-greedy heap pops satisfied by a still-current cached gain
    /// (no oracle evaluation needed) — CELF bound hits.
    pub static GREEDY_BOUND_HITS: Counter = Counter::new("greedy.bound_hits");
    /// Lazy-greedy oracle evaluations (cache misses).
    pub static GREEDY_EVALUATIONS: Counter = Counter::new("greedy.evaluations");
    /// Full heap re-seeds after a bound invalidation
    /// (radio-class change between picks).
    pub static GREEDY_BOUND_RESEEDS: Counter = Counter::new("greedy.bound_reseeds");
    /// Elements committed by the lazy greedy.
    pub static GREEDY_COMMITS: Counter = Counter::new("greedy.commits");
    /// Augmenting-path BFS runs started by the matching kernel.
    pub static MATCHING_BFS_RESTARTS: Counter = Counter::new("matching.bfs_restarts");
    /// Users claimed by the free-user pre-pass (length-1 augmenting
    /// paths applied without a BFS restart).
    pub static MATCHING_PREPASS_HITS: Counter = Counter::new("matching.prepass_hits");
    /// Trial insertions ([`evaluate_station`] calls) answered.
    ///
    /// [`evaluate_station`]: https://docs.rs/uavnet-flow
    pub static MATCHING_TRIAL_EVALUATIONS: Counter = Counter::new("matching.trial_evaluations");
    /// MST relay connections performed.
    pub static CONNECT_MST_CONNECTIONS: Counter = Counter::new("connect.mst_connections");
    /// Relay cells added across all connections.
    pub static CONNECT_RELAYS_ADDED: Counter = Counter::new("connect.relays_added");
    /// Gateway extensions that had to add cells.
    pub static CONNECT_GATEWAY_EXTENSIONS: Counter = Counter::new("connect.gateway_extensions");
    /// Connection attempts that returned a typed error.
    pub static CONNECT_FAILURES: Counter = Counter::new("connect.failures");
    /// Connectivity substrates built.
    pub static SUBSTRATE_BUILDS: Counter = Counter::new("substrate.builds");
    /// Differential-oracle checks executed.
    pub static VERIFY_CHECKS: Counter = Counter::new("verify.checks");
    /// Differential-oracle checks that found a divergence.
    pub static VERIFY_FAILURES: Counter = Counter::new("verify.failures");

    /// Every declared counter, in schema order.
    pub static ALL: &[&Counter] = &[
        &ALG1_PLANS,
        &SWEEP_RUNS,
        &SWEEP_SUBSETS_ENUMERATED,
        &SWEEP_SUBSETS_CHAIN_PRUNED,
        &SWEEP_SUBSETS_EVALUATED,
        &SWEEP_SUBSETS_UNCONNECTABLE,
        &SWEEP_GAIN_QUERIES,
        &GREEDY_BOUND_HITS,
        &GREEDY_EVALUATIONS,
        &GREEDY_BOUND_RESEEDS,
        &GREEDY_COMMITS,
        &MATCHING_BFS_RESTARTS,
        &MATCHING_PREPASS_HITS,
        &MATCHING_TRIAL_EVALUATIONS,
        &CONNECT_MST_CONNECTIONS,
        &CONNECT_RELAYS_ADDED,
        &CONNECT_GATEWAY_EXTENSIONS,
        &CONNECT_FAILURES,
        &SUBSTRATE_BUILDS,
        &VERIFY_CHECKS,
        &VERIFY_FAILURES,
    ];
}

/// Every wall-clock phase of the pipeline, declared centrally. Names
/// are stable `snake_case` — the public schema of span events.
pub mod phases {
    use super::Phase;

    /// Algorithm 1 segment planning ([`SegmentPlan::optimal`]).
    ///
    /// [`SegmentPlan::optimal`]: https://docs.rs/uavnet-core
    pub static ALG1_PLAN: Phase = Phase::new("alg1_plan");
    /// Building the per-instance connectivity substrate.
    pub static SUBSTRATE_BUILD: Phase = Phase::new("substrate_build");
    /// Combination generation + chain pruning, summed across workers.
    pub static ENUMERATION: Phase = Phase::new("enumeration");
    /// Lazy greedy (matroid build, gain queries, commits), summed
    /// across workers.
    pub static GREEDY: Phase = Phase::new("greedy");
    /// MST relay connection + gateway extension, summed across workers.
    pub static CONNECTION: Phase = Phase::new("connection");
    /// Relay deployment + scoring, summed across workers.
    pub static SCORING: Phase = Phase::new("scoring");
    /// Hop-structure queries answered from the substrate (also counted
    /// inside `greedy`/`connection`).
    pub static SUBSTRATE_QUERY: Phase = Phase::new("substrate_query");
    /// End-to-end wall clock of one subset sweep.
    pub static SWEEP_TOTAL: Phase = Phase::new("sweep_total");
    /// Differential-oracle batteries (`uavnet-core::verify`).
    pub static VERIFY: Phase = Phase::new("verify");

    /// Every declared phase, in schema order.
    pub static ALL: &[&Phase] = &[
        &ALG1_PLAN,
        &SUBSTRATE_BUILD,
        &ENUMERATION,
        &GREEDY,
        &CONNECTION,
        &SCORING,
        &SUBSTRATE_QUERY,
        &SWEEP_TOTAL,
        &VERIFY,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_inert() {
        assert!(!is_enabled());
        assert!(!session_begin());
        assert!(!session_active());
        counters::SWEEP_GAIN_QUERIES.add(5);
        assert_eq!(counters::SWEEP_GAIN_QUERIES.get(), 0);
        phases::GREEDY.record_ns(1_000);
        drop(phases::GREEDY.span());
        assert_eq!(phases::GREEDY.total_ns(), 0);
        emit_run("sweep", &[("s", 1)]);
        assert!(drain_events().is_empty());
        assert!(session_end().is_none());
        let snap = snapshot();
        assert!(snap.counters.is_empty() && snap.phases.is_empty());
    }

    // The enabled-path tests mutate the global session, so they run in
    // one #[test] to avoid cross-test interference under the parallel
    // test runner.
    #[cfg(feature = "enabled")]
    #[test]
    fn session_records_counters_phases_and_events() {
        assert!(is_enabled());
        assert!(session_begin());
        assert!(!session_begin(), "nested sessions are rejected");
        assert!(session_active());

        counters::SWEEP_GAIN_QUERIES.add(3);
        counters::SWEEP_GAIN_QUERIES.add(4);
        phases::GREEDY.record_ns(1_000);
        {
            let _span = phases::ALG1_PLAN.span();
        }
        emit_run("sweep", &[("s", 2), ("served", 17)]);

        let snap = session_end().expect("active session yields a snapshot");
        assert!(!session_active());
        assert_eq!(snap.counter("sweep.gain_queries"), Some(7));
        let greedy = snap.phase("greedy").unwrap();
        assert_eq!((greedy.total_ns, greedy.count), (1_000, 1));
        assert_eq!(snap.phase("alg1_plan").unwrap().count, 1);
        assert_eq!(snap.counter("no.such.counter"), None);

        let events = drain_events();
        assert!(matches!(events[0].kind, EventKind::SessionStart));
        assert!(matches!(events.last().unwrap().kind, EventKind::SessionEnd));
        // seq strictly increasing, t_ns monotone non-decreasing.
        for w in events.windows(2) {
            assert!(w[1].seq > w[0].seq);
            assert!(w[1].t_ns >= w[0].t_ns);
        }
        // One counter event per declared counter, before session_end.
        let counter_events = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Counter { .. }))
            .count();
        assert_eq!(counter_events, counters::ALL.len());
        // The run event survives with its fields.
        let run = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Run { name, fields } if *name == "sweep" => Some(fields.clone()),
                _ => None,
            })
            .expect("run event recorded");
        assert_eq!(run, vec![("s", 2), ("served", 17)]);

        // JSON-lines round-trip shape (schema smoke test).
        let line = events[0].to_json_line();
        assert!(line.starts_with("{\"seq\":0,"));
        assert!(line.contains("\"type\":\"session_start\""));
        assert!(line.contains(SCHEMA));
        let span_line = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Span { .. }))
            .unwrap()
            .to_json_line();
        assert!(span_line.contains("\"type\":\"span\""));
        assert!(span_line.contains("\"ns\":"));
        // Counters/phases no longer record once the session closed.
        counters::SWEEP_GAIN_QUERIES.add(9);
        assert_eq!(counters::SWEEP_GAIN_QUERIES.get(), 7);

        // Snapshot JSON contains every declared name.
        let json = snap.to_json();
        for c in counters::ALL {
            assert!(json.contains(c.name()), "{} missing", c.name());
        }
        for p in phases::ALL {
            assert!(json.contains(p.name()), "{} missing", p.name());
        }
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }
}
