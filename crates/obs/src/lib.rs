//! Zero-dependency tracing/metrics facade for the `uavnet` pipeline.
//!
//! Every solver phase — Algorithm 1 segment planning, seed
//! enumeration, lazy-greedy selection, matching, MST/gateway
//! connection, the verify oracles — reports into this crate through
//! four primitives:
//!
//! * [`Counter`] — a named monotone `u64` (gain queries, BFS restarts,
//!   CELF bound hits, …). All counters are declared centrally in
//!   [`counters`] so a snapshot can enumerate them without life-before-
//!   main registration tricks.
//! * [`Phase`] — a named wall-clock accumulator (`total_ns`,
//!   `self_ns`, `count`, plus a latency [`Histogram`] of the recorded
//!   durations), fed either by a [`SpanGuard`] (RAII timing of one
//!   call, participating in the span tree) or by [`Phase::record_ns`]
//!   when the caller already aggregated timings (the subset sweep
//!   folds per-worker phase nanos first and reports once). Declared
//!   centrally in [`phases`].
//! * [`LatencyHist`] — a named log-linear [`Histogram`] for
//!   per-operation latencies too frequent for the event log
//!   (per-gain-query, per-BFS-restart). Recording is a few relaxed
//!   atomics and emits **no** events; percentiles surface in the
//!   [`MetricsSnapshot`] and as `hist` lines at session end. Declared
//!   centrally in [`hists`].
//! * [`Event`] — a structured record appended to the in-memory session
//!   log and exportable as JSON-lines ([`Event::to_json_line`]):
//!   session boundaries, span completions, histogram dumps, and
//!   per-run records with arbitrary `u64` fields ([`emit_run`]).
//!
//! # Span trees
//!
//! Every [`SpanGuard`] carries a session-unique `id` and the `id` of
//! the innermost span still open **on the same thread** (a
//! thread-local parent stack), so span events form a forest — one
//! rooted tree per top-level span. On drop, a span knows how much of
//! its elapsed time was consumed by same-thread child spans and
//! reports the remainder as **self-time**, giving flamegraph-style
//! attribution across `alg1_plan → enumeration → greedy → matching →
//! connection` without any post-processing. [`Phase::record_ns`]
//! events (pre-aggregated, cross-thread sums) attach to the tree under
//! the caller's current span for attribution, but do **not** subtract
//! from the parent's wall-clock self-time — a sum over `T` worker
//! threads can legitimately exceed the parent's elapsed time, so their
//! `self_ns` equals their `ns` and the parent's self-time stays a
//! same-thread wall-clock quantity.
//!
//! # Sessions
//!
//! Recording is **off** until [`session_begin`] (or
//! [`session_begin_with`], which stamps caller-supplied
//! [`Provenance`]) flips the global active flag; [`session_end`] flips
//! it back and returns a [`MetricsSnapshot`] of every counter, phase
//! and histogram. Instrumentation call sites never check the flag
//! themselves — [`Counter::add`], [`Phase::span`], [`LatencyHist`]
//! timers and [`emit_run`] are no-ops while inactive — so enabling a
//! session changes *observation only*, never solver behavior
//! (`tests/proptest_obs.rs` proves placements, assignments and
//! deterministic stats are bit-identical either way).
//!
//! All internal locks recover from poisoning via
//! `PoisonError::into_inner`: a sweep worker that panics mid-record
//! can never turn an obs lock into a second panic in the thread that
//! joins it and keeps reporting.
//!
//! # Compile-time gating
//!
//! Without the `enabled` cargo feature every public function keeps its
//! signature but compiles to an inlined empty body: no atomics, no
//! clock reads, no branches on the hot path. The solver crates expose
//! this as their `obs` feature (e.g. `uavnet-core/obs`); the perf gate
//! in CI runs with the feature off and must see zero overhead. The
//! [`Histogram`] *type* stays available in both builds (it is a plain
//! concurrent data structure); only the global instrumentation is
//! gated.
//!
//! # Event schema (`uavnet-obs/3`)
//!
//! One JSON object per line, every line carrying `seq` (global
//! sequence number), `t_ns` (nanoseconds since session start) and
//! `type`:
//!
//! ```json
//! {"seq":0,"t_ns":0,"type":"session_start","schema":"uavnet-obs/3","git_sha":"1a2b3c4d5e6f","features":"enabled","threads":8,"instance_fingerprint":"0x00d1f5a2b9c3e870"}
//! {"seq":1,"t_ns":12034,"type":"span","name":"alg1_plan","id":2,"parent_id":1,"tid":1,"ns":11020,"self_ns":11020}
//! {"seq":2,"t_ns":842113,"type":"run","name":"sweep","fields":{"s":2,"served":118}}
//! {"seq":3,"t_ns":850010,"type":"counter","name":"sweep.gain_queries","value":5310}
//! {"seq":4,"t_ns":850200,"type":"gauge","name":"service.queue_depth","value":3}
//! {"seq":5,"t_ns":850400,"type":"hist","name":"greedy.gain_query_ns","count":5310,"sum_ns":9120034,"max_ns":88012,"buckets":[[1535,12],[1791,940],[88012,5310]]}
//! {"seq":6,"t_ns":851090,"type":"session_end"}
//! ```
//!
//! Span `id`s are unique within a session and `parent_id` (omitted for
//! roots) always references another span of the same log — children
//! close before their parents, so the referenced span's own line
//! appears *later*. Schema 3 adds: a `tid` on span lines (a stable
//! per-thread ordinal, so a viewer can lay spans out on thread
//! tracks), explicit cross-thread parents ([`Phase::span_under`] lets
//! a span on one thread attach under a [`SpanHandle`] captured on
//! another — `parent_id < id` and referential integrity still hold
//! because ids are allocated on entry), `gauge` lines for the
//! last-value [`Gauge`] metrics, and the [`dump_trace_event`] exporter
//! rendering the span forest as a Chrome trace-event (Perfetto
//! loadable) JSON document. `hist` buckets are `[inclusive_upper_bound,
//! cumulative_count]` pairs with strictly increasing bounds and
//! monotone counts. `counter`, `gauge` and `hist` lines are emitted
//! once per declared metric by [`session_end`], so a complete log
//! always ends with the final values followed by `session_end`.
//! `scripts/validate_obs_log.py` checks all of it (and still accepts
//! `uavnet-obs/1` and `uavnet-obs/2` logs from older runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;

pub use hist::{bucket_index, bucket_lower, bucket_upper, Histogram, Quantiles, NUM_BUCKETS};

#[cfg(feature = "enabled")]
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Mutex, MutexGuard};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Schema identifier stamped on session-start events and snapshots.
pub const SCHEMA: &str = "uavnet-obs/3";

/// The first schema (flat spans, no histograms, no provenance);
/// still accepted by the log validator.
pub const SCHEMA_V1: &str = "uavnet-obs/1";

/// The second schema (span trees + hists + provenance, but no span
/// `tid`, no gauges, no cross-thread parents); still accepted by the
/// log validator.
pub const SCHEMA_V2: &str = "uavnet-obs/2";

static ACTIVE: AtomicBool = AtomicBool::new(false);

#[cfg(feature = "enabled")]
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Next span id; 0 is reserved as "no span" so ids start at 1.
#[cfg(feature = "enabled")]
static SPAN_NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Bumped by every `session_begin` so thread-local span stacks from a
/// previous session are recognized as stale and discarded.
#[cfg(feature = "enabled")]
static SESSION_EPOCH: AtomicU64 = AtomicU64::new(0);

#[cfg(feature = "enabled")]
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());

#[cfg(feature = "enabled")]
static SESSION_START: Mutex<Option<Instant>> = Mutex::new(None);

#[cfg(feature = "enabled")]
static PROVENANCE: Mutex<Option<Provenance>> = Mutex::new(None);

/// Locks a mutex, recovering the guard from a poisoned lock: a worker
/// that panicked while recording must never escalate into a second
/// panic at the next observation site (the event log is append-only
/// `u64`/`Vec` state, so the worst a poisoned lock can hide is a
/// half-appended session from the panicking thread — which the
/// validator would flag, not corrupt memory).
#[cfg(feature = "enabled")]
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One frame of the thread-local parent stack: the open span's id and
/// the nanoseconds its already-closed same-thread children consumed.
#[cfg(feature = "enabled")]
struct Frame {
    id: u64,
    child_ns: u64,
}

#[cfg(feature = "enabled")]
thread_local! {
    /// `(session epoch, open spans innermost-last)` for this thread.
    static SPAN_STACK: RefCell<(u64, Vec<Frame>)> = const { RefCell::new((0, Vec::new())) };
}

/// Process-global thread ordinal allocator for span `tid`s. Ordinals
/// start at 1 and are *not* reset per session: a `tid` identifies a
/// thread for trace layout, not a session-scoped object, and resetting
/// would let two live threads share an ordinal.
#[cfg(feature = "enabled")]
static THREAD_NEXT_ORDINAL: AtomicU64 = AtomicU64::new(1);

#[cfg(feature = "enabled")]
thread_local! {
    /// Lazily-assigned stable ordinal of this thread (0 = unassigned).
    static THREAD_ORDINAL: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// A small stable ordinal for the calling thread, assigned on first
/// use. Spans carry it as `tid` so a trace viewer can lay them out on
/// per-thread tracks.
#[cfg(feature = "enabled")]
fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| {
        if t.get() == 0 {
            t.set(THREAD_NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Whether the instrumentation was compiled in (the `enabled` cargo
/// feature). When `false`, every other function in this crate is an
/// inlined no-op.
#[inline]
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Whether a recording session is currently active.
#[inline]
pub fn session_active() -> bool {
    is_enabled() && ACTIVE.load(Ordering::Relaxed)
}

/// Run provenance stamped on the `session_start` event and the
/// [`MetricsSnapshot`], so two recorded runs can be compared knowing
/// *what* produced them (`obs_diff` refuses nothing but prints all of
/// it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Git commit of the build (`UAVNET_GIT_SHA` build-time env,
    /// `"unknown"` outside a git checkout).
    pub git_sha: String,
    /// Comma-separated cargo features relevant to the run. Defaults to
    /// this crate's own gate; binaries widen it with theirs.
    pub features: String,
    /// Worker/available threads for the run.
    pub threads: u64,
    /// FNV-1a fingerprint of the problem instance(s), 0 when not
    /// supplied (see `Instance::fingerprint` in `uavnet-core`).
    pub instance_fingerprint: u64,
}

impl Provenance {
    /// Provenance derivable without caller input: build git SHA, this
    /// crate's feature gate, and `std::thread::available_parallelism`.
    /// The instance fingerprint is 0 until a caller supplies one via
    /// [`session_begin_with`].
    pub fn detect() -> Self {
        Provenance {
            git_sha: env!("UAVNET_GIT_SHA").to_string(),
            features: if cfg!(feature = "enabled") {
                "enabled".to_string()
            } else {
                String::new()
            },
            threads: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            instance_fingerprint: 0,
        }
    }
}

impl Default for Provenance {
    fn default() -> Self {
        Provenance::detect()
    }
}

/// Why [`try_session_begin`] could not start a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The `enabled` feature is compiled out; recording is impossible
    /// in this build.
    Disabled,
    /// A session is already recording. Sessions are re-entrant
    /// sequentially (begin → end → begin again in one process), never
    /// concurrently — end the active one first.
    AlreadyActive,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Disabled => {
                write!(
                    f,
                    "obs instrumentation compiled out (feature `enabled` off)"
                )
            }
            SessionError::AlreadyActive => {
                write!(f, "an obs session is already active (double session_begin)")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Starts a recording session with default [`Provenance`]; see
/// [`session_begin_with`].
pub fn session_begin() -> bool {
    try_session_begin().is_ok()
}

/// Boolean-result convenience over [`try_session_begin_with`], kept
/// for call sites that only care whether recording happened.
pub fn session_begin_with(provenance: Provenance) -> bool {
    try_session_begin_with(provenance).is_ok()
}

/// [`try_session_begin_with`] with default [`Provenance`].
///
/// # Errors
///
/// See [`try_session_begin_with`].
pub fn try_session_begin() -> Result<(), SessionError> {
    try_session_begin_with(Provenance::detect())
}

/// Starts a recording session: resets every counter, phase, histogram
/// and the event log, stamps `provenance` on the log's
/// `session_start` header, then activates recording.
///
/// Sessions are re-entrant within one process — a long-running
/// service records one per solve epoch. Each begin bumps the session
/// epoch, so span-parent stacks left on *other* threads by a previous
/// session are recognized as stale and discarded at their next use;
/// the calling thread's stack is reset eagerly here.
///
/// # Errors
///
/// [`SessionError::Disabled`] when the instrumentation is compiled
/// out, [`SessionError::AlreadyActive`] when a session is already
/// recording. Either way nothing is reset.
pub fn try_session_begin_with(provenance: Provenance) -> Result<(), SessionError> {
    #[cfg(feature = "enabled")]
    {
        if ACTIVE.swap(true, Ordering::SeqCst) {
            return Err(SessionError::AlreadyActive);
        }
        for c in counters::ALL {
            c.value.store(0, Ordering::Relaxed);
        }
        for p in phases::ALL {
            p.total_ns.store(0, Ordering::Relaxed);
            p.self_ns.store(0, Ordering::Relaxed);
            p.count.store(0, Ordering::Relaxed);
            p.hist.reset();
        }
        for h in hists::ALL {
            h.hist.reset();
        }
        for g in gauges::ALL {
            g.value.store(0, Ordering::Relaxed);
        }
        SEQ.store(0, Ordering::Relaxed);
        SPAN_NEXT_ID.store(1, Ordering::Relaxed);
        let epoch = SESSION_EPOCH.fetch_add(1, Ordering::SeqCst) + 1;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.0 = epoch;
            s.1.clear();
        });
        lock_recover(&EVENTS).clear();
        *lock_recover(&SESSION_START) = Some(Instant::now());
        *lock_recover(&PROVENANCE) = Some(provenance.clone());
        push_event(EventKind::SessionStart { provenance });
        Ok(())
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = provenance;
        Err(SessionError::Disabled)
    }
}

/// Ends the active session: emits one `counter` event per declared
/// counter, one `gauge` event per declared gauge, and one `hist` event
/// per non-empty histogram (phase duration histograms under the phase
/// name, latency histograms under their own), then a `session_end`
/// marker, deactivates recording and returns the final
/// [`MetricsSnapshot`]. Returns `None` when the
/// instrumentation is compiled out or no session was active.
pub fn session_end() -> Option<MetricsSnapshot> {
    #[cfg(feature = "enabled")]
    {
        if !ACTIVE.load(Ordering::SeqCst) {
            return None;
        }
        for c in counters::ALL {
            push_event(EventKind::Counter {
                name: c.name,
                value: c.get(),
            });
        }
        for g in gauges::ALL {
            push_event(EventKind::Gauge {
                name: g.name,
                value: g.get(),
            });
        }
        for p in phases::ALL {
            if p.hist.count() > 0 {
                push_event(hist_event(p.name, &p.hist));
            }
        }
        for h in hists::ALL {
            if h.hist.count() > 0 {
                push_event(hist_event(h.name, &h.hist));
            }
        }
        push_event(EventKind::SessionEnd);
        let snap = snapshot();
        ACTIVE.store(false, Ordering::SeqCst);
        // Clear the start instant so a late event from a straggler
        // thread cannot stamp times relative to the ended session;
        // the next begin installs a fresh one before re-activating.
        *lock_recover(&SESSION_START) = None;
        Some(snap)
    }
    #[cfg(not(feature = "enabled"))]
    None
}

#[cfg(feature = "enabled")]
fn hist_event(name: &'static str, h: &Histogram) -> EventKind {
    EventKind::Hist {
        name,
        count: h.count(),
        sum_ns: h.sum(),
        max_ns: h.max(),
        buckets: h.cumulative_buckets(),
    }
}

/// The current values of every declared counter, phase and histogram,
/// whether or not a session is active. Empty (with detected
/// provenance) when the instrumentation is compiled out.
pub fn snapshot() -> MetricsSnapshot {
    #[cfg(feature = "enabled")]
    {
        MetricsSnapshot {
            provenance: lock_recover(&PROVENANCE)
                .clone()
                .unwrap_or_else(Provenance::detect),
            counters: counters::ALL.iter().map(|c| (c.name, c.get())).collect(),
            phases: phases::ALL
                .iter()
                .map(|p| {
                    let q = p.hist.quantiles();
                    PhaseStat {
                        name: p.name,
                        total_ns: p.total_ns.load(Ordering::Relaxed),
                        self_ns: p.self_ns.load(Ordering::Relaxed),
                        count: p.count.load(Ordering::Relaxed),
                        p50_ns: q.p50,
                        p90_ns: q.p90,
                        p99_ns: q.p99,
                        max_ns: q.max,
                    }
                })
                .collect(),
            hists: hists::ALL
                .iter()
                .map(|h| HistStat::from_quantiles(h.name, h.hist.quantiles()))
                .collect(),
            gauges: gauges::ALL.iter().map(|g| (g.name, g.get())).collect(),
        }
    }
    #[cfg(not(feature = "enabled"))]
    MetricsSnapshot {
        provenance: Provenance::detect(),
        counters: Vec::new(),
        phases: Vec::new(),
        hists: Vec::new(),
        gauges: Vec::new(),
    }
}

/// Drains and returns the accumulated session events (oldest first).
/// Empty when the instrumentation is compiled out.
pub fn drain_events() -> Vec<Event> {
    #[cfg(feature = "enabled")]
    {
        std::mem::take(&mut *lock_recover(&EVENTS))
    }
    #[cfg(not(feature = "enabled"))]
    Vec::new()
}

/// Appends a `run` event with the given name and `u64` fields to the
/// session log — the structured per-run record (e.g. one per subset
/// sweep with served counts, bound tightness, relay budget
/// consumption). No-op while no session is active.
#[inline]
pub fn emit_run(name: &'static str, fields: &[(&'static str, u64)]) {
    #[cfg(feature = "enabled")]
    if session_active() {
        push_event(EventKind::Run {
            name,
            fields: fields.to_vec(),
        });
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (name, fields);
    }
}

#[cfg(feature = "enabled")]
fn push_event(kind: EventKind) {
    // Allocate seq and read the clock only while holding the log lock:
    // with emitters on several threads (service reader + worker), doing
    // either outside the lock lets two events land in the vec with
    // out-of-order seq/t_ns, which the log validator rejects. Lock
    // order is EVENTS → SESSION_START; nothing locks them in reverse.
    let mut events = lock_recover(&EVENTS);
    let t_ns = lock_recover(&SESSION_START)
        .map(|s| s.elapsed().as_nanos() as u64)
        .unwrap_or(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    events.push(Event { seq, t_ns, kind });
}

/// A named monotone counter. Declare instances in [`counters`]; call
/// sites do `counters::SWEEP_GAIN_QUERIES.add(1)`.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter with the given snapshot name.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The snapshot/event name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` when a session is active; no-op (and compiled out
    /// without the `enabled` feature) otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        if session_active() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named last-value metric (queue depth, uptime seconds): unlike a
/// [`Counter`] it can move in both directions, and a snapshot reports
/// the most recent [`set`](Gauge::set), not an accumulation. Declared
/// centrally in [`gauges`]; reset to 0 on session begin; the final
/// value is emitted as one `gauge` event by [`session_end`].
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge with the given snapshot name.
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The snapshot/event name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stores `v` when a session is active; no-op (and compiled out
    /// without the `enabled` feature) otherwise.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "enabled")]
        if session_active() {
            self.value.store(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// The most recently stored value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named wall-clock accumulator with a latency histogram of its
/// recordings. Declare instances in [`phases`]; time a call with
/// [`Phase::span`] or fold pre-aggregated nanoseconds in with
/// [`Phase::record_ns`].
#[derive(Debug)]
pub struct Phase {
    name: &'static str,
    total_ns: AtomicU64,
    self_ns: AtomicU64,
    count: AtomicU64,
    hist: Histogram,
}

impl Phase {
    /// A zeroed phase with the given snapshot name.
    pub const fn new(name: &'static str) -> Self {
        Phase {
            name,
            total_ns: AtomicU64::new(0),
            self_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
            hist: Histogram::new(),
        }
    }

    /// The snapshot/event name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Accumulated nanoseconds.
    #[inline]
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Accumulated self-time: total minus time spent in same-thread
    /// child spans (pre-aggregated [`Phase::record_ns`] recordings
    /// count fully as self-time).
    #[inline]
    pub fn self_ns(&self) -> u64 {
        self.self_ns.load(Ordering::Relaxed)
    }

    /// Number of recordings folded in.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The duration histogram of this phase's recordings.
    #[inline]
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Folds pre-aggregated `ns` into the phase and appends a `span`
    /// event attached under the caller's innermost open span (for tree
    /// attribution; it does not reduce the parent's self-time — see
    /// the [crate docs](crate)). No-op while no session is active.
    #[inline]
    pub fn record_ns(&'static self, ns: u64) {
        self.record_ns_under(None, ns);
    }

    /// [`Phase::record_ns`] with an explicit parent: the emitted span
    /// attaches under `parent` when it is `Some` and still belongs to
    /// the current session, falling back to the caller's innermost
    /// open same-thread span otherwise. This is how a worker thread
    /// attributes a pre-measured duration (e.g. queue wait measured
    /// from an enqueue timestamp) to a span opened on another thread.
    #[inline]
    pub fn record_ns_under(&'static self, parent: Option<SpanHandle>, ns: u64) {
        #[cfg(feature = "enabled")]
        if session_active() {
            let epoch = SESSION_EPOCH.load(Ordering::Relaxed);
            let parent_id = parent
                .filter(|h| h.epoch == epoch)
                .map(|h| h.id)
                .or_else(|| {
                    SPAN_STACK.with(|s| {
                        let s = s.borrow();
                        if s.0 == epoch {
                            s.1.last().map(|f| f.id)
                        } else {
                            None
                        }
                    })
                });
            let id = SPAN_NEXT_ID.fetch_add(1, Ordering::Relaxed);
            self.accumulate(ns, ns);
            push_event(EventKind::Span {
                name: self.name,
                id,
                parent_id,
                tid: thread_ordinal(),
                ns,
                self_ns: ns,
            });
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (parent, ns);
    }

    #[cfg(feature = "enabled")]
    fn accumulate(&self, ns: u64, self_ns: u64) {
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.self_ns.fetch_add(self_ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.hist.record(ns);
    }

    /// An RAII guard that records the elapsed wall-clock into this
    /// phase when dropped, as a node of the session's span tree (its
    /// parent is the innermost span still open on this thread). Reads
    /// the clock only while a session is active.
    #[inline]
    pub fn span(&'static self) -> SpanGuard {
        self.span_under(None)
    }

    /// [`Phase::span`] with an explicit cross-thread parent: when
    /// `parent` is `Some` and still belongs to the current session, the
    /// new span's `parent_id` is the handle's span instead of this
    /// thread's innermost open span. The guard still joins *this*
    /// thread's parent stack, so same-thread children opened inside it
    /// nest normally and its elapsed time is credited to the local
    /// enclosing frame (if any). This is how a span opened on the
    /// service worker thread attaches under the worker root, and how a
    /// reader-thread ingress span attaches under the same root — the
    /// cross-thread edge of the trace.
    #[inline]
    pub fn span_under(&'static self, parent: Option<SpanHandle>) -> SpanGuard {
        #[cfg(feature = "enabled")]
        {
            if !session_active() {
                return SpanGuard { inner: None };
            }
            let epoch = SESSION_EPOCH.load(Ordering::Relaxed);
            let id = SPAN_NEXT_ID.fetch_add(1, Ordering::Relaxed);
            let explicit = parent.filter(|h| h.epoch == epoch).map(|h| h.id);
            let local = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                if s.0 != epoch {
                    s.1.clear();
                    s.0 = epoch;
                }
                let parent = s.1.last().map(|f| f.id);
                s.1.push(Frame { id, child_ns: 0 });
                parent
            });
            SpanGuard {
                inner: Some(SpanInner {
                    phase: self,
                    start: Instant::now(),
                    id,
                    parent_id: explicit.or(local),
                    epoch,
                }),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = parent;
            SpanGuard {}
        }
    }
}

/// A copyable reference to an open span, obtained from
/// [`SpanGuard::handle`] and consumed by [`Phase::span_under`] /
/// [`Phase::record_ns_under`] to parent spans across threads. The
/// handle stays valid for the rest of its session (ids are allocated
/// on entry, so `parent_id < id` holds even if the referenced span
/// closes first); a handle from an ended session is silently ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle {
    #[cfg(feature = "enabled")]
    id: u64,
    #[cfg(feature = "enabled")]
    epoch: u64,
}

#[cfg(feature = "enabled")]
#[derive(Debug)]
struct SpanInner {
    phase: &'static Phase,
    start: Instant,
    id: u64,
    parent_id: Option<u64>,
    epoch: u64,
}

/// RAII timer returned by [`Phase::span`]; records on drop, reporting
/// total and self nanoseconds plus its `id`/`parent_id` in the span
/// tree.
#[derive(Debug)]
#[must_use = "dropping a SpanGuard immediately records a zero-length span"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// A copyable cross-thread handle to this span, or `None` when the
    /// guard is not recording (no active session at creation, or the
    /// instrumentation is compiled out). Hand the handle to another
    /// thread and open children under it with [`Phase::span_under`];
    /// the guard itself must still be dropped on its own thread.
    #[inline]
    pub fn handle(&self) -> Option<SpanHandle> {
        #[cfg(feature = "enabled")]
        {
            self.inner.as_ref().map(|i| SpanHandle {
                id: i.id,
                epoch: i.epoch,
            })
        }
        #[cfg(not(feature = "enabled"))]
        None
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = self.inner.take() {
            let ns = inner.start.elapsed().as_nanos() as u64;
            // Pop our frame (collecting child time) and credit our
            // elapsed time to the parent frame, unless the session
            // rolled over while we were open.
            let child_ns = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                if s.0 != inner.epoch {
                    return None;
                }
                let pos = s.1.iter().rposition(|f| f.id == inner.id)?;
                let frame = s.1.remove(pos);
                if pos > 0 {
                    s.1[pos - 1].child_ns += ns;
                }
                Some(frame.child_ns)
            });
            let Some(child_ns) = child_ns else { return };
            if !session_active() || SESSION_EPOCH.load(Ordering::Relaxed) != inner.epoch {
                return;
            }
            let self_ns = ns.saturating_sub(child_ns);
            inner.phase.accumulate(ns, self_ns);
            push_event(EventKind::Span {
                name: inner.phase.name,
                id: inner.id,
                parent_id: inner.parent_id,
                tid: thread_ordinal(),
                ns,
                self_ns,
            });
        }
    }
}

/// A named latency histogram for per-operation timings too frequent
/// for the event log. Recording is a few relaxed atomics (no lock, no
/// event); percentiles surface in the [`MetricsSnapshot`] and as one
/// `hist` line at session end. Declare instances in [`hists`].
#[derive(Debug)]
pub struct LatencyHist {
    name: &'static str,
    hist: Histogram,
}

impl LatencyHist {
    /// An empty latency histogram with the given snapshot name.
    pub const fn new(name: &'static str) -> Self {
        LatencyHist {
            name,
            hist: Histogram::new(),
        }
    }

    /// The snapshot/event name.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The underlying histogram (always readable; only instrumented
    /// recording is feature/session gated).
    #[inline]
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Records one latency when a session is active; no-op (compiled
    /// out without the `enabled` feature) otherwise.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        #[cfg(feature = "enabled")]
        if session_active() {
            self.hist.record(ns);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = ns;
    }

    /// An RAII timer recording the elapsed nanoseconds into this
    /// histogram on drop. Reads the clock only while a session is
    /// active; never emits events and never touches the span stack, so
    /// it is safe (and cheap) on per-query hot paths.
    #[inline]
    pub fn timer(&'static self) -> HistTimer {
        HistTimer {
            #[cfg(feature = "enabled")]
            inner: session_active().then(|| (self, Instant::now())),
        }
    }
}

/// RAII timer returned by [`LatencyHist::timer`]; records on drop.
#[derive(Debug)]
#[must_use = "dropping a HistTimer immediately records a zero latency"]
pub struct HistTimer {
    #[cfg(feature = "enabled")]
    inner: Option<(&'static LatencyHist, Instant)>,
}

impl Drop for HistTimer {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some((h, start)) = self.inner.take() {
            if session_active() {
                h.hist.record(start.elapsed().as_nanos() as u64);
            }
        }
    }
}

/// One structured record of the session log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number within the session (0-based).
    pub seq: u64,
    /// Nanoseconds since session start when the event was recorded.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A session began (always `seq` 0); carries the run provenance.
    SessionStart {
        /// Who/what produced this log.
        provenance: Provenance,
    },
    /// A session ended; the log is complete.
    SessionEnd,
    /// A [`Phase`] recording completed — one node of the span tree.
    Span {
        /// The phase name.
        name: &'static str,
        /// Session-unique span id (ids start at 1).
        id: u64,
        /// Id of the parent span — the innermost same-thread span open
        /// at creation, or the explicit [`SpanHandle`] given to
        /// [`Phase::span_under`]/[`Phase::record_ns_under`]; `None`
        /// for roots.
        parent_id: Option<u64>,
        /// Stable ordinal of the thread the span ran on (schema 3).
        tid: u64,
        /// Recorded nanoseconds.
        ns: u64,
        /// Nanoseconds not attributed to same-thread child spans.
        self_ns: u64,
    },
    /// A counter's final value, emitted by [`session_end`].
    Counter {
        /// The counter name.
        name: &'static str,
        /// Value at session end.
        value: u64,
    },
    /// A gauge's final value, emitted by [`session_end`] (schema 3).
    Gauge {
        /// The gauge name.
        name: &'static str,
        /// Last value set during the session.
        value: u64,
    },
    /// A histogram's final state, emitted by [`session_end`] for every
    /// non-empty phase/latency histogram.
    Hist {
        /// The phase or latency-histogram name.
        name: &'static str,
        /// Number of recorded values.
        count: u64,
        /// Sum of recorded values.
        sum_ns: u64,
        /// Exact maximum recorded value.
        max_ns: u64,
        /// `[inclusive_upper_bound, cumulative_count]` per non-empty
        /// bucket; bounds strictly increasing, counts monotone.
        buckets: Vec<(u64, u64)>,
    },
    /// A per-run record emitted by [`emit_run`].
    Run {
        /// Record name (e.g. `"sweep"`).
        name: &'static str,
        /// Named `u64` fields.
        fields: Vec<(&'static str, u64)>,
    },
}

impl Event {
    /// Serializes the event as one JSON-lines line (no trailing
    /// newline), following the [crate-level schema](crate).
    pub fn to_json_line(&self) -> String {
        let mut s = format!("{{\"seq\":{},\"t_ns\":{},", self.seq, self.t_ns);
        match &self.kind {
            EventKind::SessionStart { provenance } => {
                s.push_str(&format!(
                    "\"type\":\"session_start\",\"schema\":\"{SCHEMA}\",\"git_sha\":"
                ));
                push_json_str(&mut s, &provenance.git_sha);
                s.push_str(",\"features\":");
                push_json_str(&mut s, &provenance.features);
                s.push_str(&format!(
                    ",\"threads\":{},\"instance_fingerprint\":\"{:#018x}\"",
                    provenance.threads, provenance.instance_fingerprint
                ));
            }
            EventKind::SessionEnd => s.push_str("\"type\":\"session_end\""),
            EventKind::Span {
                name,
                id,
                parent_id,
                tid,
                ns,
                self_ns,
            } => {
                s.push_str("\"type\":\"span\",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(&format!(",\"id\":{id}"));
                if let Some(p) = parent_id {
                    s.push_str(&format!(",\"parent_id\":{p}"));
                }
                s.push_str(&format!(",\"tid\":{tid},\"ns\":{ns},\"self_ns\":{self_ns}"));
            }
            EventKind::Counter { name, value } => {
                s.push_str("\"type\":\"counter\",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(&format!(",\"value\":{value}"));
            }
            EventKind::Gauge { name, value } => {
                s.push_str("\"type\":\"gauge\",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(&format!(",\"value\":{value}"));
            }
            EventKind::Hist {
                name,
                count,
                sum_ns,
                max_ns,
                buckets,
            } => {
                s.push_str("\"type\":\"hist\",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(&format!(
                    ",\"count\":{count},\"sum_ns\":{sum_ns},\"max_ns\":{max_ns},\"buckets\":["
                ));
                for (i, (ub, cum)) in buckets.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!("[{ub},{cum}]"));
                }
                s.push(']');
            }
            EventKind::Run { name, fields } => {
                s.push_str("\"type\":\"run\",\"name\":");
                push_json_str(&mut s, name);
                s.push_str(",\"fields\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    push_json_str(&mut s, k);
                    s.push_str(&format!(":{v}"));
                }
                s.push('}');
            }
        }
        s.push('}');
        s
    }
}

/// Final value of one [`Phase`] inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// The phase name.
    pub name: &'static str,
    /// Accumulated nanoseconds.
    pub total_ns: u64,
    /// Accumulated self-time nanoseconds (total minus same-thread
    /// child spans).
    pub self_ns: u64,
    /// Number of recordings.
    pub count: u64,
    /// Median recording duration (bucket resolution).
    pub p50_ns: u64,
    /// 90th-percentile recording duration.
    pub p90_ns: u64,
    /// 99th-percentile recording duration.
    pub p99_ns: u64,
    /// Exact maximum recording duration.
    pub max_ns: u64,
}

/// Final percentiles of one [`LatencyHist`] inside a
/// [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistStat {
    /// The histogram name.
    pub name: &'static str,
    /// Number of recorded latencies.
    pub count: u64,
    /// Sum of recorded latencies.
    pub sum_ns: u64,
    /// Median latency (bucket resolution).
    pub p50_ns: u64,
    /// 90th-percentile latency.
    pub p90_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// Exact maximum latency.
    pub max_ns: u64,
}

impl HistStat {
    #[cfg(feature = "enabled")]
    fn from_quantiles(name: &'static str, q: Quantiles) -> Self {
        HistStat {
            name,
            count: q.count,
            sum_ns: q.sum,
            p50_ns: q.p50,
            p90_ns: q.p90,
            p99_ns: q.p99,
            max_ns: q.max,
        }
    }
}

/// End-of-run values of every declared counter, phase and latency
/// histogram, plus the run provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Who/what produced this snapshot.
    pub provenance: Provenance,
    /// `(name, value)` per counter, in declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-phase totals, self-times and percentiles, in declaration
    /// order.
    pub phases: Vec<PhaseStat>,
    /// Per-latency-histogram percentiles, in declaration order.
    pub hists: Vec<HistStat>,
    /// `(name, last value)` per gauge, in declaration order.
    pub gauges: Vec<(&'static str, u64)>,
}

impl MetricsSnapshot {
    /// The value of a counter by name, if declared.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The last value of a gauge by name, if declared.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The stats of a phase by name, if declared.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// The stats of a latency histogram by name, if declared.
    pub fn hist(&self, name: &str) -> Option<&HistStat> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Serializes the snapshot as a pretty-stable JSON document:
    /// `{"schema":…,"provenance":{…},"counters":{…},
    /// "phases":{name:{"total_ns":…,"self_ns":…,"count":…,"p50_ns":…,…}},
    /// "hists":{name:{"count":…,"sum_ns":…,"p50_ns":…,…}},
    /// "gauges":{…}}`.
    pub fn to_json(&self) -> String {
        let mut s =
            format!("{{\n  \"schema\": \"{SCHEMA}\",\n  \"provenance\": {{\n    \"git_sha\": ");
        push_json_str(&mut s, &self.provenance.git_sha);
        s.push_str(",\n    \"features\": ");
        push_json_str(&mut s, &self.provenance.features);
        s.push_str(&format!(
            ",\n    \"threads\": {},\n    \"instance_fingerprint\": \"{:#018x}\"\n  }},\n  \"counters\": {{",
            self.provenance.threads, self.provenance.instance_fingerprint
        ));
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_str(&mut s, name);
            s.push_str(&format!(": {value}"));
        }
        s.push_str("\n  },\n  \"phases\": {");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_str(&mut s, p.name);
            s.push_str(&format!(
                ": {{ \"total_ns\": {}, \"self_ns\": {}, \"count\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {} }}",
                p.total_ns, p.self_ns, p.count, p.p50_ns, p.p90_ns, p.p99_ns, p.max_ns
            ));
        }
        s.push_str("\n  },\n  \"hists\": {");
        for (i, h) in self.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_str(&mut s, h.name);
            s.push_str(&format!(
                ": {{ \"count\": {}, \"sum_ns\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {} }}",
                h.count, h.sum_ns, h.p50_ns, h.p90_ns, h.p99_ns, h.max_ns
            ));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            push_json_str(&mut s, name);
            s.push_str(&format!(": {value}"));
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Serializes the snapshot in the Prometheus text exposition
    /// format (0.0.4): counters as `uavnet_<name>_total`, gauges as
    /// `uavnet_<name>`, phases as
    /// `uavnet_phase_{total_ns,self_ns,count}{phase="…"}` gauges plus
    /// `uavnet_phase_duration_ns{phase="…",quantile="…"}` summaries,
    /// latency histograms as `uavnet_latency_ns{hist="…",quantile="…"}`
    /// summaries with `_sum`/`_count`, and the provenance as a
    /// `uavnet_build_info` gauge. Every family carries `# HELP` and
    /// `# TYPE` lines. Dots in metric names become underscores.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        }
        let mut s = String::new();
        s.push_str("# HELP uavnet_build_info Run provenance (value is always 1).\n");
        s.push_str("# TYPE uavnet_build_info gauge\n");
        s.push_str(&format!(
            "uavnet_build_info{{schema=\"{SCHEMA}\",git_sha=\"{}\",features=\"{}\",threads=\"{}\",instance_fingerprint=\"{:#018x}\"}} 1\n",
            self.provenance.git_sha,
            self.provenance.features,
            self.provenance.threads,
            self.provenance.instance_fingerprint
        ));
        for (name, value) in &self.counters {
            let m = format!("uavnet_{}_total", sanitize(name));
            s.push_str(&format!(
                "# HELP {m} Final value of obs counter \"{name}\".\n# TYPE {m} counter\n{m} {value}\n"
            ));
        }
        for (name, value) in &self.gauges {
            let m = format!("uavnet_{}", sanitize(name));
            s.push_str(&format!(
                "# HELP {m} Last value of obs gauge \"{name}\".\n# TYPE {m} gauge\n{m} {value}\n"
            ));
        }
        s.push_str("# HELP uavnet_phase_total_ns Accumulated wall-clock nanoseconds per phase.\n");
        s.push_str("# TYPE uavnet_phase_total_ns gauge\n");
        s.push_str(
            "# HELP uavnet_phase_self_ns Accumulated self-time nanoseconds per phase (total minus same-thread child spans).\n",
        );
        s.push_str("# TYPE uavnet_phase_self_ns gauge\n");
        s.push_str("# HELP uavnet_phase_count Number of recordings per phase.\n");
        s.push_str("# TYPE uavnet_phase_count gauge\n");
        s.push_str(
            "# HELP uavnet_phase_duration_ns Quantiles of per-recording phase durations in nanoseconds.\n",
        );
        s.push_str("# TYPE uavnet_phase_duration_ns summary\n");
        for p in &self.phases {
            s.push_str(&format!(
                "uavnet_phase_total_ns{{phase=\"{0}\"}} {1}\nuavnet_phase_self_ns{{phase=\"{0}\"}} {2}\nuavnet_phase_count{{phase=\"{0}\"}} {3}\n",
                p.name, p.total_ns, p.self_ns, p.count
            ));
            for (q, v) in [("0.5", p.p50_ns), ("0.9", p.p90_ns), ("0.99", p.p99_ns)] {
                s.push_str(&format!(
                    "uavnet_phase_duration_ns{{phase=\"{}\",quantile=\"{q}\"}} {v}\n",
                    p.name
                ));
            }
        }
        s.push_str(
            "# HELP uavnet_phase_duration_ns_max Exact maximum recording duration per phase in nanoseconds.\n",
        );
        s.push_str("# TYPE uavnet_phase_duration_ns_max gauge\n");
        for p in &self.phases {
            s.push_str(&format!(
                "uavnet_phase_duration_ns_max{{phase=\"{}\"}} {}\n",
                p.name, p.max_ns
            ));
        }
        s.push_str(
            "# HELP uavnet_latency_ns Quantiles of per-operation latencies in nanoseconds.\n",
        );
        s.push_str("# TYPE uavnet_latency_ns summary\n");
        for h in &self.hists {
            for (q, v) in [("0.5", h.p50_ns), ("0.9", h.p90_ns), ("0.99", h.p99_ns)] {
                s.push_str(&format!(
                    "uavnet_latency_ns{{hist=\"{}\",quantile=\"{q}\"}} {v}\n",
                    h.name
                ));
            }
            s.push_str(&format!(
                "uavnet_latency_ns_sum{{hist=\"{0}\"}} {1}\nuavnet_latency_ns_count{{hist=\"{0}\"}} {2}\n",
                h.name, h.sum_ns, h.count
            ));
        }
        s.push_str(
            "# HELP uavnet_latency_ns_max Exact maximum recorded latency per histogram in nanoseconds.\n",
        );
        s.push_str("# TYPE uavnet_latency_ns_max gauge\n");
        for h in &self.hists {
            s.push_str(&format!(
                "uavnet_latency_ns_max{{hist=\"{}\"}} {}\n",
                h.name, h.max_ns
            ));
        }
        s
    }
}

/// Appends `value` as a JSON string literal (quoted, escaped).
fn push_json_str(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a drained session log as a Chrome trace-event JSON document
/// (the `{"traceEvents":[…]}` format Perfetto and `chrome://tracing`
/// load directly).
///
/// Mapping: every `span` event becomes a complete (`"ph":"X"`) event
/// on its thread's track — `ts` is the span's *start* (`t_ns − ns`,
/// since obs stamps spans on close) and `dur` its length, both in
/// fractional microseconds; the obs span `id`, `parent_id` and
/// `self_ns` ride along in `args`, preserving the cross-thread edges a
/// flamegraph per track cannot show. `run` events become instants
/// (`"ph":"i"`) with their fields as args; `counter` and `gauge`
/// events become Chrome counter (`"ph":"C"`) samples so final values
/// show up as tracks; `session_start`/`session_end` become global
/// instants (provenance as args). `hist` events are skipped — bucket
/// arrays have no trace-event shape; they stay in the JSON-lines log.
///
/// This is a pure function over already-drained events: it works on
/// any build (the `enabled` feature only gates *collection*).
pub fn dump_trace_event(events: &[Event]) -> String {
    fn push_micros(out: &mut String, ns: u64) {
        out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
    }
    let mut s = String::from(
        "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
         {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"uavnet\"}}",
    );
    for e in events {
        let mut line = String::new();
        match &e.kind {
            EventKind::Span {
                name,
                id,
                parent_id,
                tid,
                ns,
                self_ns,
            } => {
                line.push_str("{\"name\":");
                push_json_str(&mut line, name);
                line.push_str(&format!(
                    ",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":"
                ));
                push_micros(&mut line, e.t_ns.saturating_sub(*ns));
                line.push_str(",\"dur\":");
                push_micros(&mut line, *ns);
                line.push_str(&format!(",\"args\":{{\"id\":{id}"));
                if let Some(p) = parent_id {
                    line.push_str(&format!(",\"parent_id\":{p}"));
                }
                line.push_str(&format!(",\"self_ns\":{self_ns}}}}}"));
            }
            EventKind::Run { name, fields } => {
                line.push_str("{\"name\":");
                push_json_str(&mut line, name);
                line.push_str(
                    ",\"cat\":\"run\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":",
                );
                push_micros(&mut line, e.t_ns);
                line.push_str(",\"args\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    push_json_str(&mut line, k);
                    line.push_str(&format!(":{v}"));
                }
                line.push_str("}}");
            }
            EventKind::Counter { name, value } | EventKind::Gauge { name, value } => {
                line.push_str("{\"name\":");
                push_json_str(&mut line, name);
                line.push_str(",\"cat\":\"metric\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":");
                push_micros(&mut line, e.t_ns);
                line.push_str(&format!(",\"args\":{{\"value\":{value}}}}}"));
            }
            EventKind::SessionStart { provenance } => {
                line.push_str(
                    "{\"name\":\"session_start\",\"cat\":\"session\",\"ph\":\"i\",\
                     \"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":",
                );
                push_micros(&mut line, e.t_ns);
                line.push_str(&format!(",\"args\":{{\"schema\":\"{SCHEMA}\",\"git_sha\":"));
                push_json_str(&mut line, &provenance.git_sha);
                line.push_str(",\"features\":");
                push_json_str(&mut line, &provenance.features);
                line.push_str(&format!(
                    ",\"threads\":{},\"instance_fingerprint\":\"{:#018x}\"}}}}",
                    provenance.threads, provenance.instance_fingerprint
                ));
            }
            EventKind::SessionEnd => {
                line.push_str(
                    "{\"name\":\"session_end\",\"cat\":\"session\",\"ph\":\"i\",\
                     \"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":",
                );
                push_micros(&mut line, e.t_ns);
                line.push('}');
            }
            EventKind::Hist { .. } => continue,
        }
        s.push_str(",\n");
        s.push_str(&line);
    }
    s.push_str("\n]}\n");
    s
}

/// Every counter of the pipeline, declared centrally so snapshots can
/// enumerate them. Names are dot-separated `snake_case` and stable —
/// they are the public schema of the event log.
pub mod counters {
    use super::Counter;

    /// Algorithm 1 segment plans computed.
    pub static ALG1_PLANS: Counter = Counter::new("alg1.plans");
    /// Subset sweeps completed ([`emit_run`](super::emit_run) `"sweep"`
    /// records carry the per-run detail).
    pub static SWEEP_RUNS: Counter = Counter::new("sweep.runs");
    /// `s`-subsets enumerated before chain pruning.
    pub static SWEEP_SUBSETS_ENUMERATED: Counter = Counter::new("sweep.subsets_enumerated");
    /// Subsets dropped by chain pruning.
    pub static SWEEP_SUBSETS_CHAIN_PRUNED: Counter = Counter::new("sweep.subsets_chain_pruned");
    /// Subsets fully evaluated (greedy + connection + scoring).
    pub static SWEEP_SUBSETS_EVALUATED: Counter = Counter::new("sweep.subsets_evaluated");
    /// Evaluated subsets whose connected set exceeded the fleet.
    pub static SWEEP_SUBSETS_UNCONNECTABLE: Counter = Counter::new("sweep.subsets_unconnectable");
    /// Marginal-gain (trial-insertion) queries issued by the sweep.
    pub static SWEEP_GAIN_QUERIES: Counter = Counter::new("sweep.gain_queries");
    /// Lazy-greedy heap pops satisfied by a still-current cached gain
    /// (no oracle evaluation needed) — CELF bound hits.
    pub static GREEDY_BOUND_HITS: Counter = Counter::new("greedy.bound_hits");
    /// Lazy-greedy oracle evaluations (cache misses).
    pub static GREEDY_EVALUATIONS: Counter = Counter::new("greedy.evaluations");
    /// Full heap re-seeds after a bound invalidation
    /// (radio-class change between picks).
    pub static GREEDY_BOUND_RESEEDS: Counter = Counter::new("greedy.bound_reseeds");
    /// Elements committed by the lazy greedy.
    pub static GREEDY_COMMITS: Counter = Counter::new("greedy.commits");
    /// Augmenting-path BFS runs started by the matching kernel.
    pub static MATCHING_BFS_RESTARTS: Counter = Counter::new("matching.bfs_restarts");
    /// Users claimed by the free-user pre-pass (length-1 augmenting
    /// paths applied without a BFS restart).
    pub static MATCHING_PREPASS_HITS: Counter = Counter::new("matching.prepass_hits");
    /// Trial insertions ([`evaluate_station`] calls) answered.
    ///
    /// [`evaluate_station`]: https://docs.rs/uavnet-flow
    pub static MATCHING_TRIAL_EVALUATIONS: Counter = Counter::new("matching.trial_evaluations");
    /// MST relay connections performed.
    pub static CONNECT_MST_CONNECTIONS: Counter = Counter::new("connect.mst_connections");
    /// Relay cells added across all connections.
    pub static CONNECT_RELAYS_ADDED: Counter = Counter::new("connect.relays_added");
    /// Gateway extensions that had to add cells.
    pub static CONNECT_GATEWAY_EXTENSIONS: Counter = Counter::new("connect.gateway_extensions");
    /// Connection attempts that returned a typed error.
    pub static CONNECT_FAILURES: Counter = Counter::new("connect.failures");
    /// Connectivity substrates built.
    pub static SUBSTRATE_BUILDS: Counter = Counter::new("substrate.builds");
    /// Spatial tiles solved by the sharded sweep.
    pub static SHARD_TILES: Counter = Counter::new("shard.tiles");
    /// Subsets that escaped their tile view and were re-solved
    /// against a global workspace.
    pub static SHARD_VIEW_ESCAPES: Counter = Counter::new("shard.view_escapes");
    /// Differential-oracle checks executed.
    pub static VERIFY_CHECKS: Counter = Counter::new("verify.checks");
    /// Differential-oracle checks that found a divergence.
    pub static VERIFY_FAILURES: Counter = Counter::new("verify.failures");
    /// Deltas accepted by the incremental re-solve loop.
    pub static RESOLVE_DELTAS: Counter = Counter::new("resolve.deltas");
    /// Connectivity repairs planned (solver loop + fault harness).
    pub static RESOLVE_REPAIRS: Counter = Counter::new("resolve.repairs");
    /// Full cold re-solves the loop fell back to.
    pub static RESOLVE_COLD_SOLVES: Counter = Counter::new("resolve.cold_solves");
    /// Tiles invalidated by user-affecting deltas.
    pub static RESOLVE_DIRTY_TILES: Counter = Counter::new("resolve.dirty_tiles");
    /// Stations whose coverage was re-derived after a delta.
    pub static RESOLVE_STATIONS_REFRESHED: Counter = Counter::new("resolve.stations_refreshed");
    /// Sweeps that ran a guided (non-exhaustive) seed strategy.
    pub static STRATEGY_GUIDED_RUNS: Counter = Counter::new("strategy.guided_runs");
    /// Subsets skipped by the admissible served-count upper bound
    /// (bound-pruned strategy).
    pub static STRATEGY_BOUND_PRUNED: Counter = Counter::new("strategy.bound_pruned");
    /// Subsets fully evaluated by the beam strategy's final beam.
    pub static STRATEGY_BEAM_EVALUATIONS: Counter = Counter::new("strategy.beam_evaluations");
    /// Deltas the solver service worker applied (acked `applied`,
    /// `degraded` or `poisoned` — everything that left the queue).
    pub static SERVICE_DELTAS_APPLIED: Counter = Counter::new("service.deltas_applied");
    /// `deployments` frames published to subscribers (counted once per
    /// frame, not per subscriber).
    pub static SERVICE_PUBLISH_DEPLOYMENTS: Counter = Counter::new("service.publish.deployments");
    /// `degradation` frames published to subscribers.
    pub static SERVICE_PUBLISH_DEGRADATION: Counter = Counter::new("service.publish.degradation");
    /// Publishes rejected with a typed `Busy` because the bounded
    /// ingress queue was full.
    pub static SERVICE_BUSY_REJECTIONS: Counter = Counter::new("service.busy_rejections");
    /// Deltas whose enqueue-to-publish latency exceeded the
    /// configured slow-delta threshold (timing-dependent: excluded
    /// from the deterministic `obs_diff` gate).
    pub static SERVICE_SLOW_DELTAS: Counter = Counter::new("service.slow_deltas");
    /// Subscriber connections dropped during publish fan-out (write
    /// failed or timed out).
    pub static SERVICE_SUBSCRIBER_DROPS: Counter = Counter::new("service.subscriber_drops");

    /// Every declared counter, in schema order.
    pub static ALL: &[&Counter] = &[
        &ALG1_PLANS,
        &SWEEP_RUNS,
        &SWEEP_SUBSETS_ENUMERATED,
        &SWEEP_SUBSETS_CHAIN_PRUNED,
        &SWEEP_SUBSETS_EVALUATED,
        &SWEEP_SUBSETS_UNCONNECTABLE,
        &SWEEP_GAIN_QUERIES,
        &GREEDY_BOUND_HITS,
        &GREEDY_EVALUATIONS,
        &GREEDY_BOUND_RESEEDS,
        &GREEDY_COMMITS,
        &MATCHING_BFS_RESTARTS,
        &MATCHING_PREPASS_HITS,
        &MATCHING_TRIAL_EVALUATIONS,
        &CONNECT_MST_CONNECTIONS,
        &CONNECT_RELAYS_ADDED,
        &CONNECT_GATEWAY_EXTENSIONS,
        &CONNECT_FAILURES,
        &SUBSTRATE_BUILDS,
        &SHARD_TILES,
        &SHARD_VIEW_ESCAPES,
        &VERIFY_CHECKS,
        &VERIFY_FAILURES,
        &RESOLVE_DELTAS,
        &RESOLVE_REPAIRS,
        &RESOLVE_COLD_SOLVES,
        &RESOLVE_DIRTY_TILES,
        &RESOLVE_STATIONS_REFRESHED,
        &STRATEGY_GUIDED_RUNS,
        &STRATEGY_BOUND_PRUNED,
        &STRATEGY_BEAM_EVALUATIONS,
        &SERVICE_DELTAS_APPLIED,
        &SERVICE_PUBLISH_DEPLOYMENTS,
        &SERVICE_PUBLISH_DEGRADATION,
        &SERVICE_BUSY_REJECTIONS,
        &SERVICE_SLOW_DELTAS,
        &SERVICE_SUBSCRIBER_DROPS,
    ];
}

/// Every wall-clock phase of the pipeline, declared centrally. Names
/// are stable `snake_case` — the public schema of span events.
pub mod phases {
    use super::Phase;

    /// One whole recorded report/run — the root of the span tree when
    /// a binary wraps its work in a single top-level span (as
    /// `sweep_report` does).
    pub static REPORT: Phase = Phase::new("report");
    /// Algorithm 1 segment planning ([`SegmentPlan::optimal`]).
    ///
    /// [`SegmentPlan::optimal`]: https://docs.rs/uavnet-core
    pub static ALG1_PLAN: Phase = Phase::new("alg1_plan");
    /// Building the per-instance connectivity substrate.
    pub static SUBSTRATE_BUILD: Phase = Phase::new("substrate_build");
    /// Combination generation + chain pruning, summed across workers.
    pub static ENUMERATION: Phase = Phase::new("enumeration");
    /// Lazy greedy (matroid build, gain queries, commits), summed
    /// across workers.
    pub static GREEDY: Phase = Phase::new("greedy");
    /// MST relay connection + gateway extension, summed across workers.
    pub static CONNECTION: Phase = Phase::new("connection");
    /// Relay deployment + scoring, summed across workers.
    pub static SCORING: Phase = Phase::new("scoring");
    /// Hop-structure queries answered from the substrate (also counted
    /// inside `greedy`/`connection`).
    pub static SUBSTRATE_QUERY: Phase = Phase::new("substrate_query");
    /// Per-tile view construction in the sharded sweep (reach sets,
    /// local user remaps, local coverage lists), summed across workers.
    pub static TILE_VIEW: Phase = Phase::new("tile_view");
    /// End-to-end wall clock of one subset sweep.
    pub static SWEEP_TOTAL: Phase = Phase::new("sweep_total");
    /// Differential-oracle batteries (`uavnet-core::verify`).
    pub static VERIFY: Phase = Phase::new("verify");
    /// One connectivity repair (component triage, MST re-bridging,
    /// gateway re-extension) in the incremental loop or fault harness.
    pub static REPAIR: Phase = Phase::new("repair");
    /// One `SolverLoop::apply` call — the incremental re-solve of a
    /// single delta (dirty-tile triage, coverage refresh, repair or
    /// cold fallback).
    pub static RESOLVE_APPLY: Phase = Phase::new("resolve.apply");
    /// The solver-service worker thread's whole lifetime — the root
    /// span every per-delta service span attaches under (directly or
    /// via a cross-thread [`SpanHandle`](super::SpanHandle)).
    pub static SERVICE_WORKER: Phase = Phase::new("service.worker");
    /// Reader-thread handling of one `Publish`: decode + enqueue (or
    /// `Busy`), attached under the worker root across threads.
    pub static SERVICE_INGRESS: Phase = Phase::new("service.ingress");
    /// Time one delta spent in the bounded ingress queue, measured
    /// from its enqueue timestamp when the worker dequeues it
    /// (pre-aggregated; recorded via
    /// [`record_ns_under`](super::Phase::record_ns_under)).
    pub static SERVICE_QUEUE_WAIT: Phase = Phase::new("service.queue_wait");
    /// Worker-side application of one delta (wraps `SolverLoop::apply`
    /// incl. repair).
    pub static SERVICE_APPLY: Phase = Phase::new("service.apply");
    /// Publish fan-out of one delta's `deployments`/`degradation`
    /// frames to all subscribers.
    pub static SERVICE_PUBLISH: Phase = Phase::new("service.publish");

    /// Every declared phase, in schema order.
    pub static ALL: &[&Phase] = &[
        &REPORT,
        &ALG1_PLAN,
        &SUBSTRATE_BUILD,
        &ENUMERATION,
        &GREEDY,
        &CONNECTION,
        &SCORING,
        &SUBSTRATE_QUERY,
        &TILE_VIEW,
        &SWEEP_TOTAL,
        &VERIFY,
        &REPAIR,
        &RESOLVE_APPLY,
        &SERVICE_WORKER,
        &SERVICE_INGRESS,
        &SERVICE_QUEUE_WAIT,
        &SERVICE_APPLY,
        &SERVICE_PUBLISH,
    ];
}

/// Every per-operation latency histogram, declared centrally. Names
/// are stable — the public schema of `hist` events and the snapshot's
/// `hists` section.
pub mod hists {
    use super::LatencyHist;

    /// Latency of one marginal-gain (trial-insertion) oracle
    /// evaluation inside the lazy greedy.
    pub static GAIN_QUERY: LatencyHist = LatencyHist::new("greedy.gain_query_ns");
    /// Latency of one augmenting-path BFS restart in the matching
    /// kernel.
    pub static BFS_RESTART: LatencyHist = LatencyHist::new("matching.bfs_restart_ns");
    /// Wall clock of one whole tile in the sharded sweep (view build +
    /// every subset assigned to the tile).
    pub static TILE_SOLVE: LatencyHist = LatencyHist::new("shard.tile_solve_ns");
    /// End-to-end latency of one delta application in the incremental
    /// re-solve loop.
    pub static DELTA_APPLY: LatencyHist = LatencyHist::new("resolve.delta_apply_ns");
    /// Latency of one connectivity repair plan.
    pub static REPAIR_NS: LatencyHist = LatencyHist::new("resolve.repair_ns");
    /// Latency of writing one published frame to one subscriber
    /// socket during fan-out.
    pub static SUBSCRIBER_WRITE: LatencyHist = LatencyHist::new("service.subscriber_write_ns");

    /// Every declared latency histogram, in schema order.
    pub static ALL: &[&LatencyHist] = &[
        &GAIN_QUERY,
        &BFS_RESTART,
        &TILE_SOLVE,
        &DELTA_APPLY,
        &REPAIR_NS,
        &SUBSCRIBER_WRITE,
    ];
}

/// Every gauge of the pipeline, declared centrally. A gauge reports a
/// *last value* (schema 3): snapshots and the `gauge` lines emitted at
/// session end carry whatever was most recently
/// [`set`](crate::Gauge::set).
pub mod gauges {
    use super::Gauge;

    /// Depth of the solver-service bounded ingress queue, sampled by
    /// the worker each time it dequeues a job.
    pub static SERVICE_QUEUE_DEPTH: Gauge = Gauge::new("service.queue_depth");
    /// Whole seconds since the solver service started, refreshed on
    /// worker activity.
    pub static SERVICE_UPTIME_SECONDS: Gauge = Gauge::new("service.uptime_seconds");

    /// Every declared gauge, in schema order.
    pub static ALL: &[&Gauge] = &[&SERVICE_QUEUE_DEPTH, &SERVICE_UPTIME_SECONDS];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_inert() {
        assert!(!is_enabled());
        assert!(!session_begin());
        assert!(!session_begin_with(Provenance::detect()));
        assert!(!session_active());
        counters::SWEEP_GAIN_QUERIES.add(5);
        assert_eq!(counters::SWEEP_GAIN_QUERIES.get(), 0);
        phases::GREEDY.record_ns(1_000);
        drop(phases::GREEDY.span());
        assert_eq!(phases::GREEDY.total_ns(), 0);
        assert_eq!(phases::GREEDY.self_ns(), 0);
        hists::GAIN_QUERY.record_ns(77);
        drop(hists::GAIN_QUERY.timer());
        assert_eq!(hists::GAIN_QUERY.histogram().count(), 0);
        gauges::SERVICE_QUEUE_DEPTH.set(9);
        assert_eq!(gauges::SERVICE_QUEUE_DEPTH.get(), 0);
        emit_run("sweep", &[("s", 1)]);
        assert!(drain_events().is_empty());
        assert!(session_end().is_none());
        let snap = snapshot();
        assert!(snap.counters.is_empty() && snap.phases.is_empty() && snap.hists.is_empty());
        assert!(snap.gauges.is_empty());
        // Provenance is still detectable (threads, git sha) so the
        // snapshot header never lies about the build.
        assert!(!snap.provenance.git_sha.is_empty());
        assert!(snap.provenance.features.is_empty());
    }

    // The enabled-path tests mutate the global session; serialize them
    // so the parallel test runner cannot interleave recordings.
    #[cfg(feature = "enabled")]
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[cfg(feature = "enabled")]
    #[test]
    fn session_records_counters_phases_hists_and_events() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(is_enabled());
        assert!(session_begin());
        assert!(!session_begin(), "nested sessions are rejected");
        assert!(session_active());

        counters::SWEEP_GAIN_QUERIES.add(3);
        counters::SWEEP_GAIN_QUERIES.add(4);
        phases::GREEDY.record_ns(1_000);
        {
            let _span = phases::ALG1_PLAN.span();
        }
        hists::GAIN_QUERY.record_ns(250);
        drop(hists::GAIN_QUERY.timer());
        gauges::SERVICE_QUEUE_DEPTH.set(4);
        gauges::SERVICE_QUEUE_DEPTH.set(2);
        emit_run("sweep", &[("s", 2), ("served", 17)]);

        let snap = session_end().expect("active session yields a snapshot");
        assert!(!session_active());
        assert_eq!(snap.counter("sweep.gain_queries"), Some(7));
        // Gauges report the last value set, not an accumulation.
        assert_eq!(snap.gauge("service.queue_depth"), Some(2));
        assert_eq!(snap.gauge("no.such.gauge"), None);
        let greedy = snap.phase("greedy").unwrap();
        assert_eq!((greedy.total_ns, greedy.count), (1_000, 1));
        // record_ns counts fully as self-time and feeds the histogram.
        assert_eq!(greedy.self_ns, 1_000);
        assert_eq!(greedy.max_ns, 1_000);
        assert!(greedy.p50_ns >= 1_000 && greedy.p50_ns <= 1_000 + 1_000 / 8);
        assert_eq!(snap.phase("alg1_plan").unwrap().count, 1);
        assert_eq!(snap.counter("no.such.counter"), None);
        let gq = snap.hist("greedy.gain_query_ns").unwrap();
        assert_eq!(gq.count, 2);
        assert_eq!(gq.max_ns, gq.max_ns.max(250));
        assert!(snap.hist("no.such.hist").is_none());

        let events = drain_events();
        assert!(matches!(events[0].kind, EventKind::SessionStart { .. }));
        assert!(matches!(events.last().unwrap().kind, EventKind::SessionEnd));
        // seq strictly increasing, t_ns monotone non-decreasing.
        for w in events.windows(2) {
            assert!(w[1].seq > w[0].seq);
            assert!(w[1].t_ns >= w[0].t_ns);
        }
        // One counter event per declared counter, before session_end.
        let counter_events = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Counter { .. }))
            .count();
        assert_eq!(counter_events, counters::ALL.len());
        // One gauge event per declared gauge, carrying the last value.
        let gauge_events: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Gauge { name, value } => Some((*name, *value)),
                _ => None,
            })
            .collect();
        assert_eq!(gauge_events.len(), gauges::ALL.len());
        assert!(gauge_events.contains(&("service.queue_depth", 2)));
        // One hist event per non-empty histogram: greedy + alg1_plan
        // phase hists plus the gain-query latency hist.
        let hist_events: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Hist {
                    name,
                    buckets,
                    count,
                    ..
                } => Some((*name, buckets, *count)),
                _ => None,
            })
            .collect();
        assert_eq!(hist_events.len(), 3);
        for (name, buckets, count) in &hist_events {
            assert!(!buckets.is_empty(), "{name}: empty hist event");
            assert_eq!(buckets.last().unwrap().1, *count, "{name}: cum != count");
            for w in buckets.windows(2) {
                assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1, "{name}: not monotone");
            }
        }
        // The run event survives with its fields.
        let run = events
            .iter()
            .find_map(|e| match &e.kind {
                EventKind::Run { name, fields } if *name == "sweep" => Some(fields.clone()),
                _ => None,
            })
            .expect("run event recorded");
        assert_eq!(run, vec![("s", 2), ("served", 17)]);

        // JSON-lines round-trip shape (schema smoke test).
        let line = events[0].to_json_line();
        assert!(line.starts_with("{\"seq\":0,"));
        assert!(line.contains("\"type\":\"session_start\""));
        assert!(line.contains(SCHEMA));
        assert!(line.contains("\"git_sha\":"));
        assert!(line.contains("\"features\":"));
        assert!(line.contains("\"threads\":"));
        assert!(line.contains("\"instance_fingerprint\":\"0x"));
        let span_line = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Span { .. }))
            .unwrap()
            .to_json_line();
        assert!(span_line.contains("\"type\":\"span\""));
        assert!(span_line.contains("\"ns\":"));
        assert!(span_line.contains("\"id\":"));
        assert!(span_line.contains("\"tid\":"));
        assert!(span_line.contains("\"self_ns\":"));
        let gauge_line = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Gauge { .. }))
            .unwrap()
            .to_json_line();
        assert!(gauge_line.contains("\"type\":\"gauge\""));
        assert!(gauge_line.contains("\"value\":"));
        let hist_line = events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Hist { .. }))
            .unwrap()
            .to_json_line();
        assert!(hist_line.contains("\"type\":\"hist\""));
        assert!(hist_line.contains("\"buckets\":[["));
        // Counters/phases no longer record once the session closed.
        counters::SWEEP_GAIN_QUERIES.add(9);
        assert_eq!(counters::SWEEP_GAIN_QUERIES.get(), 7);

        // Snapshot JSON contains every declared name plus provenance.
        let json = snap.to_json();
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"instance_fingerprint\""));
        for c in counters::ALL {
            assert!(json.contains(c.name()), "{} missing", c.name());
        }
        for p in phases::ALL {
            assert!(json.contains(p.name()), "{} missing", p.name());
        }
        for h in hists::ALL {
            assert!(json.contains(h.name()), "{} missing", h.name());
        }
        for g in gauges::ALL {
            assert!(json.contains(g.name()), "{} missing", g.name());
        }
        assert!(json.contains("\"gauges\""));
        // Prometheus export covers the same schema.
        let prom = snap.to_prometheus();
        assert!(prom.contains("uavnet_build_info{schema=\"uavnet-obs/3\""));
        assert!(prom.contains("uavnet_sweep_gain_queries_total 7"));
        assert!(prom.contains("uavnet_service_queue_depth 2"));
        assert!(prom.contains("uavnet_phase_self_ns{phase=\"greedy\"} 1000"));
        assert!(prom.contains("uavnet_phase_duration_ns{phase=\"greedy\",quantile=\"0.5\"}"));
        assert!(prom.contains("uavnet_latency_ns{hist=\"greedy.gain_query_ns\",quantile=\"0.99\"}"));
        assert!(prom.contains("uavnet_latency_ns_count{hist=\"greedy.gain_query_ns\"} 2"));
        // Satellite: every exposed metric family carries a # HELP line.
        let helped: std::collections::HashSet<&str> = prom
            .lines()
            .filter_map(|l| l.strip_prefix("# HELP "))
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        for line in prom.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap();
            // `_sum`/`_count` lines belong to their summary family's
            // HELP; everything else must carry its own.
            let summary_base = name
                .strip_suffix("_sum")
                .or_else(|| name.strip_suffix("_count"));
            assert!(
                helped.contains(name) || summary_base.is_some_and(|b| helped.contains(b)),
                "metric family {name} has no # HELP line"
            );
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_form_a_tree_with_self_time() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(session_begin());
        {
            let _root = phases::REPORT.span();
            {
                let _child = phases::ALG1_PLAN.span();
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            // Pre-aggregated fold: attaches under the root for
            // attribution but does not reduce its self-time.
            phases::GREEDY.record_ns(5_000);
        }
        session_end().unwrap();
        let events = drain_events();
        let spans: Vec<(&str, u64, Option<u64>, u64, u64)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Span {
                    name,
                    id,
                    parent_id,
                    ns,
                    self_ns,
                    ..
                } => Some((*name, *id, *parent_id, *ns, *self_ns)),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 3);
        let alg1 = spans.iter().find(|s| s.0 == "alg1_plan").unwrap();
        let greedy = spans.iter().find(|s| s.0 == "greedy").unwrap();
        let root = spans.iter().find(|s| s.0 == "report").unwrap();
        // Unique nonzero ids; children point at the root; the root is
        // the only parentless span (a single rooted tree).
        assert!(spans.iter().all(|s| s.1 != 0));
        assert_eq!(alg1.2, Some(root.1));
        assert_eq!(greedy.2, Some(root.1));
        assert_eq!(root.2, None);
        assert_eq!(spans.iter().filter(|s| s.2.is_none()).count(), 1);
        // Child spans are leaves here: self == total. The root's
        // self-time excludes the timed child but not the record_ns
        // fold.
        assert_eq!(alg1.4, alg1.3);
        assert_eq!(greedy.4, greedy.3);
        assert_eq!(root.4, root.3 - alg1.3);
        assert!(root.3 >= alg1.3);
        // Phase accumulators mirror the span events.
        assert_eq!(phases::REPORT.self_ns(), root.4);
        assert_eq!(phases::REPORT.total_ns(), root.3);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn poisoned_locks_recover_and_recording_continues() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Poison every internal lock the way a panicking worker would:
        // by unwinding while the guard is held.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for poison in [
            || {
                let _g = EVENTS.lock().unwrap();
                panic!("worker died holding the event log");
            },
            || {
                let _g = SESSION_START.lock().unwrap();
                panic!("worker died holding the clock");
            },
            || {
                let _g = PROVENANCE.lock().unwrap();
                panic!("worker died holding the provenance");
            },
        ] {
            assert!(std::panic::catch_unwind(poison).is_err());
        }
        std::panic::set_hook(hook);
        assert!(EVENTS.lock().is_err(), "EVENTS should now be poisoned");

        // Every session primitive must keep working: begin, record,
        // end, drain — no second panic, a complete log.
        assert!(session_begin(), "session_begin must recover the locks");
        counters::SWEEP_RUNS.add(1);
        phases::GREEDY.record_ns(123);
        emit_run("sweep", &[("s", 1)]);
        let snap = session_end().expect("session_end must recover the locks");
        assert_eq!(snap.counter("sweep.runs"), Some(1));
        let events = drain_events();
        assert!(matches!(events[0].kind, EventKind::SessionStart { .. }));
        assert!(matches!(events.last().unwrap().kind, EventKind::SessionEnd));
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn double_begin_is_typed_and_leaves_session_intact() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(try_session_begin().is_ok());
        counters::SWEEP_RUNS.add(3);
        // The second begin must fail without resetting anything.
        assert_eq!(try_session_begin(), Err(SessionError::AlreadyActive));
        assert_eq!(counters::SWEEP_RUNS.get(), 3);
        assert!(!session_begin());
        let snap = session_end().unwrap();
        assert_eq!(snap.counter("sweep.runs"), Some(3));
        drain_events();
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn sessions_are_reentrant_within_one_process() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // First session: leave a span-parent stack entry behind by
        // recording from a root span, then end cleanly.
        assert!(try_session_begin().is_ok());
        {
            let _root = phases::REPORT.span();
            phases::GREEDY.record_ns(1_000);
        }
        counters::SWEEP_RUNS.add(7);
        session_end().unwrap();
        let first = drain_events();
        assert!(matches!(first[0].kind, EventKind::SessionStart { .. }));
        assert!(matches!(first.last().unwrap().kind, EventKind::SessionEnd));

        // Second session in the same process: everything must come up
        // zeroed with fresh span ids rooted at a parentless span.
        assert!(try_session_begin().is_ok());
        assert_eq!(counters::SWEEP_RUNS.get(), 0);
        {
            let _root = phases::REPORT.span();
            phases::GREEDY.record_ns(2_000);
        }
        session_end().unwrap();
        let second = drain_events();
        let roots: Vec<_> = second
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Span {
                    parent_id: None, ..
                } => Some(e.seq),
                _ => None,
            })
            .collect();
        assert_eq!(roots.len(), 1, "second session must have one rooted tree");
        // Sequence numbers restart per session.
        assert_eq!(second[0].seq, 0);
        assert!(matches!(second[0].kind, EventKind::SessionStart { .. }));
        assert!(matches!(second.last().unwrap().kind, EventKind::SessionEnd));
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_begin_is_typed() {
        assert_eq!(try_session_begin(), Err(SessionError::Disabled));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn span_handles_parent_across_threads() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(session_begin());
        let root = phases::SERVICE_WORKER.span();
        let handle = root.handle().expect("recording span yields a handle");
        // A thread with an empty local stack attaches under the handle,
        // its same-thread children nest below it, and an explicit-parent
        // record_ns lands under the handle too.
        std::thread::spawn(move || {
            {
                let outer = phases::SERVICE_APPLY.span_under(Some(handle));
                assert!(outer.handle().is_some());
                let _inner = phases::REPAIR.span();
            }
            phases::SERVICE_QUEUE_WAIT.record_ns_under(Some(handle), 7_000);
        })
        .join()
        .unwrap();
        drop(root);
        session_end().unwrap();
        let events = drain_events();
        let spans: Vec<(&str, u64, Option<u64>, u64)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Span {
                    name,
                    id,
                    parent_id,
                    tid,
                    ..
                } => Some((*name, *id, *parent_id, *tid)),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 4);
        let root_s = spans.iter().find(|s| s.0 == "service.worker").unwrap();
        let apply = spans.iter().find(|s| s.0 == "service.apply").unwrap();
        let repair = spans.iter().find(|s| s.0 == "repair").unwrap();
        let wait = spans.iter().find(|s| s.0 == "service.queue_wait").unwrap();
        assert_eq!(root_s.2, None);
        assert_eq!(apply.2, Some(root_s.1));
        assert_eq!(repair.2, Some(apply.1));
        assert_eq!(wait.2, Some(root_s.1));
        // Parent ids are always smaller (allocated on entry), so the
        // log keeps referential integrity even though the cross-thread
        // children closed before the root.
        for s in &spans {
            if let Some(p) = s.2 {
                assert!(p < s.1, "{}: parent_id {p} >= id {}", s.0, s.1);
            }
        }
        // The spawned thread got its own tid; same-thread spans share.
        assert_ne!(apply.3, root_s.3);
        assert_eq!(apply.3, repair.3);
        assert_eq!(apply.3, wait.3);
        // Cross-thread children do not subtract from the root's
        // wall-clock self-time.
        assert_eq!(
            phases::SERVICE_WORKER.self_ns(),
            phases::SERVICE_WORKER.total_ns()
        );
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn stale_handles_from_an_ended_session_are_ignored() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(session_begin());
        let handle = {
            let root = phases::SERVICE_WORKER.span();
            root.handle().unwrap()
        };
        session_end().unwrap();
        drain_events();
        // New session: the stale handle must not smuggle a dangling
        // parent_id into the fresh log.
        assert!(session_begin());
        {
            let _s = phases::SERVICE_APPLY.span_under(Some(handle));
        }
        phases::SERVICE_QUEUE_WAIT.record_ns_under(Some(handle), 1_000);
        session_end().unwrap();
        let events = drain_events();
        for e in &events {
            if let EventKind::Span {
                name, parent_id, ..
            } = &e.kind
            {
                assert_eq!(*parent_id, None, "{name}: stale parent survived");
            }
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn trace_event_export_is_perfetto_shaped() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(session_begin());
        {
            let _root = phases::REPORT.span();
            let _child = phases::ALG1_PLAN.span();
        }
        gauges::SERVICE_QUEUE_DEPTH.set(3);
        emit_run("sweep", &[("s", 2)]);
        session_end().unwrap();
        let events = drain_events();
        let trace = dump_trace_event(&events);
        let doc = uavnet_json::Json::parse(&trace).expect("trace is valid JSON");
        let items = doc
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        let mut complete = 0u32;
        let mut counters_seen = 0u32;
        let mut instants = 0u32;
        for item in items {
            let ph = item.get("ph").unwrap().as_str().unwrap();
            match ph {
                "X" => {
                    complete += 1;
                    // Complete events carry ts + dur in microseconds
                    // and the obs span id in args.
                    assert!(item.get("ts").unwrap().as_f64().unwrap() >= 0.0);
                    assert!(item.get("dur").unwrap().as_f64().unwrap() >= 0.0);
                    assert!(item.get("tid").unwrap().as_f64().unwrap() >= 1.0);
                    assert!(item.get("args").unwrap().get("id").is_some());
                }
                "C" => counters_seen += 1,
                "i" => instants += 1,
                "M" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
        assert_eq!(complete, 2, "one X event per span");
        // All counters + gauges, emitted at session end.
        assert_eq!(
            counters_seen as usize,
            counters::ALL.len() + gauges::ALL.len()
        );
        // session_start, session_end and the run record.
        assert_eq!(instants, 3);
        // The child's ts must not precede its parent's (start times
        // reconstructed from close-time minus duration).
        let ts_of = |wanted: &str| -> f64 {
            items
                .iter()
                .find(|i| {
                    i.get("ph").and_then(|p| p.as_str()) == Some("X")
                        && i.get("name").and_then(|n| n.as_str()) == Some(wanted)
                })
                .and_then(|i| i.get("ts"))
                .and_then(|t| t.as_f64())
                .unwrap()
        };
        assert!(ts_of("alg1_plan") >= ts_of("report"));
    }
}
