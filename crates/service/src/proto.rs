//! Wire protocol of the solver service: newline-delimited JSON.
//!
//! Every frame is one [`Json`] value serialized with
//! [`Json::dump_line`] (guaranteed newline-free) followed by `\n`.
//! Requests flow client→server, replies server→client; published
//! topic messages (`deployments`, `degradation`) reuse the [`Reply`]
//! frames so a subscriber decodes one stream of replies.
//!
//! Topic registry:
//!
//! | topic             | direction | payload                          |
//! |-------------------|-----------|----------------------------------|
//! | `deltas/mobility` | in        | `{"moves":[[user,x,y],…]}`       |
//! | `deltas/kill`     | in        | `{"uavs":[k,…]}`                 |
//! | `deltas/sever`    | in        | `{"links":[[a,b],…]}`            |
//! | `deltas/surge`    | in        | `{"users":[[x,y,min_rate],…]}`   |
//! | `deployments`     | out       | [`DeploymentMsg`]                |
//! | `degradation`     | out       | [`DegradationMsg`]               |

use crate::ServiceError;
use uavnet_core::{Delta, DeltaOutcome, User};
use uavnet_geom::Point2;
use uavnet_json::Json;

/// Outbound topic: the standing deployment, as diffs + full placements.
pub const TOPIC_DEPLOYMENTS: &str = "deployments";
/// Outbound topic: numeric degradation reports after lossy repairs.
pub const TOPIC_DEGRADATION: &str = "degradation";
/// Inbound topic for [`Delta::UserMoved`] batches.
pub const TOPIC_DELTAS_MOBILITY: &str = "deltas/mobility";
/// Inbound topic for [`Delta::KillUavs`] batches.
pub const TOPIC_DELTAS_KILL: &str = "deltas/kill";
/// Inbound topic for [`Delta::SeverLinks`] batches.
pub const TOPIC_DELTAS_SEVER: &str = "deltas/sever";
/// Inbound topic for [`Delta::UserSurge`] batches.
pub const TOPIC_DELTAS_SURGE: &str = "deltas/surge";

/// All inbound delta topics, for validation and docs.
pub const DELTA_TOPICS: &[&str] = &[
    TOPIC_DELTAS_MOBILITY,
    TOPIC_DELTAS_KILL,
    TOPIC_DELTAS_SEVER,
    TOPIC_DELTAS_SURGE,
];

/// All subscribable outbound topics.
pub const OUT_TOPICS: &[&str] = &[TOPIC_DEPLOYMENTS, TOPIC_DEGRADATION];

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn unum(n: usize) -> Json {
    Json::Num(n as f64)
}

fn proto_err(what: impl Into<String>) -> ServiceError {
    ServiceError::Protocol(what.into())
}

fn want_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, ServiceError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| proto_err(format!("missing string field {key:?}")))
}

fn want_f64(v: &Json, key: &str) -> Result<f64, ServiceError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| proto_err(format!("missing numeric field {key:?}")))
}

fn want_index(v: &Json, key: &str) -> Result<usize, ServiceError> {
    let n = want_f64(v, key)?;
    to_index(n, key)
}

fn to_index(n: f64, what: &str) -> Result<usize, ServiceError> {
    if !n.is_finite() || n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
        return Err(proto_err(format!(
            "{what} must be a non-negative integer, got {n}"
        )));
    }
    Ok(n as usize)
}

fn want_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], ServiceError> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| proto_err(format!("missing array field {key:?}")))
}

fn bool_field(v: &Json, key: &str) -> bool {
    matches!(v.get(key), Some(Json::Bool(true)))
}

fn opt_str_field(v: &Json, key: &str) -> Option<String> {
    v.get(key).and_then(Json::as_str).map(str::to_string)
}

fn push_trace_id(pairs: &mut Vec<(&str, Json)>, trace_id: &Option<String>) {
    if let Some(id) = trace_id {
        pairs.push(("trace_id", Json::Str(id.clone())));
    }
}

fn pair_list(items: &[Json], what: &str) -> Result<Vec<(usize, usize)>, ServiceError> {
    items
        .iter()
        .map(|p| {
            let pair = p
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| proto_err(format!("{what} entries must be [a, b] pairs")))?;
            let a = pair[0]
                .as_f64()
                .ok_or_else(|| proto_err(format!("{what} entries must be numeric")))?;
            let b = pair[1]
                .as_f64()
                .ok_or_else(|| proto_err(format!("{what} entries must be numeric")))?;
            Ok((to_index(a, what)?, to_index(b, what)?))
        })
        .collect()
}

fn placements_json(placements: &[(usize, usize)]) -> Json {
    Json::Arr(
        placements
            .iter()
            .map(|&(uav, cell)| Json::Arr(vec![unum(uav), unum(cell)]))
            .collect(),
    )
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Publish one payload to an inbound `deltas/*` topic.
    Publish {
        /// Target topic (one of [`DELTA_TOPICS`]).
        topic: String,
        /// Client-chosen sequence number, echoed on the ack/busy/error.
        seq: u64,
        /// Optional client-chosen trace id: echoed on the
        /// [`Reply::Ack`]/[`Reply::Busy`] and stamped on the
        /// `deployments`/`degradation` frames this delta produced, so
        /// a subscriber can correlate a publish to its consequences.
        trace_id: Option<String>,
        /// Topic-specific payload object.
        payload: Json,
    },
    /// Subscribe this connection to outbound topics.
    Subscribe {
        /// Requested topics (subset of [`OUT_TOPICS`]).
        topics: Vec<String>,
    },
    /// Request the full standing deployment as a one-off reply.
    Snapshot,
    /// Liveness probe; the server replies [`Reply::Pong`].
    Ping,
    /// Begin graceful shutdown: drain in-flight deltas, publish a
    /// final snapshot, exit.
    Shutdown,
}

impl Request {
    /// Serializes to one newline-free frame.
    pub fn to_line(&self) -> String {
        let v = match self {
            Request::Publish {
                topic,
                seq,
                trace_id,
                payload,
            } => {
                let mut pairs = vec![
                    ("type", Json::Str("publish".into())),
                    ("topic", Json::Str(topic.clone())),
                    ("seq", unum(*seq as usize)),
                ];
                push_trace_id(&mut pairs, trace_id);
                pairs.push(("payload", payload.clone()));
                obj(pairs)
            }
            Request::Subscribe { topics } => obj(vec![
                ("type", Json::Str("subscribe".into())),
                (
                    "topics",
                    Json::Arr(topics.iter().map(|t| Json::Str(t.clone())).collect()),
                ),
            ]),
            Request::Snapshot => obj(vec![("type", Json::Str("snapshot".into()))]),
            Request::Ping => obj(vec![("type", Json::Str("ping".into()))]),
            Request::Shutdown => obj(vec![("type", Json::Str("shutdown".into()))]),
        };
        v.dump_line()
    }

    /// Parses one frame.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] on malformed JSON or an unknown
    /// `type`.
    pub fn from_line(line: &str) -> Result<Request, ServiceError> {
        let v = Json::parse(line).map_err(|e| proto_err(format!("bad frame: {e}")))?;
        match want_str(&v, "type")? {
            "publish" => Ok(Request::Publish {
                topic: want_str(&v, "topic")?.to_string(),
                seq: want_index(&v, "seq")? as u64,
                trace_id: opt_str_field(&v, "trace_id"),
                payload: v
                    .get("payload")
                    .cloned()
                    .ok_or_else(|| proto_err("publish frame missing payload"))?,
            }),
            "subscribe" => Ok(Request::Subscribe {
                topics: want_arr(&v, "topics")?
                    .iter()
                    .map(|t| {
                        t.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| proto_err("topics must be strings"))
                    })
                    .collect::<Result<_, _>>()?,
            }),
            "snapshot" => Ok(Request::Snapshot),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(proto_err(format!("unknown request type {other:?}"))),
        }
    }
}

/// The standing deployment, published on `deployments` after every
/// absorbed delta (and as the reply to [`Request::Snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeploymentMsg {
    /// Monotone solve epoch: 0 is the cold solve, +1 per absorbed
    /// delta.
    pub epoch: u64,
    /// Users served by this deployment.
    pub served: usize,
    /// The full placement set `(uav, cell)` — lets any subscriber
    /// reconstruct state without replaying diffs.
    pub placements: Vec<(usize, usize)>,
    /// Placements added since the previous published epoch.
    pub added: Vec<(usize, usize)>,
    /// Placements removed since the previous published epoch.
    pub removed: Vec<(usize, usize)>,
    /// Set on the last message before a graceful shutdown.
    pub is_final: bool,
    /// Trace id of the `Publish` whose delta produced this epoch, when
    /// the client supplied one (absent on cold-solve, snapshot and
    /// final-drain frames).
    pub trace_id: Option<String>,
}

/// Numeric degradation report, published on `degradation` whenever a
/// delta cost coverage or forced a repair (the wire-sized counterpart
/// of `uavnet_core::DegradationReport`, which carries whole instances).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationMsg {
    /// Epoch of the triggering delta.
    pub epoch: u64,
    /// Users served before the delta.
    pub served_before: usize,
    /// Users served after repair.
    pub served_after: usize,
    /// Standing placements the repair abandoned.
    pub dropped_placements: usize,
    /// Spare UAVs spent as relays.
    pub relays_spent: usize,
    /// Whether the delta escalated to a full cold re-solve.
    pub cold_solved: bool,
    /// Trace id of the `Publish` whose delta triggered this report,
    /// when the client supplied one.
    pub trace_id: Option<String>,
}

/// A server→client frame (direct reply or published topic message).
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The delta at `seq` was absorbed.
    Ack {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Echo of the request's trace id, when supplied.
        trace_id: Option<String>,
        /// What the solver did with it.
        outcome: DeltaOutcome,
    },
    /// The bounded ingress queue was full; the delta was **not**
    /// enqueued. Retry after a backoff.
    Busy {
        /// Echo of the request's sequence number.
        seq: u64,
        /// Echo of the request's trace id, when supplied.
        trace_id: Option<String>,
        /// The queue capacity that was exhausted.
        queue_capacity: usize,
    },
    /// The request failed.
    Error {
        /// Echo of the request's sequence number, when attributable.
        seq: Option<u64>,
        /// Human-readable cause.
        message: String,
    },
    /// Subscription confirmed.
    Subscribed {
        /// The topics now active on this connection.
        topics: Vec<String>,
    },
    /// A `deployments` topic message (or snapshot reply).
    Deployment(DeploymentMsg),
    /// A `degradation` topic message.
    Degradation(DegradationMsg),
    /// Liveness answer to [`Request::Ping`].
    Pong,
    /// Graceful-shutdown acknowledgement; the connection will close
    /// after in-flight deltas drain.
    ShuttingDown,
}

impl Reply {
    /// Serializes to one newline-free frame.
    pub fn to_line(&self) -> String {
        let v = match self {
            Reply::Ack {
                seq,
                trace_id,
                outcome,
            } => {
                let mut pairs = vec![
                    ("type", Json::Str("ack".into())),
                    ("seq", unum(*seq as usize)),
                ];
                push_trace_id(&mut pairs, trace_id);
                pairs.push((
                    "outcome",
                    obj(vec![
                        ("served", unum(outcome.served)),
                        ("dirty_tiles", unum(outcome.dirty_tiles)),
                        ("stations_refreshed", unum(outcome.stations_refreshed)),
                        ("relays_spent", unum(outcome.relays_spent)),
                        ("dropped_placements", unum(outcome.dropped_placements)),
                        ("cold_solved", Json::Bool(outcome.cold_solved)),
                    ]),
                ));
                obj(pairs)
            }
            Reply::Busy {
                seq,
                trace_id,
                queue_capacity,
            } => {
                let mut pairs = vec![
                    ("type", Json::Str("busy".into())),
                    ("seq", unum(*seq as usize)),
                ];
                push_trace_id(&mut pairs, trace_id);
                pairs.push(("queue_capacity", unum(*queue_capacity)));
                obj(pairs)
            }
            Reply::Error { seq, message } => {
                let mut pairs = vec![("type", Json::Str("error".into()))];
                if let Some(seq) = seq {
                    pairs.push(("seq", unum(*seq as usize)));
                }
                pairs.push(("message", Json::Str(message.clone())));
                obj(pairs)
            }
            Reply::Subscribed { topics } => obj(vec![
                ("type", Json::Str("subscribed".into())),
                (
                    "topics",
                    Json::Arr(topics.iter().map(|t| Json::Str(t.clone())).collect()),
                ),
            ]),
            Reply::Deployment(d) => {
                let mut pairs = vec![
                    ("type", Json::Str("deployment".into())),
                    ("epoch", unum(d.epoch as usize)),
                    ("served", unum(d.served)),
                ];
                push_trace_id(&mut pairs, &d.trace_id);
                pairs.push(("placements", placements_json(&d.placements)));
                pairs.push(("added", placements_json(&d.added)));
                pairs.push(("removed", placements_json(&d.removed)));
                pairs.push(("final", Json::Bool(d.is_final)));
                obj(pairs)
            }
            Reply::Degradation(d) => {
                let mut pairs = vec![
                    ("type", Json::Str("degradation".into())),
                    ("epoch", unum(d.epoch as usize)),
                ];
                push_trace_id(&mut pairs, &d.trace_id);
                pairs.push(("served_before", unum(d.served_before)));
                pairs.push(("served_after", unum(d.served_after)));
                pairs.push(("dropped_placements", unum(d.dropped_placements)));
                pairs.push(("relays_spent", unum(d.relays_spent)));
                pairs.push(("cold_solved", Json::Bool(d.cold_solved)));
                obj(pairs)
            }
            Reply::Pong => obj(vec![("type", Json::Str("pong".into()))]),
            Reply::ShuttingDown => obj(vec![("type", Json::Str("shutting_down".into()))]),
        };
        v.dump_line()
    }

    /// Parses one frame.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] on malformed JSON or an unknown
    /// `type`.
    pub fn from_line(line: &str) -> Result<Reply, ServiceError> {
        let v = Json::parse(line).map_err(|e| proto_err(format!("bad frame: {e}")))?;
        match want_str(&v, "type")? {
            "ack" => {
                let o = v
                    .get("outcome")
                    .ok_or_else(|| proto_err("ack frame missing outcome"))?;
                let mut outcome = DeltaOutcome::default();
                outcome.served = want_index(o, "served")?;
                outcome.dirty_tiles = want_index(o, "dirty_tiles")?;
                outcome.stations_refreshed = want_index(o, "stations_refreshed")?;
                outcome.relays_spent = want_index(o, "relays_spent")?;
                outcome.dropped_placements = want_index(o, "dropped_placements")?;
                outcome.cold_solved = bool_field(o, "cold_solved");
                Ok(Reply::Ack {
                    seq: want_index(&v, "seq")? as u64,
                    trace_id: opt_str_field(&v, "trace_id"),
                    outcome,
                })
            }
            "busy" => Ok(Reply::Busy {
                seq: want_index(&v, "seq")? as u64,
                trace_id: opt_str_field(&v, "trace_id"),
                queue_capacity: want_index(&v, "queue_capacity")?,
            }),
            "error" => Ok(Reply::Error {
                seq: v.get("seq").and_then(Json::as_f64).map(|n| n as u64),
                message: want_str(&v, "message")?.to_string(),
            }),
            "subscribed" => Ok(Reply::Subscribed {
                topics: want_arr(&v, "topics")?
                    .iter()
                    .map(|t| {
                        t.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| proto_err("topics must be strings"))
                    })
                    .collect::<Result<_, _>>()?,
            }),
            "deployment" => Ok(Reply::Deployment(DeploymentMsg {
                epoch: want_index(&v, "epoch")? as u64,
                served: want_index(&v, "served")?,
                placements: pair_list(want_arr(&v, "placements")?, "placements")?,
                added: pair_list(want_arr(&v, "added")?, "added")?,
                removed: pair_list(want_arr(&v, "removed")?, "removed")?,
                is_final: bool_field(&v, "final"),
                trace_id: opt_str_field(&v, "trace_id"),
            })),
            "degradation" => Ok(Reply::Degradation(DegradationMsg {
                epoch: want_index(&v, "epoch")? as u64,
                served_before: want_index(&v, "served_before")?,
                served_after: want_index(&v, "served_after")?,
                dropped_placements: want_index(&v, "dropped_placements")?,
                relays_spent: want_index(&v, "relays_spent")?,
                cold_solved: bool_field(&v, "cold_solved"),
                trace_id: opt_str_field(&v, "trace_id"),
            })),
            "pong" => Ok(Reply::Pong),
            "shutting_down" => Ok(Reply::ShuttingDown),
            other => Err(proto_err(format!("unknown reply type {other:?}"))),
        }
    }
}

/// Encodes a [`Delta`] as its `(topic, payload)` wire form.
pub fn delta_to_wire(delta: &Delta) -> (&'static str, Json) {
    match delta {
        Delta::UserMoved(moves) => (
            TOPIC_DELTAS_MOBILITY,
            obj(vec![(
                "moves",
                Json::Arr(
                    moves
                        .iter()
                        .map(|&(user, p)| {
                            Json::Arr(vec![unum(user as usize), Json::Num(p.x), Json::Num(p.y)])
                        })
                        .collect(),
                ),
            )]),
        ),
        Delta::KillUavs(uavs) => (
            TOPIC_DELTAS_KILL,
            obj(vec![(
                "uavs",
                Json::Arr(uavs.iter().map(|&u| unum(u)).collect()),
            )]),
        ),
        Delta::SeverLinks(links) => (
            TOPIC_DELTAS_SEVER,
            obj(vec![(
                "links",
                Json::Arr(
                    links
                        .iter()
                        .map(|&(a, b)| Json::Arr(vec![unum(a), unum(b)]))
                        .collect(),
                ),
            )]),
        ),
        Delta::UserSurge(users) => (
            TOPIC_DELTAS_SURGE,
            obj(vec![(
                "users",
                Json::Arr(
                    users
                        .iter()
                        .map(|u| {
                            Json::Arr(vec![
                                Json::Num(u.pos.x),
                                Json::Num(u.pos.y),
                                Json::Num(u.min_rate_bps),
                            ])
                        })
                        .collect(),
                ),
            )]),
        ),
        _ => unreachable!("Delta is non_exhaustive but this crate tracks uavnet-core"),
    }
}

/// Decodes a published `(topic, payload)` back into a typed [`Delta`].
///
/// # Errors
///
/// [`ServiceError::Protocol`] on an unknown topic or a payload not
/// matching the topic's schema (wrong shapes, non-finite coordinates,
/// fractional indices).
pub fn delta_from_wire(topic: &str, payload: &Json) -> Result<Delta, ServiceError> {
    match topic {
        TOPIC_DELTAS_MOBILITY => {
            let moves = want_arr(payload, "moves")?
                .iter()
                .map(|m| {
                    let t = m
                        .as_arr()
                        .filter(|a| a.len() == 3)
                        .ok_or_else(|| proto_err("moves entries must be [user, x, y]"))?;
                    let user = to_index(
                        t[0].as_f64()
                            .ok_or_else(|| proto_err("user id must be numeric"))?,
                        "user id",
                    )?;
                    let (x, y) = (coord(&t[1])?, coord(&t[2])?);
                    Ok((user as u32, Point2::new(x, y)))
                })
                .collect::<Result<Vec<_>, ServiceError>>()?;
            Ok(Delta::UserMoved(moves))
        }
        TOPIC_DELTAS_KILL => {
            let uavs = want_arr(payload, "uavs")?
                .iter()
                .map(|u| {
                    to_index(
                        u.as_f64()
                            .ok_or_else(|| proto_err("uav ids must be numeric"))?,
                        "uav id",
                    )
                })
                .collect::<Result<Vec<_>, ServiceError>>()?;
            Ok(Delta::KillUavs(uavs))
        }
        TOPIC_DELTAS_SEVER => Ok(Delta::SeverLinks(pair_list(
            want_arr(payload, "links")?,
            "links",
        )?)),
        TOPIC_DELTAS_SURGE => {
            let users = want_arr(payload, "users")?
                .iter()
                .map(|u| {
                    let t = u
                        .as_arr()
                        .filter(|a| a.len() == 3)
                        .ok_or_else(|| proto_err("users entries must be [x, y, min_rate]"))?;
                    Ok(User {
                        pos: Point2::new(coord(&t[0])?, coord(&t[1])?),
                        min_rate_bps: coord(&t[2])?,
                    })
                })
                .collect::<Result<Vec<_>, ServiceError>>()?;
            Ok(Delta::UserSurge(users))
        }
        other => Err(proto_err(format!("unknown delta topic {other:?}"))),
    }
}

fn coord(v: &Json) -> Result<f64, ServiceError> {
    let n = v
        .as_f64()
        .ok_or_else(|| proto_err("coordinates must be numeric"))?;
    if !n.is_finite() {
        return Err(proto_err(format!("coordinates must be finite, got {n}")));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Publish {
                topic: TOPIC_DELTAS_KILL.into(),
                seq: 7,
                trace_id: None,
                payload: obj(vec![("uavs", Json::Arr(vec![unum(2)]))]),
            },
            Request::Publish {
                topic: TOPIC_DELTAS_MOBILITY.into(),
                seq: 8,
                trace_id: Some("req-8".into()),
                payload: obj(vec![("moves", Json::Arr(vec![]))]),
            },
            Request::Subscribe {
                topics: vec![TOPIC_DEPLOYMENTS.into(), TOPIC_DEGRADATION.into()],
            },
            Request::Snapshot,
            Request::Ping,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = r.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Request::from_line(&line).unwrap(), r);
        }
    }

    #[test]
    fn replies_round_trip() {
        let mut outcome = DeltaOutcome::default();
        outcome.served = 14;
        outcome.dirty_tiles = 3;
        outcome.cold_solved = true;
        let replies = [
            Reply::Ack {
                seq: 1,
                trace_id: None,
                outcome: outcome.clone(),
            },
            Reply::Ack {
                seq: 1,
                trace_id: Some("req-1".into()),
                outcome,
            },
            Reply::Busy {
                seq: 2,
                trace_id: Some("req-2".into()),
                queue_capacity: 64,
            },
            Reply::Busy {
                seq: 2,
                trace_id: None,
                queue_capacity: 64,
            },
            Reply::Error {
                seq: Some(3),
                message: "bad topic".into(),
            },
            Reply::Error {
                seq: None,
                message: "bad frame".into(),
            },
            Reply::Subscribed {
                topics: vec![TOPIC_DEPLOYMENTS.into()],
            },
            Reply::Deployment(DeploymentMsg {
                epoch: 4,
                served: 12,
                placements: vec![(0, 5), (1, 9)],
                added: vec![(1, 9)],
                removed: vec![(1, 7)],
                is_final: true,
                trace_id: None,
            }),
            Reply::Deployment(DeploymentMsg {
                epoch: 5,
                served: 12,
                placements: vec![(0, 5)],
                added: vec![],
                removed: vec![],
                is_final: false,
                trace_id: Some("req-5".into()),
            }),
            Reply::Degradation(DegradationMsg {
                epoch: 4,
                served_before: 16,
                served_after: 12,
                dropped_placements: 1,
                relays_spent: 2,
                cold_solved: false,
                trace_id: Some("req-4".into()),
            }),
            Reply::Pong,
            Reply::ShuttingDown,
        ];
        for r in replies {
            let line = r.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Reply::from_line(&line).unwrap(), r);
        }
    }

    #[test]
    fn deltas_round_trip_through_wire_form() {
        let deltas = [
            Delta::UserMoved(vec![
                (3, Point2::new(101.25, -0.5)),
                (9, Point2::new(0.1, 7.0)),
            ]),
            Delta::KillUavs(vec![0, 4]),
            Delta::SeverLinks(vec![(2, 11), (4, 4)]),
            Delta::UserSurge(vec![User {
                pos: Point2::new(330.0, 12.5),
                min_rate_bps: 2_000.0,
            }]),
        ];
        for d in deltas {
            let (topic, payload) = delta_to_wire(&d);
            // Through a full serialize→parse cycle, not just in-memory.
            let reparsed = Json::parse(&payload.dump_line()).unwrap();
            assert_eq!(delta_from_wire(topic, &reparsed).unwrap(), d);
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        let bad = [
            ("deltas/unknown", obj(vec![])),
            (TOPIC_DELTAS_MOBILITY, obj(vec![("moves", Json::Null)])),
            (
                TOPIC_DELTAS_MOBILITY,
                obj(vec![("moves", Json::Arr(vec![Json::Arr(vec![unum(1)])]))]),
            ),
            (
                TOPIC_DELTAS_MOBILITY,
                Json::parse(r#"{"moves":[[1,1e999,0]]}"#).unwrap(),
            ),
            (
                TOPIC_DELTAS_KILL,
                obj(vec![("uavs", Json::Arr(vec![Json::Num(1.5)]))]),
            ),
            (
                TOPIC_DELTAS_SEVER,
                obj(vec![("links", Json::Arr(vec![unum(1)]))]),
            ),
        ];
        for (topic, payload) in bad {
            assert!(
                matches!(
                    delta_from_wire(topic, &payload),
                    Err(ServiceError::Protocol(_))
                ),
                "{topic} with {payload:?} must be a protocol error"
            );
        }
        assert!(matches!(
            Request::from_line("not json"),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            Request::from_line(r#"{"type":"warp"}"#),
            Err(ServiceError::Protocol(_))
        ));
        assert!(matches!(
            Reply::from_line(r#"{"type":"ack","seq":-1,"outcome":{}}"#),
            Err(ServiceError::Protocol(_))
        ));
    }
}
