//! The solver service process: acceptor, per-connection readers, the
//! single solver worker, the topic publisher, and the HTTP telemetry
//! endpoint.
//!
//! Threading model:
//!
//! * **acceptor** — non-blocking accept loop; spawns one reader per
//!   connection and joins them on shutdown. The acceptor owns the
//!   ingress [`SyncSender`]; readers hold clones, so once the
//!   acceptor and every reader exit, the worker's `recv` drains the
//!   queue and returns `Err` — graceful shutdown needs no sentinel.
//! * **reader (×N)** — decodes newline-delimited frames under a read
//!   timeout (polling the shutdown flag between timeouts), answers
//!   protocol-level requests inline (ping, subscribe, busy) and
//!   forwards deltas into the bounded queue.
//! * **worker** — owns the [`SolverLoop`]; applies deltas one at a
//!   time inside `catch_unwind`, acks the publisher connection, and
//!   publishes deployment diffs / degradation reports to subscribers.
//!   A panic poisons the loop (typed errors from then on) without
//!   killing the process.
//! * **http** — minimal HTTP/1.1 for `/metrics` (Prometheus text)
//!   and `/healthz`.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::proto::{
    delta_from_wire, DegradationMsg, DeploymentMsg, Reply, Request, OUT_TOPICS, TOPIC_DEGRADATION,
    TOPIC_DEPLOYMENTS,
};
use crate::ServiceError;
use uavnet_core::{diff_deployments, Delta, Instance, LoopConfig, ResolveStats, SolverLoop};
use uavnet_obs::{counters, gauges, hists, phases, SpanHandle};

/// Tuning of a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Capacity of the bounded delta ingress queue; overflow gets a
    /// typed [`Reply::Busy`], never unbounded buffering.
    pub queue_capacity: usize,
    /// Per-connection read timeout — also the shutdown-flag poll
    /// period for blocked readers.
    pub read_timeout: Duration,
    /// Per-connection write timeout; a subscriber stalled past this
    /// is dropped from the registry.
    pub write_timeout: Duration,
    /// Accept-loop poll period.
    pub poll_interval: Duration,
    /// Record an obs session for the service's lifetime, so
    /// `/metrics` serves live `resolve.*`/`service.*` metrics and the
    /// summary carries a snapshot. The session starts *after* the cold
    /// solve, so a recorded log holds exactly the delta lifecycle (one
    /// `service.worker` root span). Requires the instrumentation to be
    /// compiled in (`obs` feature) — spawning fails with a typed
    /// session error otherwise.
    pub record_obs: bool,
    /// Provenance stamped on the recorded obs session when
    /// [`record_obs`](Self::record_obs) is set; `None` uses
    /// auto-detected provenance.
    pub obs_provenance: Option<uavnet_obs::Provenance>,
    /// Explicit parent for the worker's `service.worker` root span.
    /// `None` (the default) leaves it a root; an embedder that opens
    /// its own report-level span (as `service_report` does around the
    /// whole loopback run, in-process twin included) passes its handle
    /// here so the session's log stays one rooted tree. When
    /// [`record_obs`](Self::record_obs) is set the worker ends the obs
    /// session as it exits, so drop the guard owning this handle
    /// *before* `shutdown_and_join` — a span guard dropped after
    /// session end is never written, leaving its children dangling.
    /// (Closing the parent before its children is fine: ids are
    /// allocated on span entry.)
    pub obs_parent: Option<uavnet_obs::SpanHandle>,
    /// A delta whose enqueue-to-publish latency exceeds this threshold
    /// emits a structured `service.slow_delta` event and bumps the
    /// `service.slow_deltas` counter.
    pub slow_delta_threshold: Duration,
    /// Test hook: the worker panics while applying the publish with
    /// this sequence number, exercising panic containment.
    pub inject_panic_on_seq: Option<u64>,
    /// Test hook: the worker sleeps this long before each apply, so
    /// backpressure tests can fill the bounded queue deterministically.
    pub apply_delay: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(20),
            record_obs: false,
            obs_provenance: None,
            obs_parent: None,
            slow_delta_threshold: Duration::from_millis(250),
            inject_panic_on_seq: None,
            apply_delay: Duration::ZERO,
        }
    }
}

/// What the worker had done by the time it drained and exited.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceSummary {
    /// Solve epochs completed (deltas absorbed; 0 = cold solve only).
    pub epochs: u64,
    /// Users served by the final published deployment.
    pub served: usize,
    /// The final published placements.
    pub placements: Vec<(usize, usize)>,
    /// Cumulative solver work counters.
    pub stats: ResolveStats,
    /// The panic message, when the worker was poisoned.
    pub worker_panic: Option<String>,
    /// Final metrics snapshot, when the service recorded an obs
    /// session ([`ServiceConfig::record_obs`]).
    pub metrics: Option<uavnet_obs::MetricsSnapshot>,
}

type SharedWriter = Arc<Mutex<TcpStream>>;

fn write_line_to(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn reply_to(writer: &SharedWriter, reply: &Reply) {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    let _ = write_line_to(&mut w, &reply.to_line());
}

struct Subscriber {
    stream: TcpStream,
    topics: Vec<String>,
}

/// Writes `reply` to every subscriber of `topic`, dropping
/// subscribers whose socket errors or stalls past the write timeout.
/// Each write is timed into the `service.subscriber_write_ns`
/// histogram; drops bump `service.subscriber_drops`.
fn publish(subscribers: &Mutex<Vec<Subscriber>>, topic: &str, reply: &Reply) {
    let line = reply.to_line();
    let mut subs = subscribers.lock().unwrap_or_else(|e| e.into_inner());
    subs.retain_mut(|s| {
        if !s.topics.iter().any(|t| t == topic) {
            return true;
        }
        let timer = hists::SUBSCRIBER_WRITE.timer();
        let ok = write_line_to(&mut s.stream, &line).is_ok();
        drop(timer);
        if !ok {
            counters::SERVICE_SUBSCRIBER_DROPS.add(1);
        }
        ok
    });
}

enum Job {
    Apply {
        seq: u64,
        /// Client correlation id, echoed on the ack and stamped on
        /// the frames this delta produces.
        trace_id: Option<String>,
        delta: Delta,
        /// When the reader enqueued the job; queue-wait is measured
        /// from here to the worker's dequeue.
        enqueued: Instant,
        /// The reader-side `service.ingress` span, parenting the
        /// worker-side queue-wait/apply/publish spans across the
        /// thread boundary.
        parent: Option<SpanHandle>,
        reply: SharedWriter,
    },
    Snapshot {
        reply: SharedWriter,
    },
}

/// Shared state the worker mutates for the other service threads.
struct WorkerShared {
    subscribers: Arc<Mutex<Vec<Subscriber>>>,
    healthy: Arc<AtomicBool>,
    deltas_applied: Arc<AtomicU64>,
    queue_depth: Arc<AtomicU64>,
    summary: Arc<Mutex<Option<ServiceSummary>>>,
}

/// The long-running solver service; [`SolverService::spawn`] is the
/// entry point.
pub struct SolverService;

impl SolverService {
    /// Cold-solves `instance`, stands up a [`SolverLoop`] on the
    /// result, and starts serving the delta pub/sub protocol on an
    /// ephemeral loopback TCP port (plus `/metrics` + `/healthz` on a
    /// second ephemeral port).
    ///
    /// # Errors
    ///
    /// Any [`CoreError`](uavnet_core::CoreError) of the cold solve,
    /// socket bind failures, or a typed session error when
    /// [`ServiceConfig::record_obs`] is set without the obs
    /// instrumentation compiled in.
    pub fn spawn(
        instance: Instance,
        loop_config: LoopConfig,
        config: ServiceConfig,
    ) -> Result<ServiceHandle, ServiceError> {
        let solver = SolverLoop::new(instance, loop_config)?;
        // The session starts *after* the cold solve succeeds, so a
        // recorded log holds exactly the delta lifecycle under one
        // `service.worker` root span.
        if config.record_obs {
            match config.obs_provenance.clone() {
                Some(p) => uavnet_obs::try_session_begin_with(p)?,
                None => uavnet_obs::try_session_begin()?,
            }
        }

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let http_listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let http_addr = http_listener.local_addr()?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let healthy = Arc::new(AtomicBool::new(true));
        let deltas_applied = Arc::new(AtomicU64::new(0));
        let queue_depth = Arc::new(AtomicU64::new(0));
        let started = Instant::now();
        let subscribers = Arc::new(Mutex::new(Vec::<Subscriber>::new()));
        let summary = Arc::new(Mutex::new(None::<ServiceSummary>));
        let (tx, rx) = sync_channel::<Job>(config.queue_capacity);
        // The worker opens the session's root span on its own thread
        // and hands its handle back, so reader threads can parent
        // their ingress spans under it across the thread boundary.
        let (root_tx, root_rx) = std::sync::mpsc::channel::<Option<SpanHandle>>();

        let mut threads = Vec::new();
        {
            let shared = WorkerShared {
                subscribers: Arc::clone(&subscribers),
                healthy: Arc::clone(&healthy),
                deltas_applied: Arc::clone(&deltas_applied),
                queue_depth: Arc::clone(&queue_depth),
                summary: Arc::clone(&summary),
            };
            let config = config.clone();
            threads.push(std::thread::spawn(move || {
                worker_loop(solver, rx, &shared, &config, &root_tx, started);
            }));
        }
        let worker_root = root_rx.recv().unwrap_or(None);
        {
            let (shutdown, subscribers, queue_depth, config) = (
                Arc::clone(&shutdown),
                Arc::clone(&subscribers),
                Arc::clone(&queue_depth),
                config.clone(),
            );
            threads.push(std::thread::spawn(move || {
                accept_loop(
                    listener,
                    tx,
                    shutdown,
                    subscribers,
                    queue_depth,
                    worker_root,
                    config,
                );
            }));
        }
        {
            let (shutdown, healthy, deltas_applied, queue_depth, config) = (
                Arc::clone(&shutdown),
                Arc::clone(&healthy),
                Arc::clone(&deltas_applied),
                Arc::clone(&queue_depth),
                config.clone(),
            );
            threads.push(std::thread::spawn(move || {
                http_loop(
                    http_listener,
                    &shutdown,
                    &healthy,
                    &deltas_applied,
                    &queue_depth,
                    started,
                    &config,
                );
            }));
        }

        Ok(ServiceHandle {
            addr,
            http_addr,
            shutdown,
            healthy,
            threads,
            summary,
        })
    }
}

/// Handle to a running service: addresses, liveness, and shutdown.
pub struct ServiceHandle {
    addr: SocketAddr,
    http_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    healthy: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    summary: Arc<Mutex<Option<ServiceSummary>>>,
}

impl ServiceHandle {
    /// The pub/sub protocol address (loopback, ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The HTTP telemetry address serving `/metrics` and `/healthz`.
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// `false` once the worker was poisoned by a panic.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Requests graceful shutdown (idempotent): stop accepting,
    /// drain in-flight deltas, publish a final snapshot. Returns
    /// immediately; use [`join`](Self::join) to wait.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Requests shutdown and waits for every service thread to exit,
    /// returning the worker's summary.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Closed`] if the worker died without writing a
    /// summary (it panicked outside the contained apply path).
    pub fn shutdown_and_join(self) -> Result<ServiceSummary, ServiceError> {
        self.request_shutdown();
        for t in self.threads {
            let _ = t.join();
        }
        self.summary
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .ok_or(ServiceError::Closed)
    }
}

fn worker_loop(
    mut solver: SolverLoop,
    rx: Receiver<Job>,
    shared: &WorkerShared,
    config: &ServiceConfig,
    root_tx: &std::sync::mpsc::Sender<Option<SpanHandle>>,
    started: Instant,
) {
    let subscribers = &*shared.subscribers;
    // One root span for the worker's whole life: every per-delta
    // subtree hangs under it (via the reader-side ingress spans), so
    // a recorded session validates as a single-root tree.
    let root = phases::SERVICE_WORKER.span_under(config.obs_parent);
    let _ = root_tx.send(root.handle());

    let mut epoch: u64 = 0;
    let mut published = solver.placements().to_vec();
    let mut last_served = solver.served_users();
    let mut poisoned: Option<String> = None;

    while let Ok(job) = rx.recv() {
        shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
        gauges::SERVICE_QUEUE_DEPTH.set(shared.queue_depth.load(Ordering::SeqCst));
        gauges::SERVICE_UPTIME_SECONDS.set(started.elapsed().as_secs());
        match job {
            Job::Snapshot { reply } => {
                let msg = match &poisoned {
                    Some(m) => Reply::Error {
                        seq: None,
                        message: format!("solver worker poisoned: {m}"),
                    },
                    None => Reply::Deployment(DeploymentMsg {
                        epoch,
                        served: last_served,
                        trace_id: None,
                        placements: published.clone(),
                        added: Vec::new(),
                        removed: Vec::new(),
                        is_final: false,
                    }),
                };
                reply_to(&reply, &msg);
            }
            Job::Apply {
                seq,
                trace_id,
                delta,
                enqueued,
                parent,
                reply,
            } => {
                phases::SERVICE_QUEUE_WAIT
                    .record_ns_under(parent, enqueued.elapsed().as_nanos() as u64);
                if let Some(m) = &poisoned {
                    reply_to(
                        &reply,
                        &Reply::Error {
                            seq: Some(seq),
                            message: format!("solver worker poisoned: {m}"),
                        },
                    );
                    continue;
                }
                if !config.apply_delay.is_zero() {
                    std::thread::sleep(config.apply_delay);
                }
                let served_before = solver.served_users();
                let inject = config.inject_panic_on_seq == Some(seq);
                let apply_span = phases::SERVICE_APPLY.span_under(parent);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    if inject {
                        panic!("injected worker panic at seq {seq}");
                    }
                    solver.apply(delta)
                }));
                drop(apply_span);
                match result {
                    Ok(Ok(outcome)) => {
                        epoch += 1;
                        last_served = outcome.served;
                        shared.deltas_applied.fetch_add(1, Ordering::Relaxed);
                        counters::SERVICE_DELTAS_APPLIED.add(1);
                        reply_to(
                            &reply,
                            &Reply::Ack {
                                seq,
                                trace_id: trace_id.clone(),
                                outcome: outcome.clone(),
                            },
                        );
                        let now = solver.placements().to_vec();
                        let diff = diff_deployments(&published, &now);
                        {
                            let _publish_span = phases::SERVICE_PUBLISH.span_under(parent);
                            publish(
                                subscribers,
                                TOPIC_DEPLOYMENTS,
                                &Reply::Deployment(DeploymentMsg {
                                    epoch,
                                    served: outcome.served,
                                    trace_id: trace_id.clone(),
                                    placements: now.clone(),
                                    added: diff.added,
                                    removed: diff.removed,
                                    is_final: false,
                                }),
                            );
                            counters::SERVICE_PUBLISH_DEPLOYMENTS.add(1);
                            published = now;
                            if outcome.served < served_before
                                || outcome.dropped_placements > 0
                                || outcome.relays_spent > 0
                                || outcome.cold_solved
                            {
                                publish(
                                    subscribers,
                                    TOPIC_DEGRADATION,
                                    &Reply::Degradation(DegradationMsg {
                                        epoch,
                                        trace_id,
                                        served_before,
                                        served_after: outcome.served,
                                        dropped_placements: outcome.dropped_placements,
                                        relays_spent: outcome.relays_spent,
                                        cold_solved: outcome.cold_solved,
                                    }),
                                );
                                counters::SERVICE_PUBLISH_DEGRADATION.add(1);
                            }
                        }
                        let total_ns = enqueued.elapsed().as_nanos() as u64;
                        if total_ns > config.slow_delta_threshold.as_nanos() as u64 {
                            counters::SERVICE_SLOW_DELTAS.add(1);
                            uavnet_obs::emit_run(
                                "service.slow_delta",
                                &[
                                    ("seq", seq),
                                    ("epoch", epoch),
                                    ("total_ns", total_ns),
                                    (
                                        "threshold_ns",
                                        config.slow_delta_threshold.as_nanos() as u64,
                                    ),
                                ],
                            );
                        }
                    }
                    Ok(Err(core_err)) => {
                        // Typed solver refusal (bad ids, infeasible
                        // repair): the loop state is unchanged, the
                        // service stays healthy.
                        reply_to(
                            &reply,
                            &Reply::Error {
                                seq: Some(seq),
                                message: format!("solver error: {core_err}"),
                            },
                        );
                    }
                    Err(payload) => {
                        // Containment: the loop state may be torn
                        // mid-apply, so poison it — subsequent deltas
                        // and snapshots get typed errors, `/healthz`
                        // flips — but the process and its telemetry
                        // stay up.
                        let m = panic_message(payload);
                        shared.healthy.store(false, Ordering::SeqCst);
                        poisoned = Some(m.clone());
                        reply_to(
                            &reply,
                            &Reply::Error {
                                seq: Some(seq),
                                message: ServiceError::WorkerPanicked(m).to_string(),
                            },
                        );
                    }
                }
            }
        }
    }

    // Every sender is gone and the queue is drained: publish the
    // final snapshot and leave a summary for `shutdown_and_join`.
    publish(
        subscribers,
        TOPIC_DEPLOYMENTS,
        &Reply::Deployment(DeploymentMsg {
            epoch,
            served: last_served,
            trace_id: None,
            placements: published.clone(),
            added: Vec::new(),
            removed: Vec::new(),
            is_final: true,
        }),
    );
    // The root span must close on this thread before the session
    // ends, so the recorded tree is complete and single-rooted.
    drop(root);
    let metrics = if config.record_obs {
        uavnet_obs::session_end()
    } else {
        None
    };
    *shared.summary.lock().unwrap_or_else(|e| e.into_inner()) = Some(ServiceSummary {
        epochs: epoch,
        served: last_served,
        placements: published,
        stats: solver.stats().clone(),
        worker_panic: poisoned,
        metrics,
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<Job>,
    shutdown: Arc<AtomicBool>,
    subscribers: Arc<Mutex<Vec<Subscriber>>>,
    queue_depth: Arc<AtomicU64>,
    worker_root: Option<SpanHandle>,
    config: ServiceConfig,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let tx = tx.clone();
                let shutdown = Arc::clone(&shutdown);
                let subscribers = Arc::clone(&subscribers);
                let queue_depth = Arc::clone(&queue_depth);
                let config = config.clone();
                readers.push(std::thread::spawn(move || {
                    let _ = serve_conn(
                        stream,
                        &tx,
                        &shutdown,
                        &subscribers,
                        &queue_depth,
                        worker_root,
                        &config,
                    );
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(config.poll_interval);
            }
            Err(_) => break,
        }
    }
    // Dropping the acceptor's sender — after every reader (each holds
    // a clone) exits — is what ends the worker's `recv` loop.
    drop(tx);
    for r in readers {
        let _ = r.join();
    }
}

/// One protocol connection: decode frames until EOF, socket error,
/// or shutdown.
fn serve_conn(
    stream: TcpStream,
    tx: &SyncSender<Job>,
    shutdown: &AtomicBool,
    subscribers: &Mutex<Vec<Subscriber>>,
    queue_depth: &AtomicU64,
    worker_root: Option<SpanHandle>,
    config: &ServiceConfig,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    let writer: SharedWriter = {
        let w = stream.try_clone()?;
        w.set_write_timeout(Some(config.write_timeout))?;
        Arc::new(Mutex::new(w))
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            // Timeout: poll the shutdown flag and keep reading. Any
            // partial frame already pulled stays accumulated in
            // `line`, so a slow writer is not corrupted.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) => return Err(e),
        }
        let frame = line.trim_end_matches(['\r', '\n']);
        if frame.trim().is_empty() {
            line.clear();
            continue;
        }
        let request = Request::from_line(frame);
        line.clear();
        match request {
            Err(e) => reply_to(
                &writer,
                &Reply::Error {
                    seq: None,
                    message: e.to_string(),
                },
            ),
            Ok(Request::Ping) => reply_to(&writer, &Reply::Pong),
            Ok(Request::Shutdown) => {
                shutdown.store(true, Ordering::SeqCst);
                reply_to(&writer, &Reply::ShuttingDown);
                return Ok(());
            }
            Ok(Request::Subscribe { topics }) => {
                if let Some(bad) = topics.iter().find(|t| !OUT_TOPICS.contains(&t.as_str())) {
                    reply_to(
                        &writer,
                        &Reply::Error {
                            seq: None,
                            message: format!(
                                "unknown topic {bad:?}; outbound topics are {OUT_TOPICS:?}"
                            ),
                        },
                    );
                    continue;
                }
                let sub_stream = {
                    let w = reader.get_ref().try_clone()?;
                    w.set_write_timeout(Some(config.write_timeout))?;
                    w
                };
                subscribers
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Subscriber {
                        stream: sub_stream,
                        topics: topics.clone(),
                    });
                reply_to(&writer, &Reply::Subscribed { topics });
            }
            Ok(Request::Snapshot) => {
                let job = Job::Snapshot {
                    reply: Arc::clone(&writer),
                };
                queue_depth.fetch_add(1, Ordering::SeqCst);
                match tx.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        queue_depth.fetch_sub(1, Ordering::SeqCst);
                        reply_to(
                            &writer,
                            &Reply::Error {
                                seq: None,
                                message: format!(
                                    "ingress queue full (capacity {}); retry snapshot",
                                    config.queue_capacity
                                ),
                            },
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        queue_depth.fetch_sub(1, Ordering::SeqCst);
                        reply_to(
                            &writer,
                            &Reply::Error {
                                seq: None,
                                message: "service shutting down".to_string(),
                            },
                        );
                        return Ok(());
                    }
                }
            }
            Ok(Request::Publish {
                topic,
                seq,
                trace_id,
                payload,
            }) => {
                // The ingress span covers decode + enqueue on the
                // reader thread; its handle rides in the job so the
                // worker-side queue-wait/apply/publish spans parent
                // under it across the thread boundary.
                let ingress = phases::SERVICE_INGRESS.span_under(worker_root);
                match delta_from_wire(&topic, &payload) {
                    Err(e) => reply_to(
                        &writer,
                        &Reply::Error {
                            seq: Some(seq),
                            message: e.to_string(),
                        },
                    ),
                    Ok(delta) => {
                        let parent = ingress.handle().or(worker_root);
                        let job = Job::Apply {
                            seq,
                            trace_id: trace_id.clone(),
                            delta,
                            enqueued: Instant::now(),
                            parent,
                            reply: Arc::clone(&writer),
                        };
                        queue_depth.fetch_add(1, Ordering::SeqCst);
                        match tx.try_send(job) {
                            Ok(()) => {}
                            Err(TrySendError::Full(_)) => {
                                queue_depth.fetch_sub(1, Ordering::SeqCst);
                                counters::SERVICE_BUSY_REJECTIONS.add(1);
                                reply_to(
                                    &writer,
                                    &Reply::Busy {
                                        seq,
                                        trace_id,
                                        queue_capacity: config.queue_capacity,
                                    },
                                );
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                queue_depth.fetch_sub(1, Ordering::SeqCst);
                                reply_to(
                                    &writer,
                                    &Reply::Error {
                                        seq: Some(seq),
                                        message: "service shutting down".to_string(),
                                    },
                                );
                                return Ok(());
                            }
                        }
                    }
                }
            }
        }
    }
}

fn http_loop(
    listener: TcpListener,
    shutdown: &AtomicBool,
    healthy: &AtomicBool,
    deltas_applied: &AtomicU64,
    queue_depth: &AtomicU64,
    started: Instant,
    config: &ServiceConfig,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = serve_http(
                    stream,
                    healthy,
                    deltas_applied,
                    queue_depth,
                    started,
                    config,
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(config.poll_interval);
            }
            Err(_) => break,
        }
    }
}

fn serve_http(
    stream: TcpStream,
    healthy: &AtomicBool,
    deltas_applied: &AtomicU64,
    queue_depth: &AtomicU64,
    started: Instant,
    config: &ServiceConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers until the blank line; ignore their content.
    let mut header = String::new();
    loop {
        header.clear();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = match path {
        "/metrics" => {
            // The obs snapshot carries every counter/phase/histogram/
            // gauge family with HELP+TYPE headers (including the
            // `service.queue_depth` / `service.uptime_seconds` gauges
            // the worker samples). The lines below add only what obs
            // cannot know (worker health, the always-on delta count)
            // and, when the instrumentation is compiled out, the
            // queue/uptime gauges straight from the shared atomics.
            let mut body = uavnet_obs::snapshot().to_prometheus();
            body.push_str(&format!(
                "# HELP uavnet_service_healthy 1 while the solver worker is unpoisoned.\n\
                 # TYPE uavnet_service_healthy gauge\nuavnet_service_healthy {}\n\
                 # HELP uavnet_service_deltas_applied_total Deltas applied by the solver worker.\n\
                 # TYPE uavnet_service_deltas_applied_total counter\n\
                 uavnet_service_deltas_applied_total {}\n",
                u8::from(healthy.load(Ordering::SeqCst)),
                deltas_applied.load(Ordering::Relaxed),
            ));
            if !uavnet_obs::is_enabled() {
                body.push_str(&format!(
                    "# HELP uavnet_service_queue_depth Deltas waiting in the bounded ingress queue.\n\
                     # TYPE uavnet_service_queue_depth gauge\nuavnet_service_queue_depth {}\n\
                     # HELP uavnet_service_uptime_seconds Seconds since the service spawned.\n\
                     # TYPE uavnet_service_uptime_seconds gauge\nuavnet_service_uptime_seconds {}\n",
                    queue_depth.load(Ordering::SeqCst),
                    started.elapsed().as_secs(),
                ));
            }
            ("200 OK", body)
        }
        "/healthz" => {
            if healthy.load(Ordering::SeqCst) {
                ("200 OK", "ok\n".to_string())
            } else {
                (
                    "503 Service Unavailable",
                    "unhealthy: solver worker poisoned\n".to_string(),
                )
            }
        }
        _ => ("404 Not Found", "not found\n".to_string()),
    };
    let mut stream = stream;
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}
