//! Blocking client for the solver service protocol, with retrying
//! connect and backoff on typed [`Reply::Busy`] backpressure.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::proto::{delta_to_wire, DeploymentMsg, Reply, Request};
use crate::ServiceError;
use uavnet_core::{Delta, DeltaOutcome};

/// What a publish came back with: the applied outcome plus the
/// request-correlation extras the server echoes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PublishReceipt {
    /// The solver's applied-delta outcome from the ack.
    pub outcome: DeltaOutcome,
    /// The trace id echoed by the server (equals the one sent, when
    /// one was sent).
    pub trace_id: Option<String>,
    /// Round-trip time of the *acked* attempt, measured send→ack at
    /// the client (excludes busy-backoff sleeps and rejected
    /// attempts).
    pub rtt: Duration,
}

/// Timeouts and retry policy of a [`ServiceClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connect attempts before giving up (the service binds before
    /// `spawn` returns, so this mostly covers slow test machines).
    pub connect_retries: u32,
    /// Base of the exponential backoff between retries (doubles each
    /// attempt), shared by connect and busy-retry paths.
    pub backoff_base: Duration,
    /// Resend attempts when a publish gets [`Reply::Busy`] before
    /// surfacing a typed [`ServiceError::Busy`].
    pub busy_retries: u32,
    /// Socket read timeout (a reply or subscribed event must arrive
    /// within this window).
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_retries: 5,
            backoff_base: Duration::from_millis(10),
            busy_retries: 8,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// One protocol connection. Replies arrive in request order, so a
/// connection used for publishing should not also subscribe — open a
/// second client for the event stream (the server accepts any number
/// of connections).
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    config: ClientConfig,
    next_seq: u64,
}

impl ServiceClient {
    /// Connects with retry/backoff.
    ///
    /// # Errors
    ///
    /// The last socket error once every attempt is exhausted.
    pub fn connect(addr: SocketAddr, config: ClientConfig) -> Result<Self, ServiceError> {
        let mut last_err: Option<std::io::Error> = None;
        for attempt in 0..=config.connect_retries {
            if attempt > 0 {
                std::thread::sleep(config.backoff_base * (1u32 << (attempt - 1).min(10)));
            }
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(config.read_timeout))?;
                    stream.set_write_timeout(Some(config.write_timeout))?;
                    let writer = stream.try_clone()?;
                    return Ok(ServiceClient {
                        reader: BufReader::new(stream),
                        writer,
                        config,
                        next_seq: 0,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ServiceError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::other("connect failed with no attempts")
        })))
    }

    fn send(&mut self, request: &Request) -> Result<(), ServiceError> {
        let line = request.to_line();
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Reply, ServiceError> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ServiceError::Closed);
            }
            let frame = line.trim_end_matches(['\r', '\n']);
            if frame.trim().is_empty() {
                continue;
            }
            return Reply::from_line(frame);
        }
    }

    /// Publishes one delta and waits for its ack, resending with
    /// exponential backoff while the server reports
    /// [`Reply::Busy`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::Busy`] once busy retries are exhausted,
    /// [`ServiceError::Remote`] for a server-reported failure (bad
    /// payload, poisoned worker), or socket-level errors.
    pub fn publish(&mut self, delta: &Delta) -> Result<DeltaOutcome, ServiceError> {
        self.publish_traced(delta, None).map(|r| r.outcome)
    }

    /// [`publish`](Self::publish) carrying an optional `trace_id`,
    /// returning the full [`PublishReceipt`]: the outcome, the echoed
    /// trace id, and the measured ack round-trip time. The server
    /// stamps the same id on the `deployments`/`degradation` frames
    /// this delta produced, so subscribers can correlate them.
    ///
    /// # Errors
    ///
    /// As [`publish`](Self::publish).
    pub fn publish_traced(
        &mut self,
        delta: &Delta,
        trace_id: Option<&str>,
    ) -> Result<PublishReceipt, ServiceError> {
        let (topic, payload) = delta_to_wire(delta);
        let seq = self.next_seq;
        self.next_seq += 1;
        let request = Request::Publish {
            topic: topic.to_string(),
            seq,
            trace_id: trace_id.map(str::to_string),
            payload,
        };
        for attempt in 0..=self.config.busy_retries {
            if attempt > 0 {
                std::thread::sleep(self.config.backoff_base * (1u32 << (attempt - 1).min(10)));
            }
            let sent_at = Instant::now();
            self.send(&request)?;
            match self.recv()? {
                Reply::Ack {
                    seq: ack_seq,
                    trace_id: echoed,
                    outcome,
                } => {
                    if ack_seq != seq {
                        return Err(ServiceError::Protocol(format!(
                            "ack for seq {ack_seq}, expected {seq}"
                        )));
                    }
                    return Ok(PublishReceipt {
                        outcome,
                        trace_id: echoed,
                        rtt: sent_at.elapsed(),
                    });
                }
                Reply::Busy { .. } => continue,
                Reply::Error { message, .. } => return Err(ServiceError::Remote(message)),
                other => {
                    return Err(ServiceError::Protocol(format!(
                        "unexpected reply to publish: {other:?}"
                    )))
                }
            }
        }
        Err(ServiceError::Busy {
            seq,
            queue_capacity: 0,
        })
    }

    /// Like [`publish`](Self::publish) but without busy retries: one
    /// send, one reply. Lets flood tests observe raw backpressure.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Busy`] immediately when the ingress queue is
    /// full, otherwise as [`publish`](Self::publish).
    pub fn publish_once(&mut self, delta: &Delta) -> Result<DeltaOutcome, ServiceError> {
        let (topic, payload) = delta_to_wire(delta);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send(&Request::Publish {
            topic: topic.to_string(),
            seq,
            trace_id: None,
            payload,
        })?;
        match self.recv()? {
            Reply::Ack { outcome, .. } => Ok(outcome),
            Reply::Busy {
                seq,
                queue_capacity,
                ..
            } => Err(ServiceError::Busy {
                seq,
                queue_capacity,
            }),
            Reply::Error { message, .. } => Err(ServiceError::Remote(message)),
            other => Err(ServiceError::Protocol(format!(
                "unexpected reply to publish: {other:?}"
            ))),
        }
    }

    /// Subscribes this connection to outbound topics; subsequent
    /// events arrive via [`next_event`](Self::next_event).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Remote`] for unknown topics.
    pub fn subscribe(&mut self, topics: &[&str]) -> Result<(), ServiceError> {
        self.send(&Request::Subscribe {
            topics: topics.iter().map(|t| t.to_string()).collect(),
        })?;
        match self.recv()? {
            Reply::Subscribed { .. } => Ok(()),
            Reply::Error { message, .. } => Err(ServiceError::Remote(message)),
            other => Err(ServiceError::Protocol(format!(
                "unexpected reply to subscribe: {other:?}"
            ))),
        }
    }

    /// Blocks (up to the read timeout) for the next published event
    /// on this subscribed connection.
    ///
    /// # Errors
    ///
    /// Socket errors, [`ServiceError::Closed`] on EOF, or a protocol
    /// error for an undecodable frame.
    pub fn next_event(&mut self) -> Result<Reply, ServiceError> {
        self.recv()
    }

    /// Requests the current deployment snapshot.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Remote`] when the worker is poisoned or the
    /// ingress queue is full.
    pub fn snapshot(&mut self) -> Result<DeploymentMsg, ServiceError> {
        self.send(&Request::Snapshot)?;
        match self.recv()? {
            Reply::Deployment(msg) => Ok(msg),
            Reply::Error { message, .. } => Err(ServiceError::Remote(message)),
            other => Err(ServiceError::Protocol(format!(
                "unexpected reply to snapshot: {other:?}"
            ))),
        }
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Socket errors or an unexpected reply.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Reply::Pong => Ok(()),
            other => Err(ServiceError::Protocol(format!(
                "unexpected reply to ping: {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down gracefully (drain, final
    /// snapshot, exit).
    ///
    /// # Errors
    ///
    /// Socket errors or an unexpected reply.
    pub fn shutdown_server(&mut self) -> Result<(), ServiceError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Reply::ShuttingDown => Ok(()),
            other => Err(ServiceError::Protocol(format!(
                "unexpected reply to shutdown: {other:?}"
            ))),
        }
    }
}
