//! Long-running solver service: a pub/sub process boundary around the
//! incremental [`SolverLoop`](uavnet_core::SolverLoop).
//!
//! The paper's disaster scenario is online — users move, UAVs die,
//! links sever — and the incremental engine absorbs those deltas at
//! memory speed. This crate makes it reachable as a standing process:
//!
//! * **Framing** — newline-delimited JSON over TCP ([`proto`]); one
//!   [`uavnet_json::Json`] value per line.
//! * **Topic registry** — `deltas/*` inbound (mobility, kill, sever,
//!   surge), `deployments` + `degradation` outbound.
//! * **Subscriber loop** — per-connection reader threads decode typed
//!   [`Delta`](uavnet_core::Delta) streams into a bounded ingress
//!   queue feeding the single solver worker.
//! * **Publisher** — after every absorbed delta the worker publishes
//!   the deployment diff (plus full placements) to `deployments`
//!   subscribers, and a numeric degradation report to `degradation`
//!   subscribers whenever coverage was lost or a repair spent relays.
//! * **Robustness** — the ingress queue is bounded and overflow gets
//!   a typed [`Reply::Busy`](proto::Reply::Busy) (memory never grows
//!   with a flooding client); connections run under read/write
//!   timeouts; [`ServiceClient`](client::ServiceClient) retries with
//!   exponential backoff; graceful shutdown drains in-flight deltas
//!   and publishes a final snapshot; a worker panic is contained as a
//!   typed [`ServiceError::WorkerPanicked`] that poisons the solver
//!   (subsequent publishes get typed errors, `/healthz` flips to 503)
//!   instead of killing the process.
//! * **Telemetry** — a hand-rolled HTTP/1.1 endpoint serves
//!   `MetricsSnapshot::to_prometheus` on `/metrics` and loop liveness
//!   on `/healthz`.
//!
//! Zero external dependencies: framing reuses the workspace's
//! `uavnet-json` reader/writer, threading is `std` only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, PublishReceipt, ServiceClient};
pub use proto::{DegradationMsg, DeploymentMsg, Reply, Request};
pub use server::{ServiceConfig, ServiceHandle, ServiceSummary, SolverService};

use uavnet_core::CoreError;

/// Typed failure surface of the service boundary.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// Socket-level failure (bind, accept, read, write, connect).
    Io(std::io::Error),
    /// A frame violated the wire protocol.
    Protocol(String),
    /// The bounded ingress queue stayed full through every retry.
    Busy {
        /// Sequence number of the rejected publish.
        seq: u64,
        /// The exhausted queue capacity.
        queue_capacity: usize,
    },
    /// The server reported a request failure.
    Remote(String),
    /// The solver worker panicked; the loop state is poisoned and
    /// subsequent deltas are refused until restart.
    WorkerPanicked(String),
    /// A solver error surfaced through the service boundary.
    Core(CoreError),
    /// The obs session could not be attached.
    Session(uavnet_obs::SessionError),
    /// The connection closed before a complete reply arrived.
    Closed,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "socket error: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::Busy {
                seq,
                queue_capacity,
            } => write!(
                f,
                "ingress queue full (capacity {queue_capacity}) for publish seq {seq}"
            ),
            ServiceError::Remote(m) => write!(f, "server error: {m}"),
            ServiceError::WorkerPanicked(m) => write!(f, "solver worker panicked: {m}"),
            ServiceError::Core(e) => write!(f, "solver error: {e}"),
            ServiceError::Session(e) => write!(f, "obs session error: {e}"),
            ServiceError::Closed => write!(f, "connection closed mid-reply"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            ServiceError::Core(e) => Some(e),
            ServiceError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

impl From<uavnet_obs::SessionError> for ServiceError {
    fn from(e: uavnet_obs::SessionError) -> Self {
        ServiceError::Session(e)
    }
}
