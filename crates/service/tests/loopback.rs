//! Loopback integration: a real TCP round trip through the service
//! must be observationally identical to driving the incremental
//! [`SolverLoop`] in-process, plus the robustness guarantees —
//! bounded-queue backpressure, graceful drain with a final snapshot,
//! worker-panic containment, and live HTTP telemetry.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use uavnet_channel::UavRadio;
use uavnet_core::{ApproxConfig, Delta, Instance, LoopConfig, SolverLoop, User};
use uavnet_geom::{AreaSpec, GridSpec, Point2};
use uavnet_service::{
    proto::{Request, TOPIC_DEGRADATION, TOPIC_DEPLOYMENTS},
    ClientConfig, Reply, ServiceClient, ServiceConfig, ServiceError, SolverService,
};

/// Same shape as the incremental engine's own fixture: a 5×5 grid
/// with two user clusters and a 6-UAV fleet, roomy enough for kills,
/// surges and moves to all change coverage.
fn build_instance() -> Instance {
    let grid = GridSpec::new(
        AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
        300.0,
        300.0,
    )
    .unwrap()
    .build();
    let mut b = Instance::builder(grid, 450.0);
    for i in 0..8 {
        b.add_user(Point2::new(150.0 + 20.0 * i as f64, 150.0), 2_000.0);
    }
    for i in 0..8 {
        b.add_user(Point2::new(1_200.0 + 10.0 * i as f64, 1_200.0), 2_000.0);
    }
    for _ in 0..4 {
        b.add_uav(4, UavRadio::new(30.0, 5.0, 400.0));
    }
    for _ in 0..2 {
        b.add_uav(6, UavRadio::new(33.0, 6.0, 500.0));
    }
    b.build().unwrap()
}

fn loop_config() -> LoopConfig {
    let mut cfg = LoopConfig::new(ApproxConfig::with_s(1));
    cfg.tile_cells = 2;
    cfg
}

/// The delta stream replayed in the bit-identity test: mobility,
/// a kill, and a surge.
fn delta_stream(first_uav: usize) -> Vec<Delta> {
    vec![
        Delta::UserMoved(vec![
            (0, Point2::new(700.0, 700.0)),
            (3, Point2::new(160.0, 1_250.0)),
        ]),
        Delta::KillUavs(vec![first_uav]),
        Delta::UserSurge(
            (0..3)
                .map(|i| User {
                    pos: Point2::new(200.0 + i as f64, 160.0),
                    min_rate_bps: 2_000.0,
                })
                .collect(),
        ),
        Delta::UserMoved(vec![(10, Point2::new(400.0, 420.0))]),
    ]
}

fn client(addr: SocketAddr) -> ServiceClient {
    ServiceClient::connect(addr, ClientConfig::default()).expect("connect")
}

/// Minimal HTTP GET against the telemetry endpoint; returns the
/// status line and the body.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read http response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("http header terminator");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

#[test]
fn loopback_stream_is_bit_identical_to_in_process_solver() {
    let instance = build_instance();
    let mut twin = SolverLoop::new(instance.clone(), loop_config()).expect("in-process twin");
    let handle = SolverService::spawn(instance, loop_config(), ServiceConfig::default())
        .expect("spawn service");

    let mut subscriber = client(handle.addr());
    subscriber
        .subscribe(&[TOPIC_DEPLOYMENTS, TOPIC_DEGRADATION])
        .expect("subscribe");

    let mut publisher = client(handle.addr());
    publisher.ping().expect("ping");

    // The service cold-solved the same instance with the same config,
    // so before any delta the snapshot must already coincide.
    let seed = publisher.snapshot().expect("seed snapshot");
    assert_eq!(seed.epoch, 0);
    assert_eq!(seed.placements, twin.placements().to_vec());
    assert_eq!(seed.served, twin.served_users());

    let first_uav = twin.placements()[0].0;
    let mut degradations = 0;
    for (i, delta) in delta_stream(first_uav).into_iter().enumerate() {
        let served_before = twin.served_users();
        let remote = publisher.publish(&delta).expect("publish delta");
        let local = twin.apply(delta).expect("twin apply");
        assert_eq!(remote.served, local.served, "delta {i}: served");
        assert_eq!(
            remote.dirty_tiles, local.dirty_tiles,
            "delta {i}: dirty tiles"
        );
        assert_eq!(
            remote.stations_refreshed, local.stations_refreshed,
            "delta {i}: stations refreshed"
        );
        assert_eq!(
            remote.dropped_placements, local.dropped_placements,
            "delta {i}: dropped placements"
        );
        assert_eq!(remote.cold_solved, local.cold_solved, "delta {i}: cold");

        // Each absorbed delta is published to subscribers; the server
        // emits a degradation report exactly when the outcome shows
        // lost coverage or repair spend, so the expectation is
        // computable from the acked outcome itself.
        let event = subscriber.next_event().expect("deployment event");
        let Reply::Deployment(dep) = event else {
            panic!("expected deployment event, got {event:?}");
        };
        assert_eq!(dep.epoch as usize, i + 1);
        assert_eq!(dep.placements, twin.placements().to_vec(), "delta {i}");
        assert_eq!(dep.served, twin.served_users());
        let expect_degradation = remote.served < served_before
            || remote.dropped_placements > 0
            || remote.relays_spent > 0
            || remote.cold_solved;
        if expect_degradation {
            match subscriber.next_event().expect("degradation event") {
                Reply::Degradation(d) => {
                    degradations += 1;
                    assert_eq!(d.epoch, dep.epoch);
                    assert_eq!(d.served_before, served_before);
                    assert_eq!(d.served_after, dep.served);
                }
                other => panic!("expected degradation event, got {other:?}"),
            }
        }
    }
    assert!(
        degradations > 0,
        "killing a placed UAV must produce at least one degradation report"
    );

    // Oracle 7 on the in-process twin: incremental result equals a
    // cold rescore of the same survivor state. (Under debug-validate
    // the server ran the same oracle inline after every apply.)
    let cold = twin.cold_rescore().expect("cold rescore");
    assert_eq!(twin.served_users(), cold.served_users());

    // Final bit-identity of the full placement vector over the wire.
    let snap = publisher.snapshot().expect("final snapshot");
    assert_eq!(snap.placements, twin.placements().to_vec());
    assert_eq!(snap.served, twin.served_users());

    let summary = handle.shutdown_and_join().expect("summary");
    assert_eq!(summary.epochs, 4);
    assert_eq!(summary.placements, twin.placements().to_vec());
    assert!(summary.worker_panic.is_none());
}

#[test]
fn subscriber_diffs_replay_onto_previous_deployment() {
    let instance = build_instance();
    let handle = SolverService::spawn(instance, loop_config(), ServiceConfig::default())
        .expect("spawn service");

    let mut subscriber = client(handle.addr());
    subscriber
        .subscribe(&[TOPIC_DEPLOYMENTS])
        .expect("subscribe");
    let mut publisher = client(handle.addr());

    let mut prev = publisher.snapshot().expect("seed").placements;
    let first_uav = prev[0].0;
    for delta in delta_stream(first_uav) {
        publisher.publish(&delta).expect("publish");
        let Reply::Deployment(dep) = subscriber.next_event().expect("event") else {
            panic!("expected deployment");
        };
        let mut replayed: Vec<(usize, usize)> = prev
            .iter()
            .copied()
            .filter(|p| !dep.removed.contains(p))
            .chain(dep.added.iter().copied())
            .collect();
        replayed.sort_unstable();
        let mut full = dep.placements.clone();
        full.sort_unstable();
        assert_eq!(replayed, full, "diff must replay onto previous deployment");
        prev = dep.placements;
    }
    handle.shutdown_and_join().expect("summary");
}

#[test]
fn flood_gets_typed_busy_and_queue_stays_bounded() {
    let instance = build_instance();
    let config = ServiceConfig {
        queue_capacity: 2,
        apply_delay: Duration::from_millis(30),
        ..ServiceConfig::default()
    };
    let handle = SolverService::spawn(instance, loop_config(), config).expect("spawn service");

    // Flood 24 mobility frames down one connection without reading
    // replies: the reader must answer from the bounded queue only —
    // acks for what fit, typed Busy for the overflow — never buffer.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let total = 24u64;
    for seq in 0..total {
        let req = Request::Publish {
            topic: "deltas/mobility".to_string(),
            seq,
            trace_id: None,
            payload: uavnet_json::Json::parse(r#"{"moves":[[0,710.0,690.0]]}"#).unwrap(),
        };
        stream.write_all(req.to_line().as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }
    stream.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let mut acks = 0u64;
    let mut busys = 0u64;
    let mut line = String::new();
    for _ in 0..total {
        line.clear();
        reader.read_line(&mut line).expect("read reply");
        match Reply::from_line(line.trim_end()).expect("decode reply") {
            Reply::Ack { .. } => acks += 1,
            Reply::Busy { queue_capacity, .. } => {
                busys += 1;
                assert_eq!(queue_capacity, 2, "busy reports the bounded capacity");
            }
            other => panic!("unexpected flood reply: {other:?}"),
        }
    }
    assert_eq!(acks + busys, total);
    assert!(
        busys > 0,
        "a 30ms-per-apply worker behind a 2-slot queue must shed load"
    );
    assert!(acks > 0, "queued deltas still get applied and acked");

    // After the flood drains, a retrying client gets through: the
    // service degraded politely instead of dying or buffering.
    let mut retry = client(handle.addr());
    retry
        .publish(&Delta::UserMoved(vec![(1, Point2::new(500.0, 500.0))]))
        .expect("publish after flood");

    let summary = handle.shutdown_and_join().expect("summary");
    assert_eq!(summary.epochs, acks + 1);
    assert!(summary.worker_panic.is_none());
}

#[test]
fn graceful_shutdown_drains_in_flight_deltas_and_publishes_final_snapshot() {
    let instance = build_instance();
    let config = ServiceConfig {
        apply_delay: Duration::from_millis(10),
        ..ServiceConfig::default()
    };
    let handle = SolverService::spawn(instance, loop_config(), config).expect("spawn service");

    let mut subscriber = client(handle.addr());
    subscriber
        .subscribe(&[TOPIC_DEPLOYMENTS])
        .expect("subscribe");

    // Enqueue 5 deltas and the shutdown request back-to-back without
    // waiting for acks: all five are in flight when shutdown lands,
    // and the drain contract says every one must still be applied.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let total = 5u64;
    for seq in 0..total {
        let req = Request::Publish {
            topic: "deltas/mobility".to_string(),
            seq,
            trace_id: None,
            payload: uavnet_json::Json::parse(&format!(
                r#"{{"moves":[[{seq},700.0,{}]]}}"#,
                650.0 + seq as f64
            ))
            .unwrap(),
        };
        stream.write_all(req.to_line().as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
    }
    stream
        .write_all((Request::Shutdown.to_line() + "\n").as_bytes())
        .unwrap();
    stream.flush().unwrap();

    // The publisher connection sees every ack plus the shutdown
    // confirmation (order between the two writers is unspecified).
    let mut reader = BufReader::new(stream);
    let mut acks = 0u64;
    let mut shutting_down = false;
    let mut line = String::new();
    while acks < total || !shutting_down {
        line.clear();
        reader.read_line(&mut line).expect("read reply");
        match Reply::from_line(line.trim_end()).expect("decode reply") {
            Reply::Ack { .. } => acks += 1,
            Reply::ShuttingDown => shutting_down = true,
            other => panic!("unexpected reply during drain: {other:?}"),
        }
    }

    // The subscriber sees all five deployments, then the final
    // snapshot marked `is_final`.
    let mut finals = 0;
    let mut epochs_seen = 0u64;
    loop {
        let Reply::Deployment(dep) = subscriber.next_event().expect("event") else {
            panic!("expected deployment");
        };
        if dep.is_final {
            finals += 1;
            assert_eq!(dep.epoch, total, "final snapshot carries the last epoch");
            break;
        }
        epochs_seen += 1;
        assert_eq!(dep.epoch, epochs_seen);
    }
    assert_eq!(epochs_seen, total);
    assert_eq!(finals, 1);

    let summary = handle.shutdown_and_join().expect("summary");
    assert_eq!(summary.epochs, total);
}

#[test]
fn worker_panic_is_contained_and_poisons_the_loop() {
    let instance = build_instance();
    let config = ServiceConfig {
        inject_panic_on_seq: Some(1),
        ..ServiceConfig::default()
    };
    let handle = SolverService::spawn(instance, loop_config(), config).expect("spawn service");

    let mut publisher = client(handle.addr());
    let move_delta = Delta::UserMoved(vec![(0, Point2::new(710.0, 690.0))]);
    publisher.publish(&move_delta).expect("seq 0 applies");
    assert!(handle.is_healthy());

    // Seq 1 panics inside the worker; the client gets a typed remote
    // error, not a hang or a dropped connection.
    let err = publisher.publish(&move_delta).expect_err("seq 1 panics");
    match err {
        ServiceError::Remote(m) => assert!(m.contains("panicked"), "got: {m}"),
        other => panic!("expected remote error, got {other:?}"),
    }
    assert!(!handle.is_healthy(), "panic flips liveness");

    // The loop is poisoned: further deltas and snapshots are refused
    // with typed errors, the connection and process stay up.
    let err = publisher.publish(&move_delta).expect_err("poisoned");
    match err {
        ServiceError::Remote(m) => assert!(m.contains("poisoned"), "got: {m}"),
        other => panic!("expected remote error, got {other:?}"),
    }
    let err = publisher.snapshot().expect_err("snapshot refused");
    assert!(matches!(err, ServiceError::Remote(_)));

    // Telemetry reflects the poisoning: /healthz 503, /metrics live.
    let (status, body) = http_get(handle.http_addr(), "/healthz");
    assert!(status.contains("503"), "got: {status}");
    assert!(body.contains("unhealthy"));
    let (status, body) = http_get(handle.http_addr(), "/metrics");
    assert!(status.contains("200"));
    assert!(body.contains("uavnet_service_healthy 0"));
    assert!(body.contains("uavnet_service_deltas_applied_total 1"));

    let summary = handle.shutdown_and_join().expect("summary");
    assert_eq!(summary.epochs, 1);
    assert!(summary
        .worker_panic
        .as_deref()
        .is_some_and(|m| m.contains("injected")));
}

/// The obs session is process-global, so the tests that record one
/// must serialize against each other.
static OBS_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn http_endpoint_serves_metrics_health_and_404() {
    let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let instance = build_instance();
    // Record an obs session when the instrumentation is compiled in,
    // so /metrics carries live resolve.* counters.
    let record_obs = uavnet_obs::is_enabled();
    let config = ServiceConfig {
        record_obs,
        ..ServiceConfig::default()
    };
    let handle = SolverService::spawn(instance, loop_config(), config).expect("spawn service");

    let (status, body) = http_get(handle.http_addr(), "/healthz");
    assert!(status.contains("200"), "got: {status}");
    assert_eq!(body, "ok\n");

    let mut publisher = client(handle.addr());
    publisher
        .publish(&Delta::UserMoved(vec![(0, Point2::new(710.0, 690.0))]))
        .expect("publish");

    let (status, body) = http_get(handle.http_addr(), "/metrics");
    assert!(status.contains("200"));
    assert!(body.contains("uavnet_service_healthy 1"));
    assert!(body.contains("uavnet_service_deltas_applied_total 1"));
    if record_obs {
        assert!(
            body.contains("uavnet_resolve_deltas_total"),
            "live resolve counters must be scrapeable:\n{body}"
        );
    }

    let (status, _) = http_get(handle.http_addr(), "/nope");
    assert!(status.contains("404"), "got: {status}");

    let summary = handle.shutdown_and_join().expect("summary");
    assert_eq!(summary.epochs, 1);
    if record_obs {
        assert!(
            summary.metrics.is_some(),
            "recorded session yields a snapshot"
        );
    }
}

#[test]
fn trace_id_round_trips_and_span_tree_is_single_rooted() {
    let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let record_obs = uavnet_obs::is_enabled();
    // Clear any events a previous recorded session left buffered.
    let _ = uavnet_obs::drain_events();

    let instance = build_instance();
    let config = ServiceConfig {
        record_obs,
        ..ServiceConfig::default()
    };
    let handle = SolverService::spawn(instance, loop_config(), config).expect("spawn service");

    let mut subscriber = client(handle.addr());
    subscriber
        .subscribe(&[TOPIC_DEPLOYMENTS, TOPIC_DEGRADATION])
        .expect("subscribe");
    let mut publisher = client(handle.addr());

    // A traced publish echoes the id on the ack and stamps it on the
    // correlated deployment frame.
    let receipt = publisher
        .publish_traced(
            &Delta::UserMoved(vec![(0, Point2::new(710.0, 690.0))]),
            Some("req-42"),
        )
        .expect("traced publish");
    assert_eq!(receipt.trace_id.as_deref(), Some("req-42"));
    assert!(receipt.rtt > Duration::ZERO, "rtt is measured");
    let Reply::Deployment(dep) = subscriber.next_event().expect("event") else {
        panic!("expected deployment");
    };
    assert_eq!(dep.trace_id.as_deref(), Some("req-42"));

    // An untraced publish stays untraced end to end.
    let receipt = publisher
        .publish_traced(
            &Delta::UserMoved(vec![(1, Point2::new(500.0, 510.0))]),
            None,
        )
        .expect("untraced publish");
    assert_eq!(receipt.trace_id, None);
    let Reply::Deployment(dep) = subscriber.next_event().expect("event") else {
        panic!("expected deployment");
    };
    assert_eq!(dep.trace_id, None);

    let kill_target = dep.placements[0].0;
    let receipt = publisher
        .publish_traced(&Delta::KillUavs(vec![kill_target]), Some("req-kill"))
        .expect("traced kill");
    assert_eq!(receipt.trace_id.as_deref(), Some("req-kill"));
    // The kill's deployment *and* degradation frames carry the id.
    let Reply::Deployment(dep) = subscriber.next_event().expect("event") else {
        panic!("expected deployment");
    };
    assert_eq!(dep.trace_id.as_deref(), Some("req-kill"));
    let Reply::Degradation(deg) = subscriber.next_event().expect("degradation") else {
        panic!("expected degradation");
    };
    assert_eq!(deg.trace_id.as_deref(), Some("req-kill"));

    let summary = handle.shutdown_and_join().expect("summary");
    assert_eq!(summary.epochs, 3);

    if record_obs {
        // The recorded span tree must be single-rooted at
        // `service.worker`, with every cross-thread per-delta span
        // (ingress on the reader, queue-wait/apply/publish on the
        // worker) attached below it, ids parent-before-child.
        let events = uavnet_obs::drain_events();
        let spans: Vec<(&'static str, u64, Option<u64>)> = events
            .iter()
            .filter_map(|e| match e.kind {
                uavnet_obs::EventKind::Span {
                    name,
                    id,
                    parent_id,
                    ..
                } => Some((name, id, parent_id)),
                _ => None,
            })
            .collect();
        let roots: Vec<_> = spans.iter().filter(|s| s.2.is_none()).collect();
        assert_eq!(roots.len(), 1, "single root, got {roots:?}");
        assert_eq!(roots[0].0, "service.worker");
        for stage in [
            "service.ingress",
            "service.queue_wait",
            "service.apply",
            "service.publish",
            "resolve.apply",
        ] {
            assert!(
                spans.iter().any(|s| s.0 == stage && s.2.is_some()),
                "stage {stage} must appear as a parented span: {spans:?}"
            );
        }
        for (name, id, parent) in &spans {
            if let Some(p) = parent {
                assert!(p < id, "parent id precedes child ({name})");
            }
        }
    }
}
