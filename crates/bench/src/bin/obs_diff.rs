//! Snapshot-diff regression gate over `uavnet-obs` metric snapshots
//! (`sweep_report --obs-metrics` / `service_report --obs-metrics`
//! output), generalized to a per-scale baseline matrix: any number of
//! BASELINE CURRENT pairs is compared in one invocation and any
//! failing pair fails the run.
//!
//! Compares each CURRENT against its BASELINE and exits nonzero when
//! a gated metric drifted beyond its relative tolerance. Gated by
//! default are the *deterministic* metrics — counters, phase
//! invocation counts, and histogram sample counts — which for a
//! pinned scenario and pinned CLI flags are exact integers
//! independent of machine speed and thread count; any drift means the
//! algorithm's work profile changed, which is exactly what the gate
//! exists to catch (an intentional change regenerates the committed
//! baseline). Failure counters (`*.failures`, `*.panics`) are
//! special-cased: any increase fails regardless of tolerance.
//! Wall-clock-dependent counters (`service.slow_deltas`, which
//! compares elapsed time against a threshold) are excluded from the
//! deterministic gate entirely. Timing metrics (`*_ns` totals,
//! self-times, percentiles) are machine-dependent and only compared
//! under `--timings`, with their own looser tolerance.
//!
//! Usage:
//!
//! ```text
//! obs_diff BASELINE.json CURRENT.json [BASELINE2.json CURRENT2.json]...
//!          [--tol REL]              # default drift tolerance (default 0.10)
//!          [--tol-metric NAME=REL]  # per-metric override, repeatable
//!          [--timings]              # also gate timing metrics
//!          [--timing-tol REL]       # tolerance for --timings (default 0.50)
//!          [--strict-provenance]    # fail on instance-fingerprint mismatch
//! ```
//!
//! Exit codes: 0 pass, 1 regression, 2 usage/parse error.

use std::collections::BTreeMap;
use std::process::ExitCode;

use uavnet_bench::json::Json;

struct Options {
    /// (baseline, current) snapshot pairs, gated independently.
    pairs: Vec<(String, String)>,
    tol: f64,
    per_metric: BTreeMap<String, f64>,
    timings: bool,
    timing_tol: f64,
    strict_provenance: bool,
}

#[derive(PartialEq)]
enum Status {
    Ok,
    Fail,
    Note,
}

struct Row {
    name: String,
    base: Option<f64>,
    cur: Option<f64>,
    status: Status,
    note: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: obs_diff BASELINE.json CURRENT.json [BASELINE2.json CURRENT2.json]... \
         [--tol REL] [--tol-metric NAME=REL]... \
         [--timings] [--timing-tol REL] [--strict-provenance]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut positional = Vec::new();
    let mut opts = Options {
        pairs: Vec::new(),
        tol: 0.10,
        per_metric: BTreeMap::new(),
        timings: false,
        timing_tol: 0.50,
        strict_provenance: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("obs_diff: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--tol" => {
                opts.tol = value("--tol").parse().unwrap_or_else(|_| usage());
            }
            "--tol-metric" => {
                let spec = value("--tol-metric");
                let Some((name, rel)) = spec.split_once('=') else {
                    eprintln!("obs_diff: --tol-metric wants NAME=REL, got {spec:?}");
                    usage();
                };
                let rel: f64 = rel.parse().unwrap_or_else(|_| usage());
                opts.per_metric.insert(name.to_string(), rel);
            }
            "--timings" => opts.timings = true,
            "--timing-tol" => {
                opts.timing_tol = value("--timing-tol").parse().unwrap_or_else(|_| usage());
            }
            "--strict-provenance" => opts.strict_provenance = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("obs_diff: unknown flag {other:?}");
                usage();
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.is_empty() || positional.len() % 2 != 0 {
        usage();
    }
    let mut it = positional.into_iter();
    while let (Some(b), Some(c)) = (it.next(), it.next()) {
        opts.pairs.push((b, c));
    }
    opts
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("obs_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("obs_diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    match doc.get("schema").and_then(Json::as_str) {
        Some("uavnet-obs/1" | "uavnet-obs/2" | "uavnet-obs/3") => doc,
        Some(other) => {
            eprintln!("obs_diff: {path} has unsupported schema {other:?}");
            std::process::exit(2);
        }
        None => {
            eprintln!("obs_diff: {path} has no \"schema\" field — not an obs snapshot");
            std::process::exit(2);
        }
    }
}

/// Counters whose value depends on wall-clock time, not on the work
/// profile — excluded from the deterministic gate.
const TIMING_DEPENDENT_COUNTERS: &[&str] = &["service.slow_deltas"];

/// Flattens the gated (deterministic) metrics of a snapshot:
/// `counters.*`, `phases.<name>.count`, `hists.<name>.count`.
fn gated_metrics(doc: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    if let Some(counters) = doc.get("counters").and_then(Json::as_obj) {
        for (name, v) in counters {
            if TIMING_DEPENDENT_COUNTERS.contains(&name.as_str()) {
                continue;
            }
            if let Some(n) = v.as_f64() {
                out.insert(name.clone(), n);
            }
        }
    }
    for (section, field) in [("phases", "count"), ("hists", "count")] {
        if let Some(obj) = doc.get(section).and_then(Json::as_obj) {
            for (name, v) in obj {
                if let Some(n) = v.get(field).and_then(Json::as_f64) {
                    out.insert(format!("{section}.{name}.{field}"), n);
                }
            }
        }
    }
    out
}

/// Flattens the timing metrics: `phases.<name>.{total_ns,self_ns,
/// p50_ns,p90_ns,p99_ns,max_ns}` and the same percentiles on hists.
fn timing_metrics(doc: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for section in ["phases", "hists"] {
        if let Some(obj) = doc.get(section).and_then(Json::as_obj) {
            for (name, v) in obj {
                if let Some(fields) = v.as_obj() {
                    for (field, fv) in fields {
                        if field.ends_with("_ns") {
                            if let Some(n) = fv.as_f64() {
                                out.insert(format!("{section}.{name}.{field}"), n);
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

fn is_failure_counter(name: &str) -> bool {
    name.ends_with(".failures") || name.ends_with(".panics") || name.contains("poisoned")
}

fn rel_change(base: f64, cur: f64) -> f64 {
    (cur - base) / base.abs().max(1.0)
}

fn compare(
    base: &BTreeMap<String, f64>,
    cur: &BTreeMap<String, f64>,
    opts: &Options,
    default_tol: f64,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, &b) in base {
        let tol = *opts.per_metric.get(name).unwrap_or(&default_tol);
        match cur.get(name) {
            None => rows.push(Row {
                name: name.clone(),
                base: Some(b),
                cur: None,
                status: Status::Fail,
                note: "metric disappeared".into(),
            }),
            Some(&c) => {
                let drift = rel_change(b, c);
                let (status, note) = if is_failure_counter(name) {
                    if c > b {
                        (Status::Fail, format!("failure counter rose {b} -> {c}"))
                    } else {
                        (Status::Ok, String::new())
                    }
                } else if drift.abs() > tol {
                    (
                        Status::Fail,
                        format!("drift {:+.1}% exceeds ±{:.1}%", drift * 100.0, tol * 100.0),
                    )
                } else {
                    (Status::Ok, String::new())
                };
                rows.push(Row {
                    name: name.clone(),
                    base: Some(b),
                    cur: Some(c),
                    status,
                    note,
                });
            }
        }
    }
    for (name, &c) in cur {
        if !base.contains_key(name) {
            rows.push(Row {
                name: name.clone(),
                base: None,
                cur: Some(c),
                status: Status::Note,
                note: "new metric (not in baseline)".into(),
            });
        }
    }
    rows
}

fn fmt_value(v: Option<f64>) -> String {
    match v {
        None => "-".into(),
        Some(v) if v.fract() == 0.0 && v.abs() < 1e15 => format!("{}", v as i64),
        Some(v) => format!("{v:.3}"),
    }
}

fn print_rows(rows: &[Row]) {
    for r in rows {
        let delta = match (r.base, r.cur) {
            (Some(b), Some(c)) => format!("{:+.2}%", rel_change(b, c) * 100.0),
            _ => "-".into(),
        };
        let mark = match r.status {
            Status::Ok => "ok  ",
            Status::Fail => "FAIL",
            Status::Note => "note",
        };
        println!(
            "{mark}  {:<40} {:>14} {:>14} {:>9}  {}",
            r.name,
            fmt_value(r.base),
            fmt_value(r.cur),
            delta,
            r.note
        );
    }
}

fn provenance_line(doc: &Json) -> String {
    match doc.get("provenance") {
        None => "(v1 snapshot, no provenance)".into(),
        Some(p) => format!(
            "git {} features [{}] threads {} instance {}",
            p.get("git_sha").and_then(Json::as_str).unwrap_or("?"),
            p.get("features").and_then(Json::as_str).unwrap_or(""),
            fmt_value(p.get("threads").and_then(Json::as_f64)),
            p.get("instance_fingerprint")
                .and_then(Json::as_str)
                .unwrap_or("?"),
        ),
    }
}

fn fingerprint(doc: &Json) -> Option<String> {
    doc.get("provenance")?
        .get("instance_fingerprint")?
        .as_str()
        .map(str::to_string)
}

/// Gates one BASELINE/CURRENT pair; returns whether it failed.
fn diff_pair(baseline: &str, current: &str, opts: &Options) -> bool {
    let base_doc = load(baseline);
    let cur_doc = load(current);

    println!("baseline: {baseline}");
    println!("          {}", provenance_line(&base_doc));
    println!("current:  {current}");
    println!("          {}", provenance_line(&cur_doc));
    println!();

    let mut failed = false;
    if let (Some(bf), Some(cf)) = (fingerprint(&base_doc), fingerprint(&cur_doc)) {
        if bf != cf {
            if opts.strict_provenance {
                println!("FAIL  instance fingerprint mismatch: {bf} vs {cf}");
                failed = true;
            } else {
                println!(
                    "note  instance fingerprint mismatch ({bf} vs {cf}): \
                     the runs measured different instances, counter drift is expected"
                );
            }
            println!();
        }
    }

    let rows = compare(
        &gated_metrics(&base_doc),
        &gated_metrics(&cur_doc),
        opts,
        opts.tol,
    );
    println!(
        "deterministic metrics (gated, tol {:.0}%):",
        opts.tol * 100.0
    );
    print_rows(&rows);
    failed |= rows.iter().any(|r| r.status == Status::Fail);

    if opts.timings {
        let rows = compare(
            &timing_metrics(&base_doc),
            &timing_metrics(&cur_doc),
            opts,
            opts.timing_tol,
        );
        println!();
        println!(
            "timing metrics (gated by --timings, tol {:.0}%):",
            opts.timing_tol * 100.0
        );
        print_rows(&rows);
        failed |= rows.iter().any(|r| r.status == Status::Fail);
    }
    failed
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut failed_pairs = Vec::new();
    for (i, (baseline, current)) in opts.pairs.iter().enumerate() {
        if opts.pairs.len() > 1 {
            println!("=== pair {}/{} ===", i + 1, opts.pairs.len());
        }
        if diff_pair(baseline, current, &opts) {
            failed_pairs.push(current.clone());
        }
        println!();
    }
    if !failed_pairs.is_empty() {
        println!(
            "obs_diff: REGRESSION — gated metrics drifted beyond tolerance in {}",
            failed_pairs.join(", ")
        );
        ExitCode::from(1)
    } else {
        println!("obs_diff: ok ({} pair(s))", opts.pairs.len());
        ExitCode::SUCCESS
    }
}
