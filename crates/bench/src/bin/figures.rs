//! Regenerates the paper's evaluation figures as text tables.
//!
//! ```text
//! figures [fig4|fig5|fig6a|fig6b|ablate|all]
//!         [--quick|--laptop|--paper] [--threads N] [--trials T] [--out DIR]
//! ```
//!
//! Defaults: `all --laptop --threads <cores>`. See EXPERIMENTS.md for
//! the paper-vs-measured comparison of each table.

use std::process::ExitCode;
use uavnet_bench::{
    ablation, fig4, fig5, fig6, render_ablation_table, render_csv, render_served_table,
    render_time_table, Scale,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = Scale::laptop();
    let mut threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut trials_override: Option<usize> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "fig4" | "fig5" | "fig6a" | "fig6b" | "ablate" | "all" => which = arg.clone(),
            "--quick" => scale = Scale::quick(),
            "--laptop" => scale = Scale::laptop(),
            "--paper" => scale = Scale::paper(),
            "--out" => match it.next() {
                Some(dir) => out_dir = Some(dir.into()),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => threads = t,
                None => {
                    eprintln!("--threads needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--trials" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => trials_override = Some(t),
                None => {
                    eprintln!("--trials needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: figures [fig4|fig5|fig6a|fig6b|ablate|all] \
                     [--quick|--laptop|--paper] [--threads N] [--trials T] [--out DIR]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(t) = trials_override {
        scale.trials = t.max(1);
    }
    println!(
        "# uavnet evaluation — scale: {} (cell {:.0} m, n ≤ {}, K ≤ {}), {} threads\n",
        scale.name,
        scale.cell_m,
        scale.n_max(),
        scale.k_max(),
        threads
    );

    let dump = |name: &str, csv: String| {
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).expect("create --out dir");
            std::fs::write(dir.join(format!("{name}.csv")), csv).expect("write csv");
        }
    };
    if which == "fig4" || which == "all" {
        let points = fig4(&scale, threads);
        dump("fig4", render_csv("K", &points));
        println!(
            "{}",
            render_served_table(
                &format!(
                    "Fig. 4 — served users vs K (n = {}, s = {})",
                    scale.n_max(),
                    scale.s_default
                ),
                "K",
                &points
            )
        );
    }
    if which == "fig5" || which == "all" {
        let points = fig5(&scale, threads);
        dump("fig5", render_csv("n", &points));
        println!(
            "{}",
            render_served_table(
                &format!(
                    "Fig. 5 — served users vs n (K = {}, s = {})",
                    scale.k_max(),
                    scale.s_default
                ),
                "n",
                &points
            )
        );
    }
    if which == "fig6a" || which == "fig6b" || which == "all" {
        let points = fig6(&scale, threads);
        dump("fig6", render_csv("s", &points));
        if which != "fig6b" {
            println!(
                "{}",
                render_served_table(
                    &format!(
                        "Fig. 6(a) — served users vs s (n = {}, K = {})",
                        scale.n_max(),
                        scale.k_max()
                    ),
                    "s",
                    &points
                )
            );
        }
        if which != "fig6a" {
            println!(
                "{}",
                render_time_table(
                    &format!(
                        "Fig. 6(b) — running time vs s (n = {}, K = {})",
                        scale.n_max(),
                        scale.k_max()
                    ),
                    "s",
                    &points
                )
            );
        }
    }
    if which == "ablate" || which == "all" {
        let s = scale.s_default.min(2); // the sweep is re-run 5×; keep it affordable
        let rows = ablation(&scale, s, threads);
        println!(
            "{}",
            render_ablation_table(
                &format!(
                    "Ablation — approAlg design choices (n = {}, K = {}, s = {s})",
                    scale.n_max(),
                    scale.k_max()
                ),
                &rows
            )
        );
    }
    ExitCode::SUCCESS
}
