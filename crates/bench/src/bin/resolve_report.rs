//! Benchmarks the incremental re-solve engine
//! ([`uavnet_core::SolverLoop`]) and merges a `resolve` section into
//! `BENCH_sweep.json`.
//!
//! Two workloads, one per scale:
//!
//! * `quick` — a sustained mobility stream: the FIG6 quick instance is
//!   cold-solved once, then driven through `--ticks` Gaussian-walk
//!   mobility ticks ([`MobilitySimulator::step_deltas`]), each applied
//!   as one `Delta::UserMoved` batch. Reported as `updates_per_sec`
//!   (user-position updates absorbed per second of solver time) and
//!   `ticks_per_sec`, against the committed `updates_per_sec_floor`
//!   that CI enforces.
//! * `large` — repair-vs-resolve latency at 100 000 users: for every
//!   deployed UAV, a standing loop absorbs the single-UAV-loss delta
//!   and the median repair latency is compared with the median cold
//!   `approx_alg` re-solve on the same instance (`repair_speedup`,
//!   CI-gated at ≥ 10×).
//!
//! Both scales also run verify oracle 7
//! ([`uavnet_core::check_incremental`]) over a representative delta
//! interleaving and record the verdict as `incremental_equals_cold` —
//! the report refuses to write numbers for a divergent solver.
//!
//! Usage: `cargo run --release -p uavnet-bench --bin resolve_report --
//! [--threads N] [--ticks N] [--out PATH] [--scale quick|large|all]
//! [--obs-log PATH] [--obs-metrics PATH] [--obs-prom PATH]`
//!
//! The report *merges*: an existing `--out` file keeps every other
//! top-level section (the sweep evidence) and only the `resolve`
//! member is replaced. The `--obs-*` flags mirror `sweep_report` and
//! need the `obs` cargo feature.

use std::time::Instant;

use uavnet_bench::json::Json;
use uavnet_bench::Scale;
use uavnet_core::{
    approx_alg, check_incremental, ApproxConfig, CoreError, Delta, Instance, LoopConfig,
    SolverLoop, User,
};
use uavnet_geom::Point2;
use uavnet_workload::{MobilityModel, MobilitySimulator};

/// Committed CI floor for the quick-scale mobility stream. Measured
/// ≈ two orders of magnitude higher on an idle dev box; the floor only
/// guards against catastrophic regressions (an accidental cold solve
/// per tick), not machine-to-machine noise.
const UPDATES_PER_SEC_FLOOR: f64 = 2_000.0;

/// Per-step Gaussian displacement (m) of the mobility stream and the
/// reporting threshold below which a move is dropped as jitter.
const MOBILITY_SIGMA_M: f64 = 25.0;
const MOBILITY_THRESHOLD_M: f64 = 5.0;

const USAGE: &str = "usage: resolve_report [--threads N] [--ticks N] [--out PATH] \
     [--scale quick|large|all] \
     [--obs-log PATH] [--obs-metrics PATH] [--obs-prom PATH]";

fn fail_usage(msg: &str) -> ! {
    eprintln!("resolve_report: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(raw: &str, name: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| fail_usage(&format!("{name} expects a number, got {raw:?}")))
}

fn median_ns(samples: &mut [u64]) -> u64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn loop_config(scale: &Scale, threads: usize) -> LoopConfig {
    LoopConfig::new(ApproxConfig::with_s(1).threads(threads)).tuned_for(scale)
}

/// Scale-aware tuning knob kept next to the numbers it shapes.
trait Tuned {
    fn tuned_for(self, scale: &Scale) -> Self;
}

impl Tuned for LoopConfig {
    fn tuned_for(mut self, scale: &Scale) -> Self {
        // Quick's 5×5 grid fits one tile per station neighborhood at
        // side 2; the large 20×20 grid gets the default 16-cell tiles.
        if scale.name == "quick" {
            self.tile_cells = 2;
        }
        self
    }
}

/// A delta mix representative of a disaster-zone shift: one mobility
/// batch, a demand surge, a link cut, and a UAV loss.
fn oracle_deltas(instance: &Instance, sim_seed: u64) -> Vec<Delta> {
    let area = instance.grid().spec().area();
    let mut sim = MobilitySimulator::new(
        area,
        instance.users().iter().map(|u| u.pos).collect(),
        MobilityModel::GaussianWalk {
            sigma_m: MOBILITY_SIGMA_M,
        },
        sim_seed,
    );
    let surge: Vec<User> = (0..5)
        .map(|i| User {
            pos: Point2::new(
                area.length_m() * 0.5 + 40.0 * i as f64,
                area.width_m() * 0.5,
            ),
            min_rate_bps: 2_000.0,
        })
        .collect();
    let cut = instance
        .location_graph()
        .edges()
        .next()
        .map(|(a, b)| Delta::SeverLinks(vec![(a, b)]));
    let mut deltas = vec![
        Delta::UserMoved(sim.step_deltas(MOBILITY_THRESHOLD_M)),
        Delta::UserSurge(surge),
        Delta::KillUavs(vec![0]),
        Delta::UserMoved(sim.step_deltas(MOBILITY_THRESHOLD_M)),
    ];
    deltas.extend(cut);
    deltas
}

fn check_oracle(scale: &Scale, instance: &Instance, threads: usize) -> bool {
    let config = ApproxConfig::with_s(1).threads(threads);
    match check_incremental(
        instance,
        &config,
        &oracle_deltas(instance, scale.seed ^ 0x5eed),
    ) {
        Ok(()) => true,
        Err(e) => panic!(
            "verify oracle 7 rejected the incremental solver at scale {}: {e}",
            scale.name
        ),
    }
}

struct MobilityReport {
    ticks: usize,
    moved_updates: u64,
    wall_ns: u64,
    served_first: usize,
    served_last: usize,
}

/// Drives a standing loop through `ticks` mobility batches, timing
/// only the solver (`apply`), not the simulator.
fn run_mobility(
    instance: &Instance,
    config: &LoopConfig,
    ticks: usize,
    seed: u64,
) -> Result<(MobilityReport, SolverLoop), CoreError> {
    let mut solver = SolverLoop::new(instance.clone(), config.clone())?;
    let served_first = solver.served_users();
    let mut sim = MobilitySimulator::new(
        instance.grid().spec().area(),
        instance.users().iter().map(|u| u.pos).collect(),
        MobilityModel::GaussianWalk {
            sigma_m: MOBILITY_SIGMA_M,
        },
        seed,
    );
    let mut moved_updates = 0u64;
    let mut wall_ns = 0u64;
    for _ in 0..ticks {
        let batch = sim.step_deltas(MOBILITY_THRESHOLD_M);
        moved_updates += batch.len() as u64;
        let t = Instant::now();
        solver.apply(Delta::UserMoved(batch))?;
        wall_ns += t.elapsed().as_nanos() as u64;
    }
    let served_last = solver.served_users();
    Ok((
        MobilityReport {
            ticks,
            moved_updates,
            wall_ns,
            served_first,
            served_last,
        },
        solver,
    ))
}

fn stats_json(solver: &SolverLoop) -> Json {
    let s = solver.stats();
    Json::Obj(vec![
        ("deltas_applied".into(), Json::Num(s.deltas_applied as f64)),
        ("repairs".into(), Json::Num(s.repairs as f64)),
        ("cold_solves".into(), Json::Num(s.cold_solves as f64)),
        ("dirty_tiles".into(), Json::Num(s.dirty_tiles as f64)),
        (
            "stations_refreshed".into(),
            Json::Num(s.stations_refreshed as f64),
        ),
        ("relays_spent".into(), Json::Num(s.relays_spent as f64)),
        (
            "dropped_placements".into(),
            Json::Num(s.dropped_placements as f64),
        ),
        (
            "matching_rebuilds".into(),
            Json::Num(s.matching_rebuilds as f64),
        ),
    ])
}

fn quick_section(scale: &Scale, threads: usize, ticks: usize) -> Json {
    let instance = scale.instance(scale.n_max(), scale.k_max());
    let config = loop_config(scale, threads);
    let (report, solver) =
        run_mobility(&instance, &config, ticks, scale.seed).expect("quick mobility stream");
    let secs = report.wall_ns as f64 / 1e9;
    let updates_per_sec = report.moved_updates as f64 / secs;
    let ticks_per_sec = report.ticks as f64 / secs;
    let oracle = check_oracle(scale, &instance, threads);
    eprintln!(
        "resolve_report: quick n={} K={} ticks={} updates={} -> {:.0} updates/s \
         ({:.0} ticks/s), served {} -> {}, oracle ok",
        instance.num_users(),
        instance.num_uavs(),
        report.ticks,
        report.moved_updates,
        updates_per_sec,
        ticks_per_sec,
        report.served_first,
        report.served_last,
    );
    assert!(
        updates_per_sec >= UPDATES_PER_SEC_FLOOR,
        "quick mobility throughput {updates_per_sec:.0} updates/s fell below the \
         committed floor {UPDATES_PER_SEC_FLOOR}"
    );
    Json::Obj(vec![
        ("users".into(), Json::Num(instance.num_users() as f64)),
        ("uavs".into(), Json::Num(instance.num_uavs() as f64)),
        ("threads".into(), Json::Num(threads as f64)),
        ("mobility_ticks".into(), Json::Num(report.ticks as f64)),
        ("mobility_sigma_m".into(), Json::Num(MOBILITY_SIGMA_M)),
        (
            "moved_user_updates".into(),
            Json::Num(report.moved_updates as f64),
        ),
        ("wall_ns".into(), Json::Num(report.wall_ns as f64)),
        (
            "updates_per_sec".into(),
            Json::Num((updates_per_sec * 10.0).round() / 10.0),
        ),
        (
            "ticks_per_sec".into(),
            Json::Num((ticks_per_sec * 10.0).round() / 10.0),
        ),
        (
            "updates_per_sec_floor".into(),
            Json::Num(UPDATES_PER_SEC_FLOOR),
        ),
        (
            "served_users_first".into(),
            Json::Num(report.served_first as f64),
        ),
        (
            "served_users_last".into(),
            Json::Num(report.served_last as f64),
        ),
        ("incremental_equals_cold".into(), Json::Bool(oracle)),
        ("stats".into(), stats_json(&solver)),
    ])
}

fn large_section(scale: &Scale, threads: usize) -> Json {
    let t_build = Instant::now();
    let instance = scale.instance(scale.n_max(), scale.k_max());
    let build_ms = t_build.elapsed().as_millis();
    let config = loop_config(scale, threads);
    let solution = approx_alg(&instance, &config.approx).expect("large cold solve");
    eprintln!(
        "resolve_report: large n={} K={} built in {build_ms} ms, cold solve serves {}",
        instance.num_users(),
        instance.num_uavs(),
        solution.served_users(),
    );

    // Median cold re-solve latency — the price paid per delta without
    // the incremental engine.
    let mut cold_ns: Vec<u64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            let sol = approx_alg(&instance, &config.approx).expect("cold re-solve");
            assert_eq!(sol.served_users(), solution.served_users());
            t.elapsed().as_nanos() as u64
        })
        .collect();
    let cold_median = median_ns(&mut cold_ns);

    // Median single-UAV-loss repair latency: each deployed UAV dies
    // once against a fresh standing loop seeded from the same cold
    // solution.
    let deployed: Vec<usize> = solution
        .deployment()
        .placements()
        .iter()
        .map(|&(uav, _)| uav)
        .collect();
    assert!(!deployed.is_empty(), "degenerate large scenario");
    let mut repair_ns = Vec::with_capacity(deployed.len());
    for &uav in &deployed {
        let mut solver = SolverLoop::from_solution(instance.clone(), &solution, config.clone())
            .expect("standing loop");
        let t = Instant::now();
        solver
            .apply(Delta::KillUavs(vec![uav]))
            .unwrap_or_else(|e| panic!("killing UAV {uav} must be absorbable: {e}"));
        repair_ns.push(t.elapsed().as_nanos() as u64);
    }
    let repair_median = median_ns(&mut repair_ns);
    let speedup = cold_median as f64 / repair_median as f64;
    let oracle = check_oracle(scale, &instance, threads);
    eprintln!(
        "resolve_report: large kill-repair median {:.3} ms vs cold re-solve median \
         {:.3} ms -> {speedup:.1}x, oracle ok",
        repair_median as f64 / 1e6,
        cold_median as f64 / 1e6,
    );
    Json::Obj(vec![
        ("users".into(), Json::Num(instance.num_users() as f64)),
        ("uavs".into(), Json::Num(instance.num_uavs() as f64)),
        ("threads".into(), Json::Num(threads as f64)),
        (
            "single_uav_loss_deltas".into(),
            Json::Num(deployed.len() as f64),
        ),
        (
            "kill_repair_ns_median".into(),
            Json::Num(repair_median as f64),
        ),
        ("cold_solve_ns_median".into(), Json::Num(cold_median as f64)),
        (
            "repair_speedup".into(),
            Json::Num((speedup * 10.0).round() / 10.0),
        ),
        ("incremental_equals_cold".into(), Json::Bool(oracle)),
    ])
}

fn main() {
    let mut threads = 2usize;
    let mut ticks = 200usize;
    let mut out = String::from("BENCH_sweep.json");
    let mut which = String::from("quick");
    let mut obs_log: Option<String> = None;
    let mut obs_metrics: Option<String> = None;
    let mut obs_prom: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail_usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--threads" => threads = parse_flag(&value("--threads"), "--threads"),
            "--ticks" => ticks = parse_flag(&value("--ticks"), "--ticks"),
            "--out" => out = value("--out"),
            "--scale" => which = value("--scale"),
            "--obs-log" => obs_log = Some(value("--obs-log")),
            "--obs-metrics" => obs_metrics = Some(value("--obs-metrics")),
            "--obs-prom" => obs_prom = Some(value("--obs-prom")),
            other => fail_usage(&format!("unknown argument {other:?}")),
        }
    }
    if threads == 0 {
        fail_usage("--threads must be positive");
    }
    if ticks == 0 {
        fail_usage("--ticks must be positive");
    }
    let (run_quick, run_large) = match which.as_str() {
        "quick" => (true, false),
        "large" => (false, true),
        "all" => (true, true),
        other => fail_usage(&format!(
            "unknown --scale {other:?} (expected quick|large|all)"
        )),
    };

    let want_obs = obs_log.is_some() || obs_metrics.is_some() || obs_prom.is_some();
    if want_obs && !uavnet_obs::is_enabled() {
        eprintln!(
            "resolve_report: --obs-log/--obs-metrics/--obs-prom need the instrumentation \
             compiled in; rebuild with `--features obs`"
        );
        std::process::exit(2);
    }
    if want_obs {
        let mut provenance = uavnet_obs::Provenance::detect();
        provenance.features = "obs,enabled".to_string();
        provenance.threads = threads as u64;
        assert!(
            uavnet_obs::session_begin_with(provenance),
            "obs session already active"
        );
    }

    let mut resolve = Vec::new();
    resolve.push((
        "regenerate".to_string(),
        Json::Str(
            "cargo run --release -p uavnet-bench --bin resolve_report -- --scale all --threads 2"
                .into(),
        ),
    ));
    {
        let _report_span = uavnet_obs::phases::REPORT.span();
        if run_quick {
            resolve.push((
                "quick".to_string(),
                quick_section(&Scale::quick(), threads, ticks),
            ));
        }
        if run_large {
            resolve.push(("large".to_string(), large_section(&Scale::large(), threads)));
        }
    }

    if want_obs {
        let snap = uavnet_obs::session_end().expect("obs session was begun above");
        let events = uavnet_obs::drain_events();
        if let Some(path) = &obs_log {
            let mut lines = String::with_capacity(events.len() * 64);
            for e in &events {
                lines.push_str(&e.to_json_line());
                lines.push('\n');
            }
            std::fs::write(path, lines).expect("write obs event log");
            eprintln!("resolve_report: wrote {path} ({} events)", events.len());
        }
        if let Some(path) = &obs_metrics {
            std::fs::write(path, snap.to_json()).expect("write obs metrics snapshot");
            eprintln!("resolve_report: wrote {path}");
        }
        if let Some(path) = &obs_prom {
            std::fs::write(path, snap.to_prometheus()).expect("write obs prometheus export");
            eprintln!("resolve_report: wrote {path}");
        }
    }

    // Merge: keep every other top-level section of an existing report.
    let mut doc = match std::fs::read_to_string(&out) {
        Ok(text) => Json::parse(&text).unwrap_or_else(|e| {
            panic!("existing {out} is not valid JSON ({e}); refusing to clobber")
        }),
        Err(_) => Json::Obj(vec![(
            "benchmark".into(),
            Json::Str("sweep_hotpath".into()),
        )]),
    };
    doc.set("resolve", Json::Obj(resolve));
    std::fs::write(&out, doc.dump()).expect("write report");
    eprintln!("resolve_report: wrote {out}");
}
