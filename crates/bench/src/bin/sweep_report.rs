//! Regenerates `BENCH_sweep.json`: machine-readable evidence for the
//! subset-sweep hot path — the zero-allocation matching kernel, the
//! streaming enumeration, (PR 3) the spatial-index instance build plus
//! the shared connectivity substrate, (PR 6) the compressed coverage
//! tables plus the tile-sharded sweep, and (PR 8) the pruned
//! seed-search strategies behind the [`SeedStrategyKind`] dispatch.
//!
//! For each selected scale, runs the FIG6-style workload
//! (`n = n_max`, `K = k_max`, every `s` in `s_sweep`) through
//! [`approx_alg_with_stats`] (or [`approx_alg_sharded`] for scales
//! marked `sharded`, currently `xlarge` at one million users) and
//! reports:
//!
//! * instance-construction time (`build_ns` — the spatial-index
//!   coverage build; the `large`/`xlarge` scales at 100 000 / 1 000 000
//!   users exist to exercise exactly this path),
//! * the coverage-table memory footprint from the instance build
//!   (compressed store vs the `Vec<Vec<u32>>` layout it replaced, with
//!   per-encoding list tallies),
//! * wall-clock per sweep (mean and min over the scale's reps),
//! * per-phase wall-clock from [`SweepProfile`] (enumeration, greedy,
//!   connection, scoring — summed across worker threads — plus the
//!   one-time substrate build, the portion of greedy/connection spent
//!   on substrate reads, and tile-view construction on sharded runs),
//! * marginal-gain queries per second (the sweep's throughput metric;
//!   the query *count* is deterministic, thread-count invariant and
//!   identical between the sharded and monolithic paths, so
//!   before/after throughput is directly comparable),
//! * peak subset-combination buffer bytes,
//! * on scales marked `check_sharded` (quick, large), the verdict of
//!   the sharded-vs-monolithic differential oracle
//!   ([`check_sharded_sweep`]) as `"sharded_equals_monolithic"`,
//! * with `--seed-strategy`, a per-scale `"strategy"` section driven
//!   by the scale's `strategy_sweep` matrix: each strategy's wall
//!   clock and honest subset accounting (enumerated / chain-pruned /
//!   bound-pruned / evaluated), and — where the matrix also carries
//!   the exhaustive baseline at the same `s` — `speedup_vs_exhaustive`,
//!   the enumeration-phase speedup (wall minus the one-time substrate
//!   build), a placement-level `bit_identical_to_exhaustive` verdict,
//!   and `served_ratio_vs_exhaustive`.
//!
//! # Measurement protocol (interleaved, warmup-separated)
//!
//! All wall times in the report come from one shared protocol per
//! scale, generalized from `scripts/obs_overhead.py`'s
//! alternating-round discipline: first a warm-up pass runs every
//! configuration once untimed (heating caches and capturing the
//! deterministic statistics plus the solution used by the differential
//! checks), then `reps` timing rounds each measure exactly one rep of
//! every configuration in A/B/A/B order. Clock drift, thermal ramps
//! and scheduler noise therefore hit all configurations of a scale
//! alike instead of biasing whichever ran last; `wall_ns_min` is the
//! min over rounds (the low-noise statistic the strategy comparisons
//! use) and `wall_ns_mean` the mean (the statistic the historical
//! `baseline_wall_ns` figures were recorded with).
//!
//! The `baseline_wall_ns` figures are pre-optimization means of the
//! `fig6_s_sweep` Criterion bench on the same instance: the growth
//! seed's seed-commit algorithm for the `quick` scale, and the PR 5
//! monolithic sweep for the `large` scale — so the JSON carries its
//! own before/after comparison.
//!
//! Usage: `cargo run --release -p uavnet-bench --bin sweep_report --
//! [--threads N] [--reps N] [--out PATH]
//! [--scale quick|large|xlarge|all] [--sharded]
//! [--seed-strategy all|exhaustive|bound-pruned|beam[:N]]
//! [--obs-log PATH] [--obs-metrics PATH] [--obs-prom PATH]`
//!
//! `--reps` overrides every selected scale's default rep count;
//! `--sharded` forces the tile-sharded solver on every selected scale
//! (scales marked `sharded` use it regardless; strategy runs always
//! use the monolithic dispatch — guided strategies delegate there
//! anyway). `--seed-strategy all` measures each scale's full
//! `strategy_sweep` matrix; naming one strategy filters the matrix to
//! that strategy plus its exhaustive baselines (`beam:N` overrides the
//! matrix beam width). Unknown flags, a flag missing its value, or an
//! unknown scale print the usage line and exit nonzero instead of
//! panicking.
//!
//! The `--obs-*` flags require the `obs` cargo feature
//! (`--features obs`): they wrap the whole report in a `uavnet-obs`
//! recording session and write the JSON-lines event log, the
//! end-of-run metrics snapshot, and/or a Prometheus text-format
//! export of that snapshot to the given paths. The session header
//! carries run provenance (git SHA, features, thread count, and an
//! FNV-1a fingerprint folded over every instance measured), so
//! instances are constructed *before* the recording window opens;
//! everything measured afterwards nests under a single `report` root
//! span, giving the event log one rooted span tree.

use std::time::Instant;

use uavnet_bench::json::Json;
use uavnet_bench::Scale;
use uavnet_core::{
    approx_alg_sharded, approx_alg_with_stats, check_sharded_sweep, ApproxConfig, ApproxStats,
    Instance, SeedStrategyKind, ShardConfig, Solution,
};

/// Pre-optimization wall-clock means (ns) per `(scale, s)`, measured
/// at `threads = 2`: the growth seed's seed-commit algorithm for
/// `quick` (mean of 3 × 10 `fig6_s_sweep` Criterion samples), and the
/// pre-compression (`Vec<Vec<u32>>` coverage tables) sweep for
/// `large`, re-measured as the mean of 5 × 3 interleaved
/// `sweep_report --scale large --reps 3 --threads 2` runs on the same
/// box and sitting as the current numbers. `speedup_vs_baseline` on
/// `large` is therefore an apples-to-apples wall ratio against the
/// uncompressed layout: parity-to-slightly-below-1 is the accepted
/// cost of the 57 % coverage-table memory cut (see DESIGN.md).
const BASELINE_WALL_NS: &[(&str, usize, u64)] = &[
    ("quick", 1, 938_750),
    ("quick", 2, 4_566_690),
    ("large", 1, 197_000_000),
];

const USAGE: &str = "usage: sweep_report [--threads N] [--reps N] [--out PATH] \
     [--scale quick|large|xlarge|all] [--sharded] \
     [--seed-strategy all|exhaustive|bound-pruned|beam[:N]] \
     [--obs-log PATH] [--obs-metrics PATH] [--obs-prom PATH]";

fn fail_usage(msg: &str) -> ! {
    eprintln!("sweep_report: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn baseline_wall_ns(scale: &str, s: usize) -> Option<u64> {
    BASELINE_WALL_NS
        .iter()
        .find(|&&(name, bs, _)| name == scale && bs == s)
        .map(|&(_, _, ns)| ns)
}

/// What `--seed-strategy` selected from each scale's strategy matrix.
#[derive(Clone, Copy, Debug)]
enum StrategySel {
    /// Run the scale's full `strategy_sweep` matrix.
    All,
    /// Run one strategy (plus its exhaustive baselines); a `beam:N`
    /// argument carries the user's width into the matrix's beam slots.
    One(SeedStrategyKind),
}

/// One measured configuration: the plain `s_sweep` runs carry
/// `strategy: None`; strategy-matrix runs carry the kind and are
/// always monolithic.
struct Spec {
    s: usize,
    strategy: Option<SeedStrategyKind>,
    sharded: bool,
}

impl Spec {
    fn config(&self, threads: usize) -> ApproxConfig {
        let config = ApproxConfig::with_s(self.s).threads(threads);
        match self.strategy {
            Some(kind) => config.seed_strategy(kind),
            None => config,
        }
    }

    fn label(&self) -> String {
        match self.strategy {
            Some(kind) => format!("s={} strategy={kind}", self.s),
            None => format!("s={}", self.s),
        }
    }
}

/// Per-spec outcome of the interleaved measurement: the warm-up run's
/// deterministic statistics and solution plus the timing aggregates.
struct Timed {
    wall_ns_mean: u64,
    wall_ns_min: u64,
    total_ns: u64,
    stats: ApproxStats,
    served: usize,
    solution: Solution,
}

fn solve(instance: &Instance, spec: &Spec, threads: usize) -> (Solution, ApproxStats) {
    let config = spec.config(threads);
    let result = if spec.sharded {
        approx_alg_sharded(instance, &config, &ShardConfig::new())
    } else {
        approx_alg_with_stats(instance, &config)
    };
    result.unwrap_or_else(|e| panic!("sweep {} failed: {e}", spec.label()))
}

/// The shared measurement protocol: one untimed warm-up pass over all
/// specs (the source of the deterministic statistics), then `reps`
/// rounds that each time a single rep of every spec in order, so
/// machine drift is spread evenly across configurations.
fn measure_interleaved(
    instance: &Instance,
    specs: &[Spec],
    threads: usize,
    reps: u32,
) -> Vec<Timed> {
    let mut timed: Vec<Timed> = specs
        .iter()
        .map(|spec| {
            let (solution, stats) = solve(instance, spec, threads);
            Timed {
                wall_ns_mean: 0,
                wall_ns_min: u64::MAX,
                total_ns: 0,
                stats,
                served: solution.served_users(),
                solution,
            }
        })
        .collect();
    for _ in 0..reps {
        for (spec, t) in specs.iter().zip(timed.iter_mut()) {
            let start = Instant::now();
            let (rep_sol, _) = solve(instance, spec, threads);
            let ns = start.elapsed().as_nanos() as u64;
            assert_eq!(
                rep_sol.served_users(),
                t.served,
                "non-deterministic sweep at {}",
                spec.label()
            );
            t.total_ns += ns;
            t.wall_ns_min = t.wall_ns_min.min(ns);
        }
    }
    for t in &mut timed {
        t.wall_ns_mean = t.total_ns / u64::from(reps.max(1));
    }
    timed
}

struct RunReport {
    s: usize,
    reps: u32,
    sharded: bool,
    /// Verdict of [`check_sharded_sweep`]; `None` when the oracle was
    /// not run at this scale.
    sharded_equals_monolithic: Option<bool>,
    wall_ns_mean: u64,
    wall_ns_min: u64,
    stats: ApproxStats,
    served: usize,
}

fn queries_per_sec(queries: u64, wall_ns: u64) -> f64 {
    queries as f64 * 1e9 / wall_ns as f64
}

fn run_json(r: &RunReport, threads: usize, scale_name: &str) -> String {
    let p = &r.stats.profile;
    let after_qps = queries_per_sec(r.stats.gain_queries, r.wall_ns_mean);
    let (baseline_fields, speedup_fields) = match baseline_wall_ns(scale_name, r.s) {
        Some(base_ns) => {
            let before_qps = queries_per_sec(r.stats.gain_queries, base_ns);
            (
                format!(
                    "        \"baseline_wall_ns\": {base_ns},\n        \
                     \"baseline_gain_queries_per_sec\": {before_qps:.1},\n"
                ),
                format!(
                    "        \"speedup_vs_baseline\": {:.2},\n",
                    base_ns as f64 / r.wall_ns_mean as f64
                ),
            )
        }
        None => (String::new(), String::new()),
    };
    let oracle_field = match r.sharded_equals_monolithic {
        Some(ok) => format!("        \"sharded_equals_monolithic\": {ok},\n"),
        None => String::new(),
    };
    format!(
        "      {{\n        \"s\": {s},\n        \"threads\": {threads},\n        \
         \"reps\": {reps},\n        \"sharded\": {sharded},\n{oracle_field}        \
         \"served_users\": {served},\n        \
         \"wall_ns_mean\": {mean},\n        \"wall_ns_min\": {min},\n\
         {baseline_fields}{speedup_fields}        \
         \"gain_queries\": {queries},\n        \
         \"gain_queries_per_sec\": {qps:.1},\n        \
         \"phases_ns\": {{\n          \"enumeration\": {enumeration},\n          \
         \"greedy\": {greedy},\n          \"connection\": {connection},\n          \
         \"scoring\": {scoring},\n          \
         \"substrate_build\": {sub_build},\n          \
         \"substrate_query\": {sub_query},\n          \
         \"tile_view\": {tile_view}\n        }},\n        \
         \"subset_buffer_peak_bytes\": {peak},\n        \
         \"subsets\": {{\n          \"enumerated\": {enumerated},\n          \
         \"chain_pruned\": {pruned},\n          \"bound_pruned\": {bound},\n          \
         \"evaluated\": {evaluated},\n          \
         \"unconnectable\": {unconnectable}\n        }},\n        \
         \"tiles_solved\": {tiles},\n        \"view_escapes\": {escapes}\n      }}",
        s = r.s,
        reps = r.reps,
        sharded = r.sharded,
        served = r.served,
        mean = r.wall_ns_mean,
        min = r.wall_ns_min,
        queries = r.stats.gain_queries,
        qps = after_qps,
        enumeration = p.enumeration_ns,
        greedy = p.greedy_ns,
        connection = p.connection_ns,
        scoring = p.scoring_ns,
        sub_build = p.substrate_build_ns,
        sub_query = p.substrate_query_ns,
        tile_view = p.tile_view_ns,
        peak = p.subset_buffer_peak_bytes,
        enumerated = r.stats.subsets_enumerated,
        pruned = r.stats.subsets_chain_pruned,
        bound = r.stats.subsets_bound_pruned,
        evaluated = r.stats.subsets_evaluated,
        unconnectable = r.stats.subsets_unconnectable,
        tiles = r.stats.tiles_solved,
        escapes = r.stats.view_escapes,
    )
}

/// Wall clock with the one-time substrate build subtracted: the
/// enumeration-phase figure the strategy speedup gate compares, so a
/// strategy is credited only for enumeration work it actually avoided.
fn enumeration_phase_ns(t: &Timed) -> u64 {
    t.wall_ns_min
        .saturating_sub(t.stats.profile.substrate_build_ns)
        .max(1)
}

fn strategy_json(
    s: usize,
    kind: SeedStrategyKind,
    t: &Timed,
    baseline: Option<&Timed>,
    reps: u32,
) -> String {
    let comparison = match (kind, baseline) {
        (SeedStrategyKind::Exhaustive, _) | (_, None) => String::new(),
        (_, Some(exh)) => {
            let bit_identical = t.served == exh.served
                && t.solution.deployment().placements() == exh.solution.deployment().placements();
            format!(
                "        \"speedup_vs_exhaustive\": {:.2},\n        \
                 \"enumeration_phase_speedup\": {:.2},\n        \
                 \"bit_identical_to_exhaustive\": {bit_identical},\n        \
                 \"served_ratio_vs_exhaustive\": {:.4},\n",
                exh.wall_ns_min as f64 / t.wall_ns_min.max(1) as f64,
                enumeration_phase_ns(exh) as f64 / enumeration_phase_ns(t) as f64,
                t.served as f64 / exh.served.max(1) as f64,
            )
        }
    };
    format!(
        "      {{\n        \"s\": {s},\n        \"strategy\": \"{kind}\",\n        \
         \"reps\": {reps},\n        \
         \"served_users\": {served},\n        \
         \"wall_ns_mean\": {mean},\n        \"wall_ns_min\": {min},\n        \
         \"substrate_build_ns\": {sub_build},\n{comparison}        \
         \"gain_queries\": {queries},\n        \
         \"subsets\": {{\n          \"enumerated\": {enumerated},\n          \
         \"chain_pruned\": {pruned},\n          \"bound_pruned\": {bound},\n          \
         \"evaluated\": {evaluated},\n          \
         \"unconnectable\": {unconnectable}\n        }}\n      }}",
        served = t.served,
        mean = t.wall_ns_mean,
        min = t.wall_ns_min,
        sub_build = t.stats.profile.substrate_build_ns,
        queries = t.stats.gain_queries,
        enumerated = t.stats.subsets_enumerated,
        pruned = t.stats.subsets_chain_pruned,
        bound = t.stats.subsets_bound_pruned,
        evaluated = t.stats.subsets_evaluated,
        unconnectable = t.stats.subsets_unconnectable,
    )
}

/// The `(s, strategy)` pairs to measure for a scale: the full
/// `strategy_sweep` matrix under `--seed-strategy all`, or one
/// strategy plus its exhaustive baselines when a name was given.
fn strategy_matrix(scale: &Scale, sel: Option<StrategySel>) -> Vec<(usize, SeedStrategyKind)> {
    let Some(sel) = sel else {
        return Vec::new();
    };
    scale
        .strategy_sweep
        .iter()
        .flat_map(|(s, kinds)| kinds.iter().map(move |&k| (*s, k)))
        .filter_map(|(s, kind)| match sel {
            StrategySel::All => Some((s, kind)),
            StrategySel::One(want) => {
                if kind == SeedStrategyKind::Exhaustive {
                    Some((s, kind))
                } else if std::mem::discriminant(&kind) == std::mem::discriminant(&want) {
                    // The user's beam width wins over the matrix default.
                    Some((s, want))
                } else {
                    None
                }
            }
        })
        .collect()
}

fn scale_json(
    scale: &Scale,
    instance: &Instance,
    build_ns: u64,
    threads: usize,
    reps: u32,
    sharded: bool,
    sel: Option<StrategySel>,
) -> String {
    let mem = instance.coverage_memory();
    eprintln!(
        "sweep_report: scale={} n={} K={} m={} build {:.3} ms, coverage {:.1} KiB \
         compressed / {:.1} KiB plain (threads={threads} reps={reps}{})",
        scale.name,
        instance.num_users(),
        instance.num_uavs(),
        instance.num_locations(),
        build_ns as f64 / 1e6,
        mem.compressed_bytes as f64 / 1024.0,
        mem.uncompressed_bytes as f64 / 1024.0,
        if sharded { " sharded" } else { "" },
    );

    let matrix = strategy_matrix(scale, sel);
    let mut specs: Vec<Spec> = scale
        .s_sweep
        .iter()
        .map(|&s| Spec {
            s,
            strategy: None,
            sharded,
        })
        .collect();
    let plain = specs.len();
    specs.extend(matrix.iter().map(|&(s, kind)| Spec {
        s,
        strategy: Some(kind),
        sharded: false,
    }));

    let timed = measure_interleaved(instance, &specs, threads, reps);

    let runs: Vec<String> = timed[..plain]
        .iter()
        .zip(&scale.s_sweep)
        .map(|(t, &s)| {
            let mut report = RunReport {
                s,
                reps,
                sharded,
                sharded_equals_monolithic: None,
                wall_ns_mean: t.wall_ns_mean,
                wall_ns_min: t.wall_ns_min,
                stats: t.stats.clone(),
                served: t.served,
            };
            if scale.check_sharded {
                let config = ApproxConfig::with_s(s).threads(threads);
                check_sharded_sweep(instance, &config)
                    .unwrap_or_else(|e| panic!("sharded differential oracle failed at s={s}: {e}"));
                report.sharded_equals_monolithic = Some(true);
            }
            eprintln!(
                "  s={s}: mean {:.3} ms, {} gain queries, {:.0} queries/s{}",
                report.wall_ns_mean as f64 / 1e6,
                report.stats.gain_queries,
                queries_per_sec(report.stats.gain_queries, report.wall_ns_mean),
                match report.sharded_equals_monolithic {
                    Some(true) => ", sharded == monolithic",
                    _ => "",
                },
            );
            run_json(&report, threads, scale.name)
        })
        .collect();

    let strategy_runs: Vec<String> = matrix
        .iter()
        .enumerate()
        .map(|(i, &(s, kind))| {
            let t = &timed[plain + i];
            let baseline = matrix
                .iter()
                .position(|&(bs, bk)| bs == s && bk == SeedStrategyKind::Exhaustive)
                .map(|j| &timed[plain + j]);
            eprintln!(
                "  strategy s={s} {kind}: min {:.3} ms, served {}, \
                 evaluated {} / bound-pruned {} of {} enumerated",
                t.wall_ns_min as f64 / 1e6,
                t.served,
                t.stats.subsets_evaluated,
                t.stats.subsets_bound_pruned,
                t.stats.subsets_enumerated,
            );
            strategy_json(s, kind, t, baseline, reps)
        })
        .collect();
    let strategy_block = if strategy_runs.is_empty() {
        String::new()
    } else {
        format!(
            ",\n      \"strategy\": [\n{}\n      ]",
            strategy_runs.join(",\n")
        )
    };

    format!(
        "    {{\n      \"scale\": \"{name}\",\n      \
         \"instance\": {{\n        \"users\": {n},\n        \"uavs\": {k},\n        \
         \"candidate_locations\": {m},\n        \"build_ns\": {build_ns},\n        \
         \"coverage_memory\": {{\n          \
         \"compressed_bytes\": {cbytes},\n          \
         \"uncompressed_bytes\": {ubytes},\n          \
         \"lists\": {lists},\n          \
         \"ids_lists\": {ids},\n          \
         \"run_lists\": {runs_enc},\n          \
         \"bitset_lists\": {bits}\n        }}\n      }},\n      \
         \"runs\": [\n{runs}\n      ]{strategy_block}\n    }}",
        name = scale.name,
        n = instance.num_users(),
        k = instance.num_uavs(),
        m = instance.num_locations(),
        cbytes = mem.compressed_bytes,
        ubytes = mem.uncompressed_bytes,
        lists = mem.lists,
        ids = mem.ids_lists,
        runs_enc = mem.run_lists,
        bits = mem.bitset_lists,
        runs = runs.join(",\n"),
    )
}

/// Which scales `--scale` selected, resolved eagerly so malformed
/// names surface from [`parse_args`] rather than mid-run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ScaleSel {
    Quick,
    Large,
    Xlarge,
    All,
}

impl ScaleSel {
    fn scales(self) -> Vec<Scale> {
        match self {
            ScaleSel::Quick => vec![Scale::quick()],
            ScaleSel::Large => vec![Scale::large()],
            ScaleSel::Xlarge => vec![Scale::xlarge()],
            ScaleSel::All => vec![Scale::quick(), Scale::large(), Scale::xlarge()],
        }
    }
}

/// Everything `main` needs, parsed and validated. Kept separate from
/// `main` so the whole flag surface is unit-testable without spawning
/// processes; any `Err` exits 2 through [`fail_usage`] — the binary
/// must never panic on operator input.
#[derive(Debug)]
struct CliOptions {
    threads: usize,
    reps_override: Option<u32>,
    out: String,
    scale: ScaleSel,
    force_sharded: bool,
    sel: Option<StrategySel>,
    obs_log: Option<String>,
    obs_metrics: Option<String>,
    obs_prom: Option<String>,
}

fn parse_num<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{name} expects a number, got {raw:?}"))
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<CliOptions, String> {
    let mut opts = CliOptions {
        threads: 2,
        reps_override: None,
        out: String::from("BENCH_sweep.json"),
        scale: ScaleSel::Quick,
        force_sharded: false,
        sel: None,
        obs_log: None,
        obs_metrics: None,
        obs_prom: None,
    };
    let mut args = args;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--threads" => opts.threads = parse_num(&value("--threads")?, "--threads")?,
            "--reps" => opts.reps_override = Some(parse_num(&value("--reps")?, "--reps")?),
            "--out" => opts.out = value("--out")?,
            "--scale" => {
                opts.scale = match value("--scale")?.as_str() {
                    "quick" => ScaleSel::Quick,
                    "large" => ScaleSel::Large,
                    "xlarge" => ScaleSel::Xlarge,
                    "all" => ScaleSel::All,
                    other => {
                        return Err(format!(
                            "unknown --scale {other:?} (expected quick|large|xlarge|all)"
                        ))
                    }
                }
            }
            "--sharded" => opts.force_sharded = true,
            "--seed-strategy" => {
                let raw = value("--seed-strategy")?;
                opts.sel = Some(if raw == "all" {
                    StrategySel::All
                } else {
                    StrategySel::One(raw.parse().map_err(|e| format!("--seed-strategy: {e}"))?)
                });
            }
            "--obs-log" => opts.obs_log = Some(value("--obs-log")?),
            "--obs-metrics" => opts.obs_metrics = Some(value("--obs-metrics")?),
            "--obs-prom" => opts.obs_prom = Some(value("--obs-prom")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.threads == 0 {
        return Err("--threads must be positive".to_string());
    }
    if opts.reps_override == Some(0) {
        return Err("--reps must be positive".to_string());
    }
    Ok(opts)
}

fn main() {
    let CliOptions {
        threads,
        reps_override,
        out,
        scale,
        force_sharded,
        sel,
        obs_log,
        obs_metrics,
        obs_prom,
    } = parse_args(std::env::args().skip(1)).unwrap_or_else(|msg| fail_usage(&msg));
    let scales = scale.scales();

    let want_obs = obs_log.is_some() || obs_metrics.is_some() || obs_prom.is_some();
    if want_obs && !uavnet_obs::is_enabled() {
        eprintln!(
            "sweep_report: --obs-log/--obs-metrics/--obs-prom need the instrumentation \
             compiled in; rebuild with `--features obs`"
        );
        std::process::exit(2);
    }

    // Instances are built before the recording window opens so the
    // session header can carry their combined fingerprint; per-run
    // work (substrate builds included) still happens inside it.
    let prepared: Vec<(Scale, Instance, u64)> = scales
        .into_iter()
        .map(|scale| {
            let t_build = Instant::now();
            let instance = scale.instance(scale.n_max(), scale.k_max());
            let build_ns = t_build.elapsed().as_nanos() as u64;
            (scale, instance, build_ns)
        })
        .collect();

    if want_obs {
        let mut provenance = uavnet_obs::Provenance::detect();
        provenance.features = if uavnet_obs::is_enabled() {
            "obs,enabled".to_string()
        } else {
            String::new()
        };
        provenance.threads = threads as u64;
        provenance.instance_fingerprint = prepared
            .iter()
            .fold(0xcbf2_9ce4_8422_2325, |h: u64, (_, instance, _)| {
                (h ^ instance.fingerprint()).wrapping_mul(0x0100_0000_01b3)
            });
        assert!(
            uavnet_obs::session_begin_with(provenance),
            "obs session already active"
        );
    }

    let scale_blocks: Vec<String> = {
        // All recorded spans nest under this root, so the event log
        // forms a single rooted tree (a no-op without a session).
        let _report_span = uavnet_obs::phases::REPORT.span();
        prepared
            .iter()
            .map(|(scale, instance, build_ns)| {
                scale_json(
                    scale,
                    instance,
                    *build_ns,
                    threads,
                    reps_override.unwrap_or(scale.reps),
                    scale.sharded || force_sharded,
                    sel,
                )
            })
            .collect()
    };

    if want_obs {
        let snap = uavnet_obs::session_end().expect("obs session was begun above");
        let events = uavnet_obs::drain_events();
        if let Some(path) = &obs_log {
            let mut lines = String::with_capacity(events.len() * 64);
            for e in &events {
                lines.push_str(&e.to_json_line());
                lines.push('\n');
            }
            std::fs::write(path, lines).expect("write obs event log");
            eprintln!("sweep_report: wrote {path} ({} events)", events.len());
        }
        if let Some(path) = &obs_metrics {
            std::fs::write(path, snap.to_json()).expect("write obs metrics snapshot");
            eprintln!("sweep_report: wrote {path}");
        }
        if let Some(path) = &obs_prom {
            std::fs::write(path, snap.to_prometheus()).expect("write obs prometheus export");
            eprintln!("sweep_report: wrote {path}");
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"sweep_hotpath\",\n  \
         \"baseline\": \"threads = 2 means: growth-seed seed-commit algorithm (quick, fig6_s_sweep), pre-compression Vec<Vec<u32>> coverage tables (large, interleaved same-box re-measurement)\",\n  \
         \"regenerate\": \"cargo run --release -p uavnet-bench --bin sweep_report -- --scale all --threads 2 --seed-strategy all\",\n  \
         \"scales\": [\n{blocks}\n  ]\n}}\n",
        blocks = scale_blocks.join(",\n"),
    );
    // The incremental-engine (`resolve_report`) and service-smoke
    // (`service_report`) sections live in the same file; carry them
    // across a sweep regeneration instead of clobbering them.
    let old = std::fs::read_to_string(&out)
        .ok()
        .and_then(|old| Json::parse(&old).ok());
    let json = match old {
        Some(old) => {
            let mut doc = Json::parse(&json).expect("sweep_report emits valid JSON");
            for section in ["resolve", "service"] {
                if let Some(kept) = old.get(section) {
                    doc.set(section, kept.clone());
                }
            }
            doc.dump()
        }
        None => json,
    };
    std::fs::write(&out, json).expect("write report");
    eprintln!("sweep_report: wrote {out}");
}

#[cfg(test)]
mod cli_tests {
    use super::*;
    use uavnet_core::SeedStrategyKind;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick_two_threads() {
        let opts = parse(&[]).expect("no args is valid");
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.reps_override, None);
        assert_eq!(opts.out, "BENCH_sweep.json");
        assert_eq!(opts.scale, ScaleSel::Quick);
        assert!(!opts.force_sharded);
        assert!(opts.sel.is_none());
    }

    #[test]
    fn full_flag_surface_parses() {
        let opts = parse(&[
            "--threads",
            "4",
            "--reps",
            "7",
            "--out",
            "x.json",
            "--scale",
            "all",
            "--sharded",
            "--seed-strategy",
            "beam:8",
            "--obs-log",
            "l.jsonl",
            "--obs-metrics",
            "m.json",
            "--obs-prom",
            "p.prom",
        ])
        .expect("valid");
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.reps_override, Some(7));
        assert_eq!(opts.out, "x.json");
        assert_eq!(opts.scale, ScaleSel::All);
        assert!(opts.force_sharded);
        match opts.sel {
            Some(StrategySel::One(SeedStrategyKind::Beam { width: 8 })) => {}
            _ => panic!("beam:8 must select a width-8 beam"),
        }
        assert_eq!(opts.obs_log.as_deref(), Some("l.jsonl"));
        assert_eq!(opts.obs_metrics.as_deref(), Some("m.json"));
        assert_eq!(opts.obs_prom.as_deref(), Some("p.prom"));
    }

    #[test]
    fn seed_strategy_all_and_named() {
        assert!(matches!(
            parse(&["--seed-strategy", "all"]).unwrap().sel,
            Some(StrategySel::All)
        ));
        assert!(matches!(
            parse(&["--seed-strategy", "exhaustive"]).unwrap().sel,
            Some(StrategySel::One(SeedStrategyKind::Exhaustive))
        ));
        assert!(matches!(
            parse(&["--seed-strategy", "bound-pruned"]).unwrap().sel,
            Some(StrategySel::One(SeedStrategyKind::BoundPruned))
        ));
    }

    #[test]
    fn unknown_seed_strategy_is_an_error_not_a_panic() {
        let err = parse(&["--seed-strategy", "genetic"]).unwrap_err();
        assert!(err.contains("--seed-strategy"), "got: {err}");
        assert!(err.contains("genetic"), "got: {err}");
    }

    #[test]
    fn malformed_beam_widths_are_errors() {
        for bad in ["beam:0", "beam:abc", "beam:-1", "beam:"] {
            let err = parse(&["--seed-strategy", bad]).unwrap_err();
            assert!(err.contains("beam"), "{bad}: {err}");
        }
    }

    #[test]
    fn unknown_scale_is_an_error() {
        let err = parse(&["--scale", "huge"]).unwrap_err();
        assert!(err.contains("huge"), "got: {err}");
        assert!(err.contains("quick|large|xlarge|all"), "got: {err}");
    }

    #[test]
    fn malformed_numbers_are_errors() {
        for args in [
            &["--threads", "two"][..],
            &["--threads", "-1"],
            &["--reps", "1.5"],
            &["--reps", "many"],
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.contains("expects a number"), "{args:?}: {err}");
        }
    }

    #[test]
    fn zero_threads_and_zero_reps_are_rejected() {
        assert!(parse(&["--threads", "0"])
            .unwrap_err()
            .contains("--threads must be positive"));
        assert!(parse(&["--reps", "0"])
            .unwrap_err()
            .contains("--reps must be positive"));
    }

    #[test]
    fn missing_values_are_errors() {
        for flag in [
            "--threads",
            "--reps",
            "--out",
            "--scale",
            "--seed-strategy",
            "--obs-log",
            "--obs-metrics",
            "--obs-prom",
        ] {
            let err = parse(&[flag]).unwrap_err();
            assert_eq!(err, format!("{flag} needs a value"));
        }
    }

    #[test]
    fn unknown_flags_are_errors() {
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert!(err.contains("unknown argument"), "got: {err}");
        // A typo'd positional is rejected the same way.
        assert!(parse(&["quick"]).unwrap_err().contains("unknown argument"));
    }

    #[test]
    fn scale_selectors_resolve() {
        assert_eq!(ScaleSel::Quick.scales().len(), 1);
        assert_eq!(ScaleSel::All.scales().len(), 3);
    }
}
