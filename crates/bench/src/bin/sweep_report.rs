//! Regenerates `BENCH_sweep.json`: machine-readable evidence for the
//! subset-sweep hot path — the zero-allocation matching kernel, the
//! streaming enumeration, and (PR 3) the spatial-index instance build
//! plus the shared connectivity substrate.
//!
//! For each selected scale, runs the FIG6-style workload
//! (`n = n_max`, `K = k_max`, every `s` in `s_sweep`) through
//! [`approx_alg_with_stats`] and reports:
//!
//! * instance-construction time (`build_ns` — the spatial-index
//!   coverage build; the `large` scale at 100 000 users exists to
//!   exercise exactly this path),
//! * wall-clock per sweep (mean and min over the measured reps),
//! * per-phase wall-clock from [`SweepProfile`] (enumeration, greedy,
//!   connection, scoring — summed across worker threads — plus the
//!   one-time substrate build and the portion of greedy/connection
//!   spent on substrate reads),
//! * marginal-gain queries per second (the sweep's throughput metric;
//!   the query *count* is deterministic and thread-count invariant, so
//!   before/after throughput is directly comparable),
//! * peak subset-combination buffer bytes.
//!
//! The `baseline_wall_ns` figures are the pre-optimization means of the
//! `fig6_s_sweep` Criterion bench (same instance, `threads = 2`)
//! recorded at the growth seed, so the JSON carries its own
//! before/after comparison; they only exist for the `quick` scale.
//!
//! Usage: `cargo run --release -p uavnet-bench --bin sweep_report --
//! [--threads N] [--reps N] [--out PATH] [--scale quick|large|all]
//! [--obs-log PATH] [--obs-metrics PATH] [--obs-prom PATH]`
//!
//! The `--obs-*` flags require the `obs` cargo feature
//! (`--features obs`): they wrap the whole report in a `uavnet-obs`
//! recording session and write the JSON-lines event log, the
//! end-of-run metrics snapshot, and/or a Prometheus text-format
//! export of that snapshot to the given paths. The session header
//! carries run provenance (git SHA, features, thread count, and an
//! FNV-1a fingerprint folded over every instance measured), so
//! instances are constructed *before* the recording window opens;
//! everything measured afterwards nests under a single `report` root
//! span, giving the event log one rooted span tree.

use std::time::Instant;

use uavnet_bench::Scale;
use uavnet_core::{approx_alg_with_stats, ApproxConfig, ApproxStats, Instance};

/// Pre-optimization wall-clock means (ns) per seed count `s`, measured
/// with the seed-commit algorithm on the quick workload
/// (`fig6_s_sweep`, `Scale::quick()`, `threads = 2`, mean of 3 × 10
/// Criterion samples).
const BASELINE_WALL_NS: &[(usize, u64)] = &[(1, 938_750), (2, 4_566_690)];

struct RunReport {
    s: usize,
    reps: u32,
    wall_ns_mean: u64,
    wall_ns_min: u64,
    stats: ApproxStats,
    served: usize,
}

fn measure(instance: &Instance, s: usize, threads: usize, reps: u32) -> RunReport {
    let config = ApproxConfig::with_s(s).threads(threads);
    // Warm-up run (also the source of the deterministic statistics).
    let (sol, stats) = approx_alg_with_stats(instance, &config).expect("sweep succeeds");
    let served = sol.served_users();
    let mut total_ns = 0u64;
    let mut min_ns = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let (rep_sol, _) = approx_alg_with_stats(instance, &config).expect("sweep succeeds");
        let ns = start.elapsed().as_nanos() as u64;
        assert_eq!(rep_sol.served_users(), served, "non-deterministic sweep");
        total_ns += ns;
        min_ns = min_ns.min(ns);
    }
    RunReport {
        s,
        reps,
        wall_ns_mean: total_ns / u64::from(reps),
        wall_ns_min: min_ns,
        stats,
        served,
    }
}

fn queries_per_sec(queries: u64, wall_ns: u64) -> f64 {
    queries as f64 * 1e9 / wall_ns as f64
}

fn run_json(r: &RunReport, threads: usize, with_baseline: bool) -> String {
    let p = &r.stats.profile;
    let after_qps = queries_per_sec(r.stats.gain_queries, r.wall_ns_mean);
    let baseline = with_baseline
        .then(|| {
            BASELINE_WALL_NS
                .iter()
                .find(|(s, _)| *s == r.s)
                .map(|&(_, ns)| ns)
        })
        .flatten();
    let (baseline_fields, speedup_fields) = match baseline {
        Some(base_ns) => {
            let before_qps = queries_per_sec(r.stats.gain_queries, base_ns);
            (
                format!(
                    "        \"baseline_wall_ns\": {base_ns},\n        \
                     \"baseline_gain_queries_per_sec\": {before_qps:.1},\n"
                ),
                format!(
                    "        \"speedup_vs_baseline\": {:.2},\n",
                    base_ns as f64 / r.wall_ns_mean as f64
                ),
            )
        }
        None => (String::new(), String::new()),
    };
    format!(
        "      {{\n        \"s\": {s},\n        \"threads\": {threads},\n        \
         \"reps\": {reps},\n        \"served_users\": {served},\n        \
         \"wall_ns_mean\": {mean},\n        \"wall_ns_min\": {min},\n\
         {baseline_fields}{speedup_fields}        \
         \"gain_queries\": {queries},\n        \
         \"gain_queries_per_sec\": {qps:.1},\n        \
         \"phases_ns\": {{\n          \"enumeration\": {enumeration},\n          \
         \"greedy\": {greedy},\n          \"connection\": {connection},\n          \
         \"scoring\": {scoring},\n          \
         \"substrate_build\": {sub_build},\n          \
         \"substrate_query\": {sub_query}\n        }},\n        \
         \"subset_buffer_peak_bytes\": {peak},\n        \
         \"subsets\": {{\n          \"enumerated\": {enumerated},\n          \
         \"chain_pruned\": {pruned},\n          \"evaluated\": {evaluated},\n          \
         \"unconnectable\": {unconnectable}\n        }}\n      }}",
        s = r.s,
        reps = r.reps,
        served = r.served,
        mean = r.wall_ns_mean,
        min = r.wall_ns_min,
        queries = r.stats.gain_queries,
        qps = after_qps,
        enumeration = p.enumeration_ns,
        greedy = p.greedy_ns,
        connection = p.connection_ns,
        scoring = p.scoring_ns,
        sub_build = p.substrate_build_ns,
        sub_query = p.substrate_query_ns,
        peak = p.subset_buffer_peak_bytes,
        enumerated = r.stats.subsets_enumerated,
        pruned = r.stats.subsets_chain_pruned,
        evaluated = r.stats.subsets_evaluated,
        unconnectable = r.stats.subsets_unconnectable,
    )
}

fn scale_json(
    scale: &Scale,
    instance: &Instance,
    build_ns: u64,
    threads: usize,
    reps: u32,
) -> String {
    // The large scale measures instance construction as much as the
    // sweep; cap its reps so a full regeneration stays interactive.
    let reps = if scale.name == "large" {
        reps.min(2)
    } else {
        reps
    };
    eprintln!(
        "sweep_report: scale={} n={} K={} m={} build {:.3} ms (threads={threads} reps={reps})",
        scale.name,
        instance.num_users(),
        instance.num_uavs(),
        instance.num_locations(),
        build_ns as f64 / 1e6,
    );

    let runs: Vec<String> = scale
        .s_sweep
        .iter()
        .map(|&s| {
            let report = measure(instance, s, threads, reps);
            eprintln!(
                "  s={s}: mean {:.3} ms, {} gain queries, {:.0} queries/s",
                report.wall_ns_mean as f64 / 1e6,
                report.stats.gain_queries,
                queries_per_sec(report.stats.gain_queries, report.wall_ns_mean)
            );
            run_json(&report, threads, scale.name == "quick")
        })
        .collect();

    format!(
        "    {{\n      \"scale\": \"{name}\",\n      \
         \"instance\": {{\n        \"users\": {n},\n        \"uavs\": {k},\n        \
         \"candidate_locations\": {m},\n        \"build_ns\": {build_ns}\n      }},\n      \
         \"runs\": [\n{runs}\n      ]\n    }}",
        name = scale.name,
        n = instance.num_users(),
        k = instance.num_uavs(),
        m = instance.num_locations(),
        runs = runs.join(",\n"),
    )
}

fn main() {
    let mut threads = 2usize;
    let mut reps = 20u32;
    let mut out = String::from("BENCH_sweep.json");
    let mut which = String::from("quick");
    let mut obs_log: Option<String> = None;
    let mut obs_metrics: Option<String> = None;
    let mut obs_prom: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--threads" => threads = value("--threads").parse().expect("integer thread count"),
            "--reps" => reps = value("--reps").parse().expect("integer rep count"),
            "--out" => out = value("--out"),
            "--scale" => which = value("--scale"),
            "--obs-log" => obs_log = Some(value("--obs-log")),
            "--obs-metrics" => obs_metrics = Some(value("--obs-metrics")),
            "--obs-prom" => obs_prom = Some(value("--obs-prom")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(reps > 0, "--reps must be positive");
    let scales: Vec<Scale> = match which.as_str() {
        "quick" => vec![Scale::quick()],
        "large" => vec![Scale::large()],
        "all" => vec![Scale::quick(), Scale::large()],
        other => panic!("unknown --scale {other:?} (expected quick|large|all)"),
    };

    let want_obs = obs_log.is_some() || obs_metrics.is_some() || obs_prom.is_some();
    if want_obs && !uavnet_obs::is_enabled() {
        eprintln!(
            "sweep_report: --obs-log/--obs-metrics/--obs-prom need the instrumentation \
             compiled in; rebuild with `--features obs`"
        );
        std::process::exit(2);
    }

    // Instances are built before the recording window opens so the
    // session header can carry their combined fingerprint; per-run
    // work (substrate builds included) still happens inside it.
    let prepared: Vec<(Scale, Instance, u64)> = scales
        .into_iter()
        .map(|scale| {
            let t_build = Instant::now();
            let instance = scale.instance(scale.n_max(), scale.k_max());
            let build_ns = t_build.elapsed().as_nanos() as u64;
            (scale, instance, build_ns)
        })
        .collect();

    if want_obs {
        let mut provenance = uavnet_obs::Provenance::detect();
        provenance.features = if uavnet_obs::is_enabled() {
            "obs,enabled".to_string()
        } else {
            String::new()
        };
        provenance.threads = threads as u64;
        provenance.instance_fingerprint = prepared
            .iter()
            .fold(0xcbf2_9ce4_8422_2325, |h: u64, (_, instance, _)| {
                (h ^ instance.fingerprint()).wrapping_mul(0x0100_0000_01b3)
            });
        assert!(
            uavnet_obs::session_begin_with(provenance),
            "obs session already active"
        );
    }

    let scale_blocks: Vec<String> = {
        // All recorded spans nest under this root, so the event log
        // forms a single rooted tree (a no-op without a session).
        let _report_span = uavnet_obs::phases::REPORT.span();
        prepared
            .iter()
            .map(|(scale, instance, build_ns)| {
                scale_json(scale, instance, *build_ns, threads, reps)
            })
            .collect()
    };

    if want_obs {
        let snap = uavnet_obs::session_end().expect("obs session was begun above");
        let events = uavnet_obs::drain_events();
        if let Some(path) = &obs_log {
            let mut lines = String::with_capacity(events.len() * 64);
            for e in &events {
                lines.push_str(&e.to_json_line());
                lines.push('\n');
            }
            std::fs::write(path, lines).expect("write obs event log");
            eprintln!("sweep_report: wrote {path} ({} events)", events.len());
        }
        if let Some(path) = &obs_metrics {
            std::fs::write(path, snap.to_json()).expect("write obs metrics snapshot");
            eprintln!("sweep_report: wrote {path}");
        }
        if let Some(path) = &obs_prom {
            std::fs::write(path, snap.to_prometheus()).expect("write obs prometheus export");
            eprintln!("sweep_report: wrote {path}");
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"sweep_hotpath\",\n  \
         \"baseline\": \"fig6_s_sweep means at the growth seed (pre-optimization), threads = 2; quick scale only\",\n  \
         \"regenerate\": \"cargo run --release -p uavnet-bench --bin sweep_report -- --scale all\",\n  \
         \"scales\": [\n{blocks}\n  ]\n}}\n",
        blocks = scale_blocks.join(",\n"),
    );
    std::fs::write(&out, json).expect("write report");
    eprintln!("sweep_report: wrote {out}");
}
