//! Loopback smoke benchmark for the long-running solver service
//! (`uavnet-service`): drives a pinned-scale instance through a real
//! TCP delta stream with per-request trace ids, checks the published
//! deployment is bit-identical to an in-process [`SolverLoop`] twin,
//! runs verify oracle 7 ([`check_incremental`]) over the same delta
//! mix, scrapes `/metrics` when the obs instrumentation is compiled
//! in, and merges a `service` section — including per-stage
//! queue-wait / apply / repair / publish latency percentiles — into
//! `BENCH_sweep.json`.
//!
//! Usage: `cargo run --release -p uavnet-bench --bin service_report --
//! [--scale quick|large] [--threads N] [--ticks N] [--out PATH]
//! [--obs-log PATH] [--obs-metrics PATH] [--obs-prom PATH]
//! [--trace-out PATH]`
//!
//! The obs flags need the instrumentation compiled in (`--features
//! obs`): `--obs-log` writes the `uavnet-obs/3` event log,
//! `--obs-metrics`/`--obs-prom` the final snapshot (JSON /
//! Prometheus), and `--trace-out` a Chrome trace-event file of the
//! span tree, loadable in Perfetto (`ui.perfetto.dev`).
//!
//! The report *merges*: an existing `--out` file keeps every other
//! top-level section (sweep and resolve evidence) and only the
//! `service` member is replaced.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use uavnet_bench::json::Json;
use uavnet_bench::Scale;
use uavnet_core::{check_incremental, ApproxConfig, Delta, Instance, LoopConfig, SolverLoop};
use uavnet_service::{
    proto::TOPIC_DEPLOYMENTS, ClientConfig, Reply, ServiceClient, ServiceConfig, SolverService,
};
use uavnet_workload::{MobilityModel, MobilitySimulator};

/// Per-step Gaussian displacement (m) and the jitter threshold,
/// matching `resolve_report`'s mobility stream.
const MOBILITY_SIGMA_M: f64 = 25.0;
const MOBILITY_THRESHOLD_M: f64 = 5.0;

const USAGE: &str = "usage: service_report [--scale quick|large] [--threads N] [--ticks N] \
                     [--out PATH] [--obs-log PATH] [--obs-metrics PATH] [--obs-prom PATH] \
                     [--trace-out PATH]";

fn fail_usage(msg: &str) -> ! {
    eprintln!("service_report: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(raw: &str, name: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| fail_usage(&format!("{name} expects a number, got {raw:?}")))
}

/// Scale-aware tuning knob kept next to the numbers it shapes
/// (mirrors `resolve_report`).
trait Tuned {
    fn tuned_for(self, scale: &Scale) -> Self;
}

impl Tuned for LoopConfig {
    fn tuned_for(mut self, scale: &Scale) -> Self {
        // Quick's 5×5 grid fits one tile per station neighborhood at
        // side 2; the large 20×20 grid gets the default 16-cell tiles.
        if scale.name == "quick" {
            self.tile_cells = 2;
        }
        self
    }
}

/// The streamed workload: `ticks` mobility batches with a UAV kill
/// spliced into the middle — the disaster the service exists to
/// absorb online.
fn delta_stream(instance: &Instance, ticks: usize, seed: u64) -> Vec<Delta> {
    let mut sim = MobilitySimulator::new(
        instance.grid().spec().area(),
        instance.users().iter().map(|u| u.pos).collect(),
        MobilityModel::GaussianWalk {
            sigma_m: MOBILITY_SIGMA_M,
        },
        seed,
    );
    let mut deltas = Vec::with_capacity(ticks + 1);
    for tick in 0..ticks {
        if tick == ticks / 2 {
            deltas.push(Delta::KillUavs(vec![0]));
        }
        deltas.push(Delta::UserMoved(sim.step_deltas(MOBILITY_THRESHOLD_M)));
    }
    deltas
}

fn median_ns(samples: &mut [u64]) -> u64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Minimal HTTP GET against the service telemetry endpoint.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect telemetry endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read http response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("http header terminator");
    (
        head.lines().next().unwrap_or_default().to_string(),
        body.to_string(),
    )
}

/// One per-stage latency block for the report: sample count and
/// p50/p90/p99 nanoseconds.
fn stage_json(count: u64, p50: u64, p90: u64, p99: u64) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::Num(count as f64)),
        ("p50_ns".into(), Json::Num(p50 as f64)),
        ("p90_ns".into(), Json::Num(p90 as f64)),
        ("p99_ns".into(), Json::Num(p99 as f64)),
    ])
}

fn main() {
    let mut scale_name = String::from("quick");
    let mut threads = 2usize;
    let mut ticks: Option<usize> = None;
    let mut out = String::from("BENCH_sweep.json");
    let mut obs_log: Option<String> = None;
    let mut obs_metrics: Option<String> = None;
    let mut obs_prom: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail_usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--scale" => scale_name = value("--scale"),
            "--threads" => threads = parse_flag(&value("--threads"), "--threads"),
            "--ticks" => ticks = Some(parse_flag(&value("--ticks"), "--ticks")),
            "--out" => out = value("--out"),
            "--obs-log" => obs_log = Some(value("--obs-log")),
            "--obs-metrics" => obs_metrics = Some(value("--obs-metrics")),
            "--obs-prom" => obs_prom = Some(value("--obs-prom")),
            "--trace-out" => trace_out = Some(value("--trace-out")),
            other => fail_usage(&format!("unknown argument {other:?}")),
        }
    }
    if threads == 0 {
        fail_usage("--threads must be positive");
    }
    let scale = match scale_name.as_str() {
        "quick" => Scale::quick(),
        "large" => Scale::large(),
        other => fail_usage(&format!("--scale wants quick or large, got {other:?}")),
    };
    // Large runs default shorter: every delta also cold-rescored by
    // the oracle, and a 100k-user rescore dominates the wall clock.
    let ticks = ticks.unwrap_or(if scale.name == "quick" { 24 } else { 6 });
    if ticks == 0 {
        fail_usage("--ticks must be positive");
    }

    let want_obs =
        obs_log.is_some() || obs_metrics.is_some() || obs_prom.is_some() || trace_out.is_some();
    if want_obs && !uavnet_obs::is_enabled() {
        eprintln!(
            "service_report: --obs-log/--obs-metrics/--obs-prom/--trace-out need the \
             instrumentation compiled in; rebuild with `--features obs`"
        );
        std::process::exit(2);
    }

    let instance = scale.instance(scale.n_max(), scale.k_max());
    let loop_config = LoopConfig::new(ApproxConfig::with_s(1).threads(threads)).tuned_for(&scale);
    let deltas = delta_stream(&instance, ticks, scale.seed ^ 0x5e51);

    // The in-process twin the wire protocol must coincide with.
    let mut twin =
        SolverLoop::new(instance.clone(), loop_config.clone()).expect("in-process solver");
    let served_first = twin.served_users();

    // The report owns the obs session (rather than handing it to the
    // service via `record_obs`): the in-process twin and the oracle
    // replay run on this thread inside the same session, and the
    // report-level root span below keeps the whole log — twin, oracle
    // and the service worker's tree, attached via the explicit parent
    // handle — one rooted tree.
    let record_obs = uavnet_obs::is_enabled();
    if record_obs {
        let mut provenance = uavnet_obs::Provenance::detect();
        provenance.features = "obs,enabled".to_string();
        provenance.threads = threads as u64;
        provenance.instance_fingerprint =
            (0xcbf2_9ce4_8422_2325u64 ^ instance.fingerprint()).wrapping_mul(0x0100_0000_01b3);
        uavnet_obs::try_session_begin_with(provenance)
            .expect("begin obs session for the service run");
    }
    let report_span = uavnet_obs::phases::REPORT.span();
    let handle = SolverService::spawn(
        instance.clone(),
        loop_config,
        ServiceConfig {
            obs_parent: report_span.handle(),
            ..ServiceConfig::default()
        },
    )
    .expect("spawn solver service");

    let mut subscriber =
        ServiceClient::connect(handle.addr(), ClientConfig::default()).expect("connect subscriber");
    subscriber
        .subscribe(&[TOPIC_DEPLOYMENTS])
        .expect("subscribe deployments");
    let mut publisher =
        ServiceClient::connect(handle.addr(), ClientConfig::default()).expect("connect publisher");

    // The client measures publish RTT itself (send → ack) and the
    // server echoes each trace id on the ack and stamps it on the
    // correlated deployment frame.
    let mut rtt_ns: Vec<u64> = Vec::with_capacity(deltas.len());
    let mut deployments = 0u64;
    for (i, delta) in deltas.iter().enumerate() {
        let trace_id = format!("delta-{i}");
        let receipt = publisher
            .publish_traced(delta, Some(&trace_id))
            .expect("publish delta");
        assert_eq!(
            receipt.trace_id.as_deref(),
            Some(trace_id.as_str()),
            "delta {i}: ack must echo the trace id"
        );
        rtt_ns.push(receipt.rtt.as_nanos() as u64);
        let local = twin.apply(delta.clone()).expect("twin apply");
        let remote = &receipt.outcome;
        assert_eq!(
            (remote.served, remote.dirty_tiles, remote.dropped_placements),
            (local.served, local.dirty_tiles, local.dropped_placements),
            "delta {i}: wire outcome diverged from the in-process solver"
        );
        match subscriber.next_event().expect("deployment event") {
            Reply::Deployment(dep) => {
                deployments += 1;
                assert_eq!(
                    dep.trace_id.as_deref(),
                    Some(trace_id.as_str()),
                    "delta {i}: deployment frame must carry the trace id"
                );
                assert_eq!(
                    dep.placements,
                    twin.placements().to_vec(),
                    "delta {i}: published deployment diverged"
                );
            }
            other => panic!("expected deployment event, got {other:?}"),
        }
    }

    // Bit-identity of the final deployment over the wire.
    let snap = publisher.snapshot().expect("final snapshot");
    assert_eq!(snap.placements, twin.placements().to_vec());
    assert_eq!(snap.served, twin.served_users());
    let served_last = snap.served;

    // Verify oracle 7 over the same delta mix: the incremental result
    // equals a cold rescore at every step.
    check_incremental(
        &instance,
        &ApproxConfig::with_s(1).threads(threads),
        &deltas,
    )
    .expect("verify oracle 7 rejected the incremental solver");

    // Scrape live telemetry while the service still runs.
    let (health_status, _) = http_get(handle.http_addr(), "/healthz");
    assert!(health_status.contains("200"), "got: {health_status}");
    let (metrics_status, metrics_body) = http_get(handle.http_addr(), "/metrics");
    assert!(metrics_status.contains("200"), "got: {metrics_status}");
    assert!(metrics_body.contains("uavnet_service_healthy 1"));
    assert!(metrics_body.contains(&format!(
        "uavnet_service_deltas_applied_total {}",
        deltas.len()
    )));
    if record_obs {
        assert!(
            metrics_body.contains("uavnet_resolve_deltas_total"),
            "obs build must scrape live resolve.* counters:\n{metrics_body}"
        );
        assert!(
            metrics_body.contains("uavnet_service_uptime_seconds"),
            "obs build must scrape service gauges:\n{metrics_body}"
        );
    }

    let summary = handle.shutdown_and_join().expect("service summary");
    assert_eq!(summary.epochs, deltas.len() as u64);
    assert!(summary.worker_panic.is_none());
    assert_eq!(summary.placements, twin.placements().to_vec());

    // Close the report root (the worker's root, its child, already
    // closed at drain) and end the session we began.
    drop(report_span);
    let metrics = if record_obs {
        Some(uavnet_obs::session_end().expect("active session yields a snapshot"))
    } else {
        None
    };

    // Per-stage latency attribution from the recorded session:
    // queue-wait / apply / publish from the `service.*` phases, repair
    // from the solver's repair histogram.
    let mut stages: Vec<(String, Json)> = Vec::new();
    if let Some(metrics) = &metrics {
        for (label, phase) in [
            ("queue_wait", "service.queue_wait"),
            ("apply", "service.apply"),
            ("publish", "service.publish"),
        ] {
            let p = metrics
                .phase(phase)
                .unwrap_or_else(|| panic!("recorded session must carry phase {phase}"));
            assert_eq!(
                p.count,
                deltas.len() as u64,
                "{phase}: one span per published delta"
            );
            stages.push((
                label.into(),
                stage_json(p.count, p.p50_ns, p.p90_ns, p.p99_ns),
            ));
        }
        let repair = metrics
            .hist("resolve.repair_ns")
            .expect("recorded session must carry the repair histogram");
        stages.push((
            "repair".into(),
            stage_json(repair.count, repair.p50_ns, repair.p90_ns, repair.p99_ns),
        ));
    }

    // Obs artifacts: the session is closed, so the buffered events
    // are the complete single-root log.
    if want_obs {
        let metrics = metrics
            .as_ref()
            .expect("obs builds record the service session");
        let events = uavnet_obs::drain_events();
        if let Some(path) = &obs_log {
            let mut lines = String::with_capacity(events.len() * 64);
            for e in &events {
                lines.push_str(&e.to_json_line());
                lines.push('\n');
            }
            std::fs::write(path, lines).expect("write obs event log");
            eprintln!("service_report: wrote {path} ({} events)", events.len());
        }
        if let Some(path) = &obs_metrics {
            std::fs::write(path, metrics.to_json()).expect("write obs metrics snapshot");
            eprintln!("service_report: wrote {path}");
        }
        if let Some(path) = &obs_prom {
            std::fs::write(path, metrics.to_prometheus()).expect("write obs prometheus export");
            eprintln!("service_report: wrote {path}");
        }
        if let Some(path) = &trace_out {
            std::fs::write(path, uavnet_obs::dump_trace_event(&events))
                .expect("write trace-event file");
            eprintln!("service_report: wrote {path} (load at ui.perfetto.dev)");
        }
    }

    let rtt_median = median_ns(&mut rtt_ns);
    eprintln!(
        "service_report: {} n={} K={} deltas={} -> {} deployments published, \
         served {} -> {}, median publish rtt {:.3} ms, bit-identical, oracle ok",
        scale.name,
        instance.num_users(),
        instance.num_uavs(),
        deltas.len(),
        deployments,
        served_first,
        served_last,
        rtt_median as f64 / 1e6,
    );

    let mut section_members = vec![
        ("scale".into(), Json::Str(scale.name.into())),
        ("users".into(), Json::Num(instance.num_users() as f64)),
        ("uavs".into(), Json::Num(instance.num_uavs() as f64)),
        ("threads".into(), Json::Num(threads as f64)),
        ("deltas".into(), Json::Num(deltas.len() as f64)),
        (
            "deployments_published".into(),
            Json::Num(deployments as f64),
        ),
        ("served_first".into(), Json::Num(served_first as f64)),
        ("served_last".into(), Json::Num(served_last as f64)),
        ("publish_rtt_median_ns".into(), Json::Num(rtt_median as f64)),
        ("trace_ids_round_tripped".into(), Json::Bool(true)),
        ("bit_identical_to_in_process".into(), Json::Bool(true)),
        ("incremental_equals_cold".into(), Json::Bool(true)),
        ("metrics_scraped_live".into(), Json::Bool(record_obs)),
        ("repairs".into(), Json::Num(summary.stats.repairs as f64)),
        (
            "relays_spent".into(),
            Json::Num(summary.stats.relays_spent as f64),
        ),
    ];
    if !stages.is_empty() {
        section_members.push(("stages".into(), Json::Obj(stages)));
    }
    let section = Json::Obj(section_members);

    // Merge: keep every other top-level section of an existing report.
    let mut doc = match std::fs::read_to_string(&out) {
        Ok(text) => Json::parse(&text).unwrap_or_else(|e| {
            panic!("existing {out} is not valid JSON ({e}); refusing to clobber")
        }),
        Err(_) => Json::Obj(vec![(
            "benchmark".into(),
            Json::Str("sweep_hotpath".into()),
        )]),
    };
    doc.set("service", section);
    std::fs::write(&out, doc.dump()).expect("write report");
    eprintln!("service_report: wrote {out}");
}
