//! Loopback smoke benchmark for the long-running solver service
//! (`uavnet-service`): drives the quick-scale instance through a real
//! TCP delta stream, checks the published deployment is bit-identical
//! to an in-process [`SolverLoop`] twin, runs verify oracle 7
//! ([`check_incremental`]) over the same delta mix, scrapes
//! `/metrics` when the obs instrumentation is compiled in, and merges
//! a `service` section into `BENCH_sweep.json`.
//!
//! Usage: `cargo run --release -p uavnet-bench --bin service_report --
//! [--threads N] [--ticks N] [--out PATH]`
//!
//! The report *merges*: an existing `--out` file keeps every other
//! top-level section (sweep and resolve evidence) and only the
//! `service` member is replaced.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use uavnet_bench::json::Json;
use uavnet_bench::Scale;
use uavnet_core::{check_incremental, ApproxConfig, Delta, Instance, LoopConfig, SolverLoop};
use uavnet_service::{
    proto::TOPIC_DEPLOYMENTS, ClientConfig, Reply, ServiceClient, ServiceConfig, SolverService,
};
use uavnet_workload::{MobilityModel, MobilitySimulator};

/// Per-step Gaussian displacement (m) and the jitter threshold,
/// matching `resolve_report`'s mobility stream.
const MOBILITY_SIGMA_M: f64 = 25.0;
const MOBILITY_THRESHOLD_M: f64 = 5.0;

const USAGE: &str = "usage: service_report [--threads N] [--ticks N] [--out PATH]";

fn fail_usage(msg: &str) -> ! {
    eprintln!("service_report: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(raw: &str, name: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| fail_usage(&format!("{name} expects a number, got {raw:?}")))
}

/// The streamed workload: `ticks` mobility batches with a UAV kill
/// spliced into the middle — the disaster the service exists to
/// absorb online.
fn delta_stream(instance: &Instance, ticks: usize, seed: u64) -> Vec<Delta> {
    let mut sim = MobilitySimulator::new(
        instance.grid().spec().area(),
        instance.users().iter().map(|u| u.pos).collect(),
        MobilityModel::GaussianWalk {
            sigma_m: MOBILITY_SIGMA_M,
        },
        seed,
    );
    let mut deltas = Vec::with_capacity(ticks + 1);
    for tick in 0..ticks {
        if tick == ticks / 2 {
            deltas.push(Delta::KillUavs(vec![0]));
        }
        deltas.push(Delta::UserMoved(sim.step_deltas(MOBILITY_THRESHOLD_M)));
    }
    deltas
}

fn median_ns(samples: &mut [u64]) -> u64 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Minimal HTTP GET against the service telemetry endpoint.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect telemetry endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read http response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("http header terminator");
    (
        head.lines().next().unwrap_or_default().to_string(),
        body.to_string(),
    )
}

fn main() {
    let mut threads = 2usize;
    let mut ticks = 24usize;
    let mut out = String::from("BENCH_sweep.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail_usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--threads" => threads = parse_flag(&value("--threads"), "--threads"),
            "--ticks" => ticks = parse_flag(&value("--ticks"), "--ticks"),
            "--out" => out = value("--out"),
            other => fail_usage(&format!("unknown argument {other:?}")),
        }
    }
    if threads == 0 {
        fail_usage("--threads must be positive");
    }
    if ticks == 0 {
        fail_usage("--ticks must be positive");
    }

    let scale = Scale::quick();
    let instance = scale.instance(scale.n_max(), scale.k_max());
    let mut loop_config = LoopConfig::new(ApproxConfig::with_s(1).threads(threads));
    loop_config.tile_cells = 2;
    let deltas = delta_stream(&instance, ticks, scale.seed ^ 0x5e51);

    // The in-process twin the wire protocol must coincide with.
    let mut twin =
        SolverLoop::new(instance.clone(), loop_config.clone()).expect("in-process solver");
    let served_first = twin.served_users();

    let record_obs = uavnet_obs::is_enabled();
    let handle = SolverService::spawn(
        instance.clone(),
        loop_config,
        ServiceConfig {
            record_obs,
            ..ServiceConfig::default()
        },
    )
    .expect("spawn solver service");

    let mut subscriber =
        ServiceClient::connect(handle.addr(), ClientConfig::default()).expect("connect subscriber");
    subscriber
        .subscribe(&[TOPIC_DEPLOYMENTS])
        .expect("subscribe deployments");
    let mut publisher =
        ServiceClient::connect(handle.addr(), ClientConfig::default()).expect("connect publisher");

    let mut rtt_ns: Vec<u64> = Vec::with_capacity(deltas.len());
    let mut deployments = 0u64;
    for (i, delta) in deltas.iter().enumerate() {
        let t = Instant::now();
        let remote = publisher.publish(delta).expect("publish delta");
        rtt_ns.push(t.elapsed().as_nanos() as u64);
        let local = twin.apply(delta.clone()).expect("twin apply");
        assert_eq!(
            (remote.served, remote.dirty_tiles, remote.dropped_placements),
            (local.served, local.dirty_tiles, local.dropped_placements),
            "delta {i}: wire outcome diverged from the in-process solver"
        );
        match subscriber.next_event().expect("deployment event") {
            Reply::Deployment(dep) => {
                deployments += 1;
                assert_eq!(
                    dep.placements,
                    twin.placements().to_vec(),
                    "delta {i}: published deployment diverged"
                );
            }
            other => panic!("expected deployment event, got {other:?}"),
        }
    }

    // Bit-identity of the final deployment over the wire.
    let snap = publisher.snapshot().expect("final snapshot");
    assert_eq!(snap.placements, twin.placements().to_vec());
    assert_eq!(snap.served, twin.served_users());
    let served_last = snap.served;

    // Verify oracle 7 over the same delta mix: the incremental result
    // equals a cold rescore at every step.
    check_incremental(
        &instance,
        &ApproxConfig::with_s(1).threads(threads),
        &deltas,
    )
    .expect("verify oracle 7 rejected the incremental solver");

    // Scrape live telemetry while the service still runs.
    let (health_status, _) = http_get(handle.http_addr(), "/healthz");
    assert!(health_status.contains("200"), "got: {health_status}");
    let (metrics_status, metrics_body) = http_get(handle.http_addr(), "/metrics");
    assert!(metrics_status.contains("200"), "got: {metrics_status}");
    assert!(metrics_body.contains("uavnet_service_healthy 1"));
    assert!(metrics_body.contains(&format!(
        "uavnet_service_deltas_applied_total {}",
        deltas.len()
    )));
    if record_obs {
        assert!(
            metrics_body.contains("uavnet_resolve_deltas_total"),
            "obs build must scrape live resolve.* counters:\n{metrics_body}"
        );
    }

    let summary = handle.shutdown_and_join().expect("service summary");
    assert_eq!(summary.epochs, deltas.len() as u64);
    assert!(summary.worker_panic.is_none());
    assert_eq!(summary.placements, twin.placements().to_vec());

    let rtt_median = median_ns(&mut rtt_ns);
    eprintln!(
        "service_report: quick n={} K={} deltas={} -> {} deployments published, \
         served {} -> {}, median publish rtt {:.3} ms, bit-identical, oracle ok",
        instance.num_users(),
        instance.num_uavs(),
        deltas.len(),
        deployments,
        served_first,
        served_last,
        rtt_median as f64 / 1e6,
    );

    let section = Json::Obj(vec![
        ("users".into(), Json::Num(instance.num_users() as f64)),
        ("uavs".into(), Json::Num(instance.num_uavs() as f64)),
        ("threads".into(), Json::Num(threads as f64)),
        ("deltas".into(), Json::Num(deltas.len() as f64)),
        (
            "deployments_published".into(),
            Json::Num(deployments as f64),
        ),
        ("served_first".into(), Json::Num(served_first as f64)),
        ("served_last".into(), Json::Num(served_last as f64)),
        ("publish_rtt_median_ns".into(), Json::Num(rtt_median as f64)),
        ("bit_identical_to_in_process".into(), Json::Bool(true)),
        ("incremental_equals_cold".into(), Json::Bool(true)),
        ("metrics_scraped_live".into(), Json::Bool(record_obs)),
        ("repairs".into(), Json::Num(summary.stats.repairs as f64)),
        (
            "relays_spent".into(),
            Json::Num(summary.stats.relays_spent as f64),
        ),
    ]);

    // Merge: keep every other top-level section of an existing report.
    let mut doc = match std::fs::read_to_string(&out) {
        Ok(text) => Json::parse(&text).unwrap_or_else(|e| {
            panic!("existing {out} is not valid JSON ({e}); refusing to clobber")
        }),
        Err(_) => Json::Obj(vec![(
            "benchmark".into(),
            Json::Str("sweep_hotpath".into()),
        )]),
    };
    doc.set("service", section);
    std::fs::write(&out, doc.dump()).expect("write report");
    eprintln!("service_report: wrote {out}");
}
