//! Benchmark harness regenerating every figure of the paper's
//! evaluation (§IV).
//!
//! The paper reports four results, each reproduced by a function here
//! and runnable through the `figures` binary:
//!
//! | id | paper | here |
//! |----|-------|------|
//! | FIG4 | served users vs `K = 2…20` (`n = 3000`, `s = 3`) | [`fig4`] |
//! | FIG5 | served users vs `n = 1000…3000` (`K = 20`, `s = 3`) | [`fig5`] |
//! | FIG6A | served users vs `s = 1…4` (`n = 3000`, `K = 20`) | [`fig6`] |
//! | FIG6B | running time vs `s = 1…4` | [`fig6`] (timed) |
//!
//! Absolute numbers are not expected to match the authors' testbed;
//! the *shape* — who wins, by roughly what factor, where the curves
//! bend — is the reproduction target (see EXPERIMENTS.md). The
//! [`Scale`] type trades grid resolution and user counts for runtime;
//! `Scale::paper()` uses the published parameters verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Hand-rolled JSON reader/writer, now shared with the solver
/// service protocol; re-exported so the bench bins keep their
/// `uavnet_bench::json::Json` path.
pub use uavnet_json as json;

use std::time::Instant;
use uavnet_baselines::{
    DeploymentAlgorithm, GreedyAssign, MaxThroughput, Mcs, MotionCtrl, RandomConnected,
};
use uavnet_core::{
    approx_alg, ApproxConfig, CoreError, Instance, SeedStrategyKind, Solution, DEFAULT_BEAM_WIDTH,
};
use uavnet_workload::{ScenarioSpec, UserDistribution};

/// `approAlg` wrapped as a [`DeploymentAlgorithm`], clamping `s` to
/// the fleet size (the paper plots `K = 2` with `s = 3`, which only
/// makes sense as `s = min(s, K)`).
#[derive(Debug, Clone, Copy)]
pub struct Appro {
    /// The seed-subset size `s`.
    pub s: usize,
    /// Worker threads for the subset sweep.
    pub threads: usize,
}

impl DeploymentAlgorithm for Appro {
    fn name(&self) -> &'static str {
        "approAlg"
    }

    fn deploy(&self, instance: &Instance) -> Result<Solution, CoreError> {
        let s = self.s.min(instance.num_uavs());
        approx_alg(instance, &ApproxConfig::with_s(s).threads(self.threads))
    }
}

/// Experiment scale: geometry resolution and sweep ranges.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Human-readable label printed in table headers.
    pub name: &'static str,
    /// Zone side length in meters (square zone).
    pub area_side_m: f64,
    /// Grid cell side `λ` in meters.
    pub cell_m: f64,
    /// User counts for the FIG5 sweep; its maximum is FIG4/FIG6's `n`.
    pub n_sweep: Vec<usize>,
    /// Fleet sizes for the FIG4 sweep; its maximum is FIG5/FIG6's `K`.
    pub k_sweep: Vec<usize>,
    /// Seed counts for the FIG6 sweep.
    pub s_sweep: Vec<usize>,
    /// The `s` used by `approAlg` in FIG4/FIG5.
    pub s_default: usize,
    /// Scenario repetitions per point in FIG4/FIG5 (served counts are
    /// averaged); FIG6 always uses one trial because it reports
    /// wall-clock times.
    pub trials: usize,
    /// RNG seed for scenario generation.
    pub seed: u64,
    /// Default measured repetitions for the `sweep_report` evidence
    /// run (overridable with its `--reps` flag). Scales dominated by
    /// instance construction keep this low so a full regeneration
    /// stays interactive.
    pub reps: u32,
    /// Whether `sweep_report` solves this scale through the
    /// tile-sharded sweep ([`uavnet_core::approx_alg_sharded`])
    /// instead of the monolithic one. The two are bit-identical by
    /// the sharding oracle; the sharded path exists for scales whose
    /// coverage tables no longer fit comfortably in cache.
    pub sharded: bool,
    /// Whether `sweep_report` runs the sharded-vs-monolithic
    /// differential oracle ([`uavnet_core::check_sharded_sweep`]) on
    /// this scale and records the verdict in the JSON report.
    pub check_sharded: bool,
    /// Seed-strategy comparison matrix for the BENCH_sweep.json
    /// `strategy` section: `(s, strategies)` rows, each running every
    /// listed strategy on the same instance so speedups and served
    /// ratios are apples-to-apples. Kept separate from `s_sweep` (the
    /// exhaustive wall-time evidence) because guided strategies unlock
    /// `s` values the exhaustive sweep cannot finish.
    pub strategy_sweep: Vec<(usize, Vec<SeedStrategyKind>)>,
}

impl Scale {
    /// Tiny scale for CI and Criterion micro-runs (seconds).
    pub fn quick() -> Self {
        Scale {
            name: "quick",
            area_side_m: 1_500.0,
            cell_m: 300.0,
            n_sweep: vec![40, 80, 120],
            k_sweep: vec![2, 4, 6],
            s_sweep: vec![1, 2],
            s_default: 2,
            trials: 2,
            seed: 1,
            reps: 20,
            sharded: false,
            check_sharded: true,
            strategy_sweep: vec![(
                2,
                vec![
                    SeedStrategyKind::Exhaustive,
                    SeedStrategyKind::BoundPruned,
                    SeedStrategyKind::Beam {
                        width: DEFAULT_BEAM_WIDTH,
                    },
                ],
            )],
        }
    }

    /// Laptop scale (default of the `figures` binary): the paper's
    /// 3 km × 3 km zone and capacity range, with a 300 m grid
    /// (`m = 100` candidates instead of 3 600) and a 5× reduced user
    /// population, preserving the users-per-capacity ratio trends.
    pub fn laptop() -> Self {
        Scale {
            name: "laptop",
            area_side_m: 3_000.0,
            cell_m: 300.0,
            n_sweep: vec![200, 300, 400, 500, 600],
            k_sweep: vec![2, 4, 6, 8, 10, 12, 14, 16, 18, 20],
            s_sweep: vec![1, 2, 3],
            s_default: 3,
            trials: 3,
            seed: 20_230_101,
            reps: 5,
            sharded: false,
            check_sharded: false,
            strategy_sweep: Vec::new(),
        }
    }

    /// Stress scale for the instance-construction and connectivity
    /// layers: 100 000 users on a 6 km × 6 km zone (m = 400
    /// candidates). Only feasible because the coverage tables are
    /// built through the grid-binned spatial index — the all-pairs
    /// scan is quadratic in `users × locations` at this size. One
    /// `s = 1` sweep point; used by the `sweep_report --scale large`
    /// evidence run.
    pub fn large() -> Self {
        Scale {
            name: "large",
            area_side_m: 6_000.0,
            cell_m: 300.0,
            n_sweep: vec![100_000],
            k_sweep: vec![8],
            s_sweep: vec![1],
            s_default: 1,
            trials: 1,
            seed: 7,
            reps: 2,
            sharded: false,
            check_sharded: true,
            strategy_sweep: vec![
                (
                    2,
                    vec![SeedStrategyKind::Exhaustive, SeedStrategyKind::BoundPruned],
                ),
                (
                    3,
                    vec![SeedStrategyKind::Beam {
                        width: DEFAULT_BEAM_WIDTH,
                    }],
                ),
            ],
        }
    }

    /// The scale ceiling: one million users on a 12 km × 12 km zone
    /// (m = 1 600 candidates). Exists to exercise the compressed
    /// coverage tables (packed bitsets / run-length lists keep the
    /// footprint O(users)) and the tile-sharded sweep, which solves
    /// the 40 × 40 cell grid as 5 × 5 tiles of 8 × 8 cells with
    /// per-tile instance views. Used by the
    /// `sweep_report --scale xlarge` evidence run.
    pub fn xlarge() -> Self {
        Scale {
            name: "xlarge",
            area_side_m: 12_000.0,
            cell_m: 300.0,
            n_sweep: vec![1_000_000],
            k_sweep: vec![8],
            s_sweep: vec![1],
            s_default: 1,
            trials: 1,
            seed: 11,
            reps: 1,
            sharded: true,
            check_sharded: false,
            strategy_sweep: Vec::new(),
        }
    }

    /// The paper's published parameters (λ = 50 m ⇒ m = 3 600
    /// candidates, n up to 3 000). `approAlg` with `s ≥ 2` at this
    /// scale reproduces the paper's own 95 s – 47 min runtimes and
    /// beyond; reserve for overnight runs.
    pub fn paper() -> Self {
        Scale {
            name: "paper",
            area_side_m: 3_000.0,
            cell_m: 50.0,
            n_sweep: vec![1_000, 1_500, 2_000, 2_500, 3_000],
            k_sweep: vec![2, 4, 6, 8, 10, 12, 14, 16, 18, 20],
            s_sweep: vec![1, 2, 3, 4],
            s_default: 3,
            trials: 1,
            seed: 20_230_101,
            reps: 1,
            sharded: false,
            check_sharded: false,
            strategy_sweep: Vec::new(),
        }
    }

    /// Builds the instance for `n` users and `k` UAVs at this scale.
    ///
    /// # Panics
    ///
    /// Panics if the scale parameters are inconsistent (programmer
    /// error in a hand-built scale).
    pub fn instance(&self, n: usize, k: usize) -> Instance {
        self.instance_for_trial(n, k, 0)
    }

    /// Like [`Scale::instance`] with a per-trial seed offset.
    pub fn instance_for_trial(&self, n: usize, k: usize, trial: u64) -> Instance {
        ScenarioSpec::builder()
            .area_m(self.area_side_m, self.area_side_m)
            .cell_m(self.cell_m)
            .users(n)
            .distribution(UserDistribution::FatTailed {
                clusters: 12,
                zipf_exponent: 1.2,
            })
            .uavs(k)
            .capacity_range(self.capacity_range().0, self.capacity_range().1)
            .seed(self.seed.wrapping_add(trial * 1_000_003))
            .build()
            .expect("scale parameters are valid")
            .instantiate()
            .expect("scenario instantiates")
    }

    /// The capacity range, scaled with the user population so that
    /// fleet capacity stays meaningfully scarce (the paper's
    /// `[50, 300]` is calibrated for 1 000–3 000 users).
    pub fn capacity_range(&self) -> (u32, u32) {
        let n_max = *self.n_sweep.last().expect("non-empty sweep") as f64;
        let scale = (n_max / 3_000.0).min(1.0);
        (
            ((50.0 * scale).round() as u32).max(2),
            ((300.0 * scale).round() as u32).max(10),
        )
    }

    /// The largest `n` (used by FIG4/FIG6).
    pub fn n_max(&self) -> usize {
        *self.n_sweep.last().expect("non-empty sweep")
    }

    /// The largest `K` (used by FIG5/FIG6).
    pub fn k_max(&self) -> usize {
        *self.k_sweep.last().expect("non-empty sweep")
    }
}

/// One measurement: an algorithm's served users and wall-clock time.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Algorithm display name.
    pub algorithm: &'static str,
    /// Users served by the scored solution.
    pub served: usize,
    /// Wall-clock seconds of the deploy call.
    pub seconds: f64,
}

/// One x-axis point of a figure: the swept value and one measurement
/// per algorithm.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// The swept parameter value (`K`, `n`, or `s`).
    pub x: usize,
    /// Measurements, in the algorithm order of [`algorithm_set`].
    pub measurements: Vec<Measurement>,
}

/// The five algorithms of the paper's evaluation, `approAlg` first,
/// plus the random control at the end.
pub fn algorithm_set(s: usize, threads: usize) -> Vec<Box<dyn DeploymentAlgorithm>> {
    vec![
        Box::new(Appro { s, threads }),
        Box::new(MaxThroughput),
        Box::new(Mcs),
        Box::new(GreedyAssign),
        Box::new(MotionCtrl::default()),
        Box::new(RandomConnected::new(7)),
    ]
}

fn measure(algo: &dyn DeploymentAlgorithm, instance: &Instance) -> Measurement {
    let start = Instant::now();
    let solution = algo
        .deploy(instance)
        .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
    let seconds = start.elapsed().as_secs_f64();
    solution
        .validate(instance)
        .unwrap_or_else(|e| panic!("{} produced an invalid solution: {e}", algo.name()));
    Measurement {
        algorithm: algo.name(),
        served: solution.served_users(),
        seconds,
    }
}

/// Averages one sweep point over the scale's trial count.
fn averaged_point(scale: &Scale, x: usize, n: usize, k: usize, threads: usize) -> SeriesPoint {
    let trials = scale.trials.max(1);
    let mut sums: Vec<Measurement> = Vec::new();
    for t in 0..trials {
        let instance = scale.instance_for_trial(n, k, t as u64);
        let algos = algorithm_set(scale.s_default, threads);
        for (i, a) in algos.iter().enumerate() {
            let m = measure(a.as_ref(), &instance);
            if t == 0 {
                sums.push(m);
            } else {
                sums[i].served += m.served;
                sums[i].seconds += m.seconds;
            }
        }
    }
    for m in &mut sums {
        m.served = (m.served as f64 / trials as f64).round() as usize;
        m.seconds /= trials as f64;
    }
    SeriesPoint {
        x,
        measurements: sums,
    }
}

/// FIG4: served users vs the number of UAVs `K` (averaged over the
/// scale's trials).
pub fn fig4(scale: &Scale, threads: usize) -> Vec<SeriesPoint> {
    let n = scale.n_max();
    scale
        .k_sweep
        .iter()
        .map(|&k| averaged_point(scale, k, n, k, threads))
        .collect()
}

/// FIG5: served users vs the number of users `n` (averaged over the
/// scale's trials).
pub fn fig5(scale: &Scale, threads: usize) -> Vec<SeriesPoint> {
    let k = scale.k_max();
    scale
        .n_sweep
        .iter()
        .map(|&n| averaged_point(scale, n, n, k, threads))
        .collect()
}

/// FIG6(a) + FIG6(b): served users *and* running time vs the seed
/// count `s` (baselines are `s`-independent; their rows repeat so the
/// table mirrors the paper's plot).
pub fn fig6(scale: &Scale, threads: usize) -> Vec<SeriesPoint> {
    let n = scale.n_max();
    let k = scale.k_max();
    let instance = scale.instance(n, k);
    scale
        .s_sweep
        .iter()
        .map(|&s| {
            let algos = algorithm_set(s, threads);
            SeriesPoint {
                x: s,
                measurements: algos
                    .iter()
                    .map(|a| measure(a.as_ref(), &instance))
                    .collect(),
            }
        })
        .collect()
}

/// One row of the ablation study: a configuration label with its
/// outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: &'static str,
    /// Users served.
    pub served: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Seed subsets fully evaluated.
    pub subsets: usize,
}

/// Ablation study over `approAlg`'s engineering choices (DESIGN.md):
/// chain pruning, empty-seed pruning and the leftover-deployment
/// pass, each toggled against the default, plus the literal paper
/// configuration (everything off). Runs at `(n_max, k_max)` of the
/// scale with the given `s`.
pub fn ablation(scale: &Scale, s: usize, threads: usize) -> Vec<AblationRow> {
    use uavnet_core::approx_alg_with_stats;
    let instance = scale.instance(scale.n_max(), scale.k_max());
    let configs: Vec<(&'static str, ApproxConfig)> = vec![
        ("default", ApproxConfig::with_s(s)),
        (
            "no chain pruning",
            ApproxConfig::with_s(s).prune_chain(false),
        ),
        (
            "no empty-seed pruning",
            ApproxConfig::with_s(s).prune_empty_seeds(false),
        ),
        (
            "no leftover pass",
            ApproxConfig::with_s(s).leftover_deployment(false),
        ),
        (
            "literal paper",
            ApproxConfig::with_s(s)
                .prune_chain(false)
                .prune_empty_seeds(false)
                .leftover_deployment(false),
        ),
    ];
    configs
        .into_iter()
        .map(|(label, config)| {
            let config = config.threads(threads);
            let start = Instant::now();
            let (sol, stats) =
                approx_alg_with_stats(&instance, &config).expect("ablation config solves");
            let seconds = start.elapsed().as_secs_f64();
            sol.validate(&instance).expect("ablation solution valid");
            AblationRow {
                label,
                served: sol.served_users(),
                seconds,
                subsets: stats.subsets_evaluated,
            }
        })
        .collect()
}

/// Renders the ablation rows as a markdown-style table.
pub fn render_ablation_table(title: &str, rows: &[AblationRow]) -> String {
    let mut out =
        format!("## {title}\n\n| configuration | served | time | subsets |\n|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:.3}s | {} |\n",
            r.label, r.served, r.seconds, r.subsets
        ));
    }
    out
}

/// Renders a series as a markdown-style table of served users.
pub fn render_served_table(title: &str, x_label: &str, points: &[SeriesPoint]) -> String {
    render_table(title, x_label, points, |m| m.served.to_string())
}

/// Renders a series as a markdown-style table of running times.
pub fn render_time_table(title: &str, x_label: &str, points: &[SeriesPoint]) -> String {
    render_table(title, x_label, points, |m| format!("{:.3}s", m.seconds))
}

/// Renders a series as CSV: one row per x value, one column per
/// algorithm, served counts and seconds interleaved
/// (`<name>_served,<name>_s`).
pub fn render_csv(x_label: &str, points: &[SeriesPoint]) -> String {
    let mut out = String::new();
    let Some(first) = points.first() else {
        return out;
    };
    out.push_str(x_label);
    for m in &first.measurements {
        out.push_str(&format!(",{0}_served,{0}_s", m.algorithm));
    }
    out.push('\n');
    for p in points {
        out.push_str(&p.x.to_string());
        for m in &p.measurements {
            out.push_str(&format!(",{},{:.6}", m.served, m.seconds));
        }
        out.push('\n');
    }
    out
}

fn render_table(
    title: &str,
    x_label: &str,
    points: &[SeriesPoint],
    cell: impl Fn(&Measurement) -> String,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    if points.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let names: Vec<&str> = points[0].measurements.iter().map(|m| m.algorithm).collect();
    out.push_str(&format!("| {x_label} |"));
    for n in &names {
        out.push_str(&format!(" {n} |"));
    }
    out.push('\n');
    out.push_str(&format!("|{}", "---|".repeat(names.len() + 1)));
    out.push('\n');
    for p in points {
        out.push_str(&format!("| {} |", p.x));
        for m in &p.measurements {
            out.push_str(&format!(" {} |", cell(m)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_fig4_runs_and_orders_sanely() {
        let scale = Scale::quick();
        let points = fig4(&scale, 2);
        assert_eq!(points.len(), scale.k_sweep.len());
        // The quick workload is capacity-saturated (every algorithm
        // ties at K = 2 and K = 4), so outranking the random control
        // per point is tie-break luck, not signal. The meaningful
        // shape check: approAlg stays within 95% of the best baseline
        // at every point despite paying for connectivity and relays.
        for p in &points {
            assert_eq!(p.measurements.len(), 6);
            let appro = p.measurements[0].served;
            let best = p.measurements.iter().map(|m| m.served).max().unwrap();
            assert!(
                appro * 20 >= best * 19,
                "K={}: approAlg {appro} below 95% of best {best}",
                p.x
            );
        }
        // More UAVs never hurt approAlg on this workload.
        let first = points.first().unwrap().measurements[0].served;
        let last = points.last().unwrap().measurements[0].served;
        assert!(last >= first);
    }

    #[test]
    fn quick_scale_fig5_grows_with_n() {
        let scale = Scale::quick();
        let points = fig5(&scale, 2);
        let served: Vec<usize> = points.iter().map(|p| p.measurements[0].served).collect();
        // Each n draws a fresh scenario, so adjacent points can dip;
        // the trend across the sweep must still be growth.
        assert!(
            served.last().unwrap() > served.first().unwrap(),
            "{served:?}"
        );
    }

    #[test]
    fn quick_scale_fig6_s_improves_or_holds() {
        let scale = Scale::quick();
        let points = fig6(&scale, 2);
        assert_eq!(points.len(), scale.s_sweep.len());
        for p in &points {
            assert!(p.measurements[0].seconds >= 0.0);
        }
    }

    #[test]
    fn tables_render_all_columns() {
        let points = vec![SeriesPoint {
            x: 4,
            measurements: vec![
                Measurement {
                    algorithm: "approAlg",
                    served: 10,
                    seconds: 0.5,
                },
                Measurement {
                    algorithm: "MCS",
                    served: 8,
                    seconds: 0.1,
                },
            ],
        }];
        let t = render_served_table("Fig 4", "K", &points);
        assert!(t.contains("approAlg"));
        assert!(t.contains("| 4 | 10 | 8 |"));
        let t = render_time_table("Fig 6b", "s", &points);
        assert!(t.contains("0.500s"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let points = vec![
            SeriesPoint {
                x: 2,
                measurements: vec![Measurement {
                    algorithm: "approAlg",
                    served: 7,
                    seconds: 0.25,
                }],
            },
            SeriesPoint {
                x: 4,
                measurements: vec![Measurement {
                    algorithm: "approAlg",
                    served: 9,
                    seconds: 0.5,
                }],
            },
        ];
        let csv = render_csv("K", &points);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("K,approAlg_served,approAlg_s"));
        assert_eq!(lines.next(), Some("2,7,0.250000"));
        assert_eq!(lines.next(), Some("4,9,0.500000"));
        assert!(render_csv("K", &[]).is_empty());
    }

    #[test]
    fn ablation_rows_cover_all_configurations() {
        let scale = Scale::quick();
        let rows = ablation(&scale, 1, 2);
        assert_eq!(rows.len(), 5);
        let default = rows.iter().find(|r| r.label == "default").unwrap();
        let literal = rows.iter().find(|r| r.label == "literal paper").unwrap();
        // Pruning can only shrink the evaluated enumeration.
        assert!(default.subsets <= literal.subsets);
        // The leftover pass only adds served users relative to the
        // same sweep without it.
        let no_leftover = rows.iter().find(|r| r.label == "no leftover pass").unwrap();
        assert!(default.served >= no_leftover.served);
    }

    #[test]
    fn capacity_range_scales_with_population() {
        let quick = Scale::quick();
        let (lo, hi) = quick.capacity_range();
        assert!(lo >= 2 && hi <= 300 && lo < hi);
        let paper = Scale::paper();
        assert_eq!(paper.capacity_range(), (50, 300));
    }

    #[test]
    fn large_scale_meets_the_stress_floor() {
        let large = Scale::large();
        assert!(large.n_max() >= 100_000);
        // Population beyond the paper's calibration point keeps the
        // full capacity range.
        assert_eq!(large.capacity_range(), (50, 300));
        assert_eq!(large.s_sweep, vec![1]);
        assert!(large.check_sharded);
    }

    #[test]
    fn xlarge_scale_meets_the_million_user_floor() {
        let xl = Scale::xlarge();
        assert_eq!(xl.n_max(), 1_000_000);
        assert!(xl.sharded, "xlarge must exercise the tile-sharded path");
        assert_eq!(xl.reps, 1);
        assert_eq!(xl.capacity_range(), (50, 300));
        // 12 km at 300 m cells: 40 × 40 candidate grid.
        let cells = (xl.area_side_m / xl.cell_m) as usize;
        assert_eq!(cells * cells, 1_600);
    }
}
