//! Hot-path bench of the streaming subset sweep: `approx_alg_with_stats`
//! on the `Scale::quick()` FIG6-style instance (`n = n_max`,
//! `K = k_max`), across seed counts and worker-thread counts.
//!
//! Unlike `fig6_s_sweep` (which goes through the `Appro` wrapper used
//! by the figure harness), this bench calls the sweep directly so the
//! numbers isolate the enumeration + greedy + connection + scoring
//! pipeline — the code paths rewritten for zero-allocation workspaces.
//! `crates/bench/src/bin/sweep_report.rs` turns the same workload into
//! the checked-in `BENCH_sweep.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uavnet_bench::Scale;
use uavnet_core::{approx_alg_with_stats, ApproxConfig};

fn bench_sweep_hotpath(c: &mut Criterion) {
    let scale = Scale::quick();
    let instance = scale.instance(scale.n_max(), scale.k_max());
    let mut group = c.benchmark_group("sweep_hotpath");
    group.sample_size(10);
    for &s in &scale.s_sweep {
        for threads in [1usize, 2] {
            let config = ApproxConfig::with_s(s).threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("s{s}"), threads),
                &instance,
                |b, instance| {
                    b.iter(|| {
                        let (sol, stats) = approx_alg_with_stats(black_box(instance), &config)
                            .expect("sweep succeeds");
                        black_box((sol.served_users(), stats.gain_queries))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_hotpath);
criterion_main!(benches);
