//! FIG6 bench: `approAlg` deploy cost as the seed count `s` grows —
//! the quality/runtime trade-off of Fig. 6(b). The time complexity is
//! `O(K² n² m^{s+1})`, so each step of `s` multiplies the cost by
//! roughly `m` (tempered here by seed pruning).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uavnet_baselines::DeploymentAlgorithm;
use uavnet_bench::{Appro, Scale};

fn bench_fig6(c: &mut Criterion) {
    let scale = Scale::quick();
    let instance = scale.instance(scale.n_max(), scale.k_max());
    let mut group = c.benchmark_group("fig6_s_sweep");
    group.sample_size(10);
    for &s in &scale.s_sweep {
        let algo = Appro { s, threads: 2 };
        group.bench_with_input(BenchmarkId::new("approAlg", s), &instance, |b, instance| {
            b.iter(|| {
                let sol = algo.deploy(black_box(instance)).expect("deploys");
                black_box(sol.served_users())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
