//! Ablation benches: the runtime cost of each `approAlg` engineering
//! choice (chain pruning, empty-seed pruning, leftover pass), at quick
//! scale. The served-user effect of the same toggles is reported by
//! `figures ablate`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uavnet_bench::Scale;
use uavnet_core::{approx_alg, ApproxConfig};

fn bench_ablations(c: &mut Criterion) {
    let scale = Scale::quick();
    let instance = scale.instance(scale.n_max(), scale.k_max());
    let s = scale.s_default;
    let configs: Vec<(&str, ApproxConfig)> = vec![
        ("default", ApproxConfig::with_s(s).threads(1)),
        (
            "no_chain_pruning",
            ApproxConfig::with_s(s).threads(1).prune_chain(false),
        ),
        (
            "no_empty_seed_pruning",
            ApproxConfig::with_s(s).threads(1).prune_empty_seeds(false),
        ),
        (
            "no_leftover_pass",
            ApproxConfig::with_s(s)
                .threads(1)
                .leftover_deployment(false),
        ),
        (
            "literal_paper",
            ApproxConfig::with_s(s)
                .threads(1)
                .prune_chain(false)
                .prune_empty_seeds(false)
                .leftover_deployment(false),
        ),
    ];
    let mut group = c.benchmark_group("approx_ablations");
    group.sample_size(10);
    for (label, config) in configs {
        group.bench_with_input(
            BenchmarkId::new("approAlg", label),
            &instance,
            |b, instance| {
                b.iter(|| {
                    let sol = approx_alg(black_box(instance), &config).expect("solves");
                    black_box(sol.served_users())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
