//! Instance-construction hot path: the grid-binned spatial-index
//! coverage build and the one-time connectivity-substrate
//! precomputation (CSR adjacency + all-pairs `u16` hop matrix).
//!
//! These are the per-instance fixed costs the PR 3 scale layer
//! amortizes across the whole subset sweep; `sweep_report --scale
//! large` measures the same path at 100 000 users.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uavnet_bench::Scale;
use uavnet_graph::ConnectivitySubstrate;

fn bench_build_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_hotpath");
    group.sample_size(10);
    // Quick geometry at its sweep population, laptop geometry pushed
    // well past its sweep maximum to make the index's asymptotics
    // visible without the full 100k stress run.
    let cases: Vec<(Scale, usize)> = vec![(Scale::quick(), 120), (Scale::laptop(), 5_000)];
    for (scale, n) in cases {
        let k = scale.k_max();
        group.bench_with_input(
            BenchmarkId::new("instance_build", format!("{}_n{n}", scale.name)),
            &(scale.clone(), n, k),
            |b, (scale, n, k)| b.iter(|| black_box(scale.instance(*n, *k))),
        );
        let instance = scale.instance(n, k);
        group.bench_with_input(
            BenchmarkId::new("substrate_build", scale.name),
            instance.location_graph(),
            |b, g| b.iter(|| black_box(ConnectivitySubstrate::build(g).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build_hotpath);
criterion_main!(benches);
