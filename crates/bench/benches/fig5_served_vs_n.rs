//! FIG5 bench: deploy cost as the user population grows (`K` fixed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use uavnet_bench::{algorithm_set, Scale};

fn bench_fig5(c: &mut Criterion) {
    let scale = Scale::quick();
    let k = scale.k_max();
    let mut group = c.benchmark_group("fig5_served_vs_n");
    group.sample_size(10);
    for &n in &scale.n_sweep {
        let instance = scale.instance(n, k);
        group.throughput(Throughput::Elements(n as u64));
        for algo in algorithm_set(scale.s_default, 2) {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), n),
                &instance,
                |b, instance| {
                    b.iter(|| {
                        let sol = algo.deploy(black_box(instance)).expect("deploys");
                        black_box(sol.served_users())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
