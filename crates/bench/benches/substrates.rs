//! Micro-benches of the substrate crates: the max-flow assignment
//! (Lemma 1), the incremental matching oracle, BFS hop metrics, MST
//! construction and the lazy greedy. These are the inner loops that
//! dominate `approAlg`'s `O(K² n² m^{s+1})`; their absolute cost
//! explains the Fig. 6(b) runtime curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uavnet_bench::Scale;
use uavnet_core::{assign_users, assign_users_max_flow, SegmentPlan};
use uavnet_geom::CellIndex;

fn assignment_placements(instance: &uavnet_core::Instance) -> Vec<(usize, CellIndex)> {
    // A plausible deployment: the K best-covered cells in a row-major
    // connected strip.
    let k = instance.num_uavs();
    (0..k).map(|i| (i, i)).collect()
}

fn bench_assignment(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut group = c.benchmark_group("assignment");
    group.sample_size(20);
    for &n in &scale.n_sweep {
        let instance = scale.instance(n, scale.k_max());
        let placements = assignment_placements(&instance);
        group.bench_with_input(BenchmarkId::new("matching", n), &instance, |b, instance| {
            b.iter(|| black_box(assign_users(instance, &placements).served))
        });
        group.bench_with_input(BenchmarkId::new("max_flow", n), &instance, |b, instance| {
            b.iter(|| black_box(assign_users_max_flow(instance, &placements).served))
        });
    }
    group.finish();
}

fn bench_graph_primitives(c: &mut Criterion) {
    let scale = Scale::quick();
    let instance = scale.instance(scale.n_max(), scale.k_max());
    let graph = instance.location_graph();
    let mut group = c.benchmark_group("graph");
    group.bench_function("bfs_hops_full_grid", |b| {
        b.iter(|| black_box(uavnet_graph::bfs_hops(graph, 0)))
    });
    group.bench_function("connect_via_mst_corners", |b| {
        let m = instance.num_locations();
        let corners = vec![0, m - 1, m / 2];
        b.iter(|| black_box(uavnet_core::connect_via_mst(graph, &corners).unwrap()))
    });
    group.finish();
}

fn bench_alg1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1");
    for s in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::new("segment_plan", s), &s, |b, &s| {
            b.iter(|| black_box(SegmentPlan::optimal(200, s).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_assignment,
    bench_graph_primitives,
    bench_alg1
);
criterion_main!(benches);
