//! FIG4 bench: deploy time of every algorithm as the fleet grows.
//!
//! Regenerates the workload behind Fig. 4 (served users vs `K`). The
//! served-user *values* are produced by the `figures` binary; this
//! bench tracks the deploy cost of each algorithm at three fleet
//! sizes of the quick scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uavnet_bench::{algorithm_set, Scale};

fn bench_fig4(c: &mut Criterion) {
    let scale = Scale::quick();
    let mut group = c.benchmark_group("fig4_served_vs_k");
    group.sample_size(10);
    for &k in &scale.k_sweep {
        let instance = scale.instance(scale.n_max(), k);
        for algo in algorithm_set(scale.s_default, 2) {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), k),
                &instance,
                |b, instance| {
                    b.iter(|| {
                        let sol = algo.deploy(black_box(instance)).expect("deploys");
                        black_box(sol.served_users())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
