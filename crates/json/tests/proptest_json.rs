//! Round-trip property tests for `uavnet-json`.
//!
//! The bench report merge path (`parse → set → dump`) and the
//! `uavnet-service` newline-delimited wire protocol both rely on this
//! reader/writer pair being mutually inverse; these tests pin that
//! over escaped strings, unicode, nested arrays/objects, and f64 edge
//! cases using the vendored deterministic proptest stub.

use proptest::prelude::*;
use proptest::strategy::FnStrategy;
use proptest::test_runner::TestRng;
use uavnet_json::Json;

/// Finite f64s where the writer's integer/shortest-float split and
/// the parser's exponent handling are most likely to disagree.
const EDGE_NUMBERS: &[f64] = &[
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.1,
    -0.5,
    1e-3,
    1.5e300,
    -2.25e-300,
    5e-324,            // smallest positive subnormal
    f64::MIN_POSITIVE, // smallest positive normal
    f64::MAX,
    f64::MIN,
    9_007_199_254_740_991.0, // 2^53 - 1: last exact integer on the i64 path
    9_007_199_254_740_992.0, // 2^53: first value on the float-format path
    -9_007_199_254_740_991.0,
    1e15,
    1e16,
    123_456_789.0,
];

/// String fragments covering every writer escape arm plus raw
/// multi-byte unicode (the writer passes non-control scalars through
/// unescaped).
const STRING_PALETTE: &[&str] = &[
    "\"",
    "\\",
    "\n",
    "\r",
    "\t",
    "\u{8}",
    "\u{c}",
    "\u{1}",
    "\u{1f}",
    "/",
    " ",
    "a",
    "Z9",
    "é",
    "λ",
    "世界",
    "🛰",
    "\u{2028}",
    "\u{fffd}",
    "\u{10ffff}",
    "end",
];

fn gen_string(rng: &mut TestRng) -> String {
    let len = rng.below(8) as usize;
    (0..len)
        .map(|_| STRING_PALETTE[rng.below(STRING_PALETTE.len() as u64) as usize])
        .collect()
}

fn gen_number(rng: &mut TestRng) -> f64 {
    if rng.below(2) == 0 {
        EDGE_NUMBERS[rng.below(EDGE_NUMBERS.len() as u64) as usize]
    } else {
        // Uniform over bit patterns, rejecting NaN/inf (the writer
        // maps those to null by design, tested separately below).
        loop {
            let f = f64::from_bits(rng.next_u64());
            if f.is_finite() {
                return f;
            }
        }
    }
}

fn gen_json(rng: &mut TestRng, depth: u32) -> Json {
    // Leaves only once the depth budget is spent.
    let arms = if depth == 0 { 4 } else { 6 };
    match rng.below(arms) {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 0),
        2 => Json::Num(gen_number(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.below(4);
            Json::Arr((0..n).map(|_| gen_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.below(4);
            Json::Obj(
                (0..n)
                    .map(|_| (gen_string(rng), gen_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

fn arb_json() -> impl Strategy<Value = Json> {
    FnStrategy::new(|rng: &mut TestRng| gen_json(rng, 3))
}

fn arb_obj() -> impl Strategy<Value = Json> {
    FnStrategy::new(|rng: &mut TestRng| {
        let n = rng.below(5);
        Json::Obj(
            (0..n)
                .map(|_| (gen_string(rng), gen_json(rng, 2)))
                .collect(),
        )
    })
}

fn arb_key() -> impl Strategy<Value = String> {
    FnStrategy::new(|rng: &mut TestRng| gen_string(rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_dump_round_trips(v in arb_json()) {
        let text = v.dump();
        let back = Json::parse(&text).expect("dump output must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn compact_dump_round_trips(v in arb_json()) {
        let line = v.dump_line();
        // The service protocol frames one value per line; a raw
        // newline inside the framing would corrupt the stream.
        prop_assert!(!line.contains('\n'), "dump_line leaked a newline: {line:?}");
        let back = Json::parse(&line).expect("dump_line output must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn dump_is_a_fixed_point_of_parse_dump(v in arb_json()) {
        let once = v.dump();
        let twice = Json::parse(&once).unwrap().dump();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parse_set_dump_round_trips(obj in arb_obj(), key in arb_key(), value in arb_json()) {
        // The exact report-merge path: parse a dumped document,
        // mutate one member, dump, re-parse.
        let mut doc = Json::parse(&obj.dump()).unwrap();
        doc.set(&key, value.clone());
        let re = Json::parse(&doc.dump()).unwrap();
        prop_assert_eq!(re.get(&key), Some(&value));
        prop_assert_eq!(re, doc);
    }

    #[test]
    fn set_preserves_existing_member_position(obj in arb_obj(), value in arb_json()) {
        let mut doc = obj.clone();
        let Some(members) = obj.as_obj() else { unreachable!() };
        prop_assume!(!members.is_empty());
        let keys_before: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        let target = keys_before[0].to_string();
        doc.set(&target, value);
        let keys_after: Vec<&str> =
            doc.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        prop_assert_eq!(keys_before, keys_after);
    }
}

#[test]
fn escape_corpus_round_trips() {
    for s in [
        "quote \" backslash \\ slash /",
        "newline\nreturn\rtab\tbackspace\u{8}formfeed\u{c}",
        "control bytes \u{1}\u{1f}\u{0}",
        "unicode λ 世界 🛰 é \u{2028}\u{2029}",
        "astral \u{10ffff} and replacement \u{fffd}",
    ] {
        let v = Json::Str(s.to_string());
        assert_eq!(
            Json::parse(&v.dump()).unwrap(),
            v,
            "pretty round-trip of {s:?}"
        );
        assert_eq!(
            Json::parse(&v.dump_line()).unwrap(),
            v,
            "compact round-trip of {s:?}"
        );
    }
}

#[test]
fn unicode_escape_forms_parse() {
    // The writer never emits \uXXXX above 0x1f, but the reader must
    // accept them from external producers.
    assert_eq!(
        Json::parse(r#""Aé世""#).unwrap(),
        Json::Str("Aé世".to_string())
    );
    // Lone surrogates are not valid scalars; the reader substitutes
    // U+FFFD rather than erroring.
    assert_eq!(
        Json::parse(r#""\ud800""#).unwrap(),
        Json::Str("\u{fffd}".to_string())
    );
}

#[test]
fn numeric_edges_round_trip_exactly() {
    for &n in EDGE_NUMBERS {
        let v = Json::Num(n);
        let back = Json::parse(&v.dump_line()).unwrap();
        let got = back
            .as_f64()
            .unwrap_or_else(|| panic!("{n} did not parse as a number"));
        // -0.0 is allowed to come back as 0.0 (the writer takes the
        // integer path); everything else must be bit-exact.
        if n == 0.0 {
            assert_eq!(got, 0.0);
        } else {
            assert_eq!(got.to_bits(), n.to_bits(), "round-trip of {n}");
        }
    }
}

#[test]
fn non_finite_numbers_dump_as_null() {
    for n in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(Json::Num(n).dump_line(), "null");
        assert_eq!(Json::parse(&Json::Num(n).dump()).unwrap(), Json::Null);
    }
}
