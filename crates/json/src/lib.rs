//! A minimal recursive-descent JSON reader/writer shared across the
//! workspace.
//!
//! The workspace builds offline with vendored stand-in crates, so
//! there is no `serde_json`; the bench report consumers (`obs_diff`,
//! `sweep_report`/`resolve_report` section merging) and the
//! `uavnet-service` wire protocol both parse and emit JSON with this
//! ~150-line reader instead. It supports the full JSON value grammar
//! minus exotic escapes (`\uXXXX` outside the BMP is passed through
//! unpaired), keeps object keys in document order, and stores every
//! number as `f64` — exact for the `u64` magnitudes the obs schema
//! emits (counters stay far below 2^53).
//!
//! Round-trip stability (`parse → set → dump → parse` is the
//! identity, and `dump` output is a fixed point of `parse ∘ dump`) is
//! load-bearing for both consumers and pinned by the proptests in
//! `tests/proptest_json.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (surrounding whitespace
    /// allowed; trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a `usize`, if this is a non-negative integral
    /// number that fits — the common case for counts, ids and
    /// sequence fields in the wire and report formats.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// Inserts or replaces a member on an object, preserving the
    /// position of an existing key.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(members) = self else {
            panic!("Json::set on a non-object");
        };
        match members.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => members.push((key.to_string(), value)),
        }
    }

    /// Serializes to pretty-printed JSON (2-space indent, members in
    /// stored order, trailing newline) — the inverse of [`parse`]
    /// (Json::parse) for every value this reader produces, so report
    /// files survive a parse → mutate → dump round trip with minimal
    /// diffs.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes to compact single-line JSON (no whitespace, no
    /// trailing newline) — the framing format of the
    /// `uavnet-service` newline-delimited protocol, where a value
    /// must never contain a raw `\n`. Parses back to an equal value
    /// for everything this reader produces.
    pub fn dump_line(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&fmt_num(*n)),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&fmt_num(*n)),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn fmt_num(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape sequence")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", *other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_obs_snapshot_shape() {
        let doc = r#"{
  "schema": "uavnet-obs/2",
  "provenance": { "git_sha": "abc\n", "threads": 2, "instance_fingerprint": "0x00ff" },
  "counters": { "sweep.gain_queries": 5310, "greedy.bound_hits": 120 },
  "phases": { "greedy": { "total_ns": 12, "p50_ns": 3 } },
  "hists": {},
  "list": [1, [2.5, -3e2], "x", true, false, null]
}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("uavnet-obs/2"));
        assert_eq!(
            v.get("provenance")
                .unwrap()
                .get("git_sha")
                .unwrap()
                .as_str(),
            Some("abc\n")
        );
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("sweep.gain_queries")
                .unwrap()
                .as_f64(),
            Some(5310.0)
        );
        let list = v.get("list").unwrap().as_arr().unwrap();
        assert_eq!(list.len(), 6);
        assert_eq!(list[1].as_arr().unwrap()[1].as_f64(), Some(-300.0));
        assert_eq!(list[5], Json::Null);
        assert_eq!(v.get("hists").unwrap().as_obj(), Some(&[][..]));
    }

    #[test]
    fn dump_round_trips_and_set_preserves_order() {
        let doc = r#"{
  "schema": "uavnet-bench/1",
  "sweep": {
    "served": 120,
    "ratio": 0.875,
    "tags": ["a", "b\n"],
    "empty_obj": {},
    "empty_arr": [],
    "flag": true,
    "nothing": null
  }
}"#;
        let v = Json::parse(doc).unwrap();
        let dumped = v.dump();
        assert_eq!(Json::parse(&dumped).unwrap(), v);
        // dump(parse(dump(x))) is a fixed point (stable formatting).
        assert_eq!(Json::parse(&dumped).unwrap().dump(), dumped);

        let mut v = v;
        v.set("resolve", Json::Obj(vec![("ups".into(), Json::Num(42.0))]));
        v.set("schema", Json::Str("uavnet-bench/2".into()));
        let m = v.as_obj().unwrap();
        // Replaced key keeps its slot; new key appends.
        assert_eq!(m[0].0, "schema");
        assert_eq!(m[0].1.as_str(), Some("uavnet-bench/2"));
        assert_eq!(m[2].0, "resolve");
        assert_eq!(
            v.get("resolve").unwrap().get("ups").unwrap().as_f64(),
            Some(42.0)
        );
    }

    #[test]
    fn dump_formats_numbers_and_escapes() {
        let v = Json::Obj(vec![
            ("int".into(), Json::Num(3.0)),
            ("frac".into(), Json::Num(0.5)),
            ("neg".into(), Json::Num(-17.0)),
            ("ctl".into(), Json::Str("a\u{1}b".into())),
        ]);
        let text = v.dump();
        assert!(text.contains("\"int\": 3,"), "{text}");
        assert!(text.contains("\"frac\": 0.5,"), "{text}");
        assert!(text.contains("\"neg\": -17,"), "{text}");
        assert!(text.contains("\\u0001"), "{text}");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} extra", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_usize_accepts_only_non_negative_integers() {
        assert_eq!(Json::Num(0.0).as_usize(), Some(0));
        assert_eq!(Json::Num(42.0).as_usize(), Some(42));
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
        assert_eq!(Json::Str("42".into()).as_usize(), None);
    }
}
