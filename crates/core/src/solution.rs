//! Deployments, solutions and independent feasibility validation.

use crate::assign::{assign_users, Assignment};
use crate::Instance;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use uavnet_geom::CellIndex;
use uavnet_graph::is_connected_subset;

/// A deployment: which UAV hovers at which candidate location.
///
/// Invariants (checked by [`Deployment::new`]): UAV indices are
/// distinct, locations are distinct (one UAV per grid cell, §II-A).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deployment {
    placements: Vec<(usize, CellIndex)>,
}

impl Deployment {
    /// Creates a deployment from `(uav, location)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a UAV or location appears twice. Untrusted inputs
    /// (e.g. fault-injected or deserialized placements) should go
    /// through [`Deployment::try_new`] instead.
    pub fn new(placements: Vec<(usize, CellIndex)>) -> Self {
        match Self::try_new(placements) {
            Ok(d) => d,
            Err(e) => panic!("invalid deployment: {e}"),
        }
    }

    /// Creates a deployment from `(uav, location)` pairs, returning a
    /// typed error instead of panicking on duplicates — the
    /// `Result`-based boundary used by the verification and
    /// fault-injection paths.
    ///
    /// # Errors
    ///
    /// [`ValidationError::DuplicateUav`] or
    /// [`ValidationError::DuplicateLocation`] on the first repeated
    /// entry.
    pub fn try_new(placements: Vec<(usize, CellIndex)>) -> Result<Self, ValidationError> {
        for (i, &(uav, loc)) in placements.iter().enumerate() {
            for &(uav2, loc2) in &placements[..i] {
                if uav == uav2 {
                    return Err(ValidationError::DuplicateUav { uav });
                }
                if loc == loc2 {
                    return Err(ValidationError::DuplicateLocation { loc });
                }
            }
        }
        Ok(Deployment { placements })
    }

    /// The `(uav, location)` pairs.
    #[inline]
    pub fn placements(&self) -> &[(usize, CellIndex)] {
        &self.placements
    }

    /// Number of deployed UAVs.
    #[inline]
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// Whether no UAV is deployed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// The occupied locations, in placement order.
    pub fn locations(&self) -> Vec<CellIndex> {
        self.placements.iter().map(|&(_, l)| l).collect()
    }
}

/// A deployment together with its (optimal) user assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    deployment: Deployment,
    assignment: Assignment,
}

impl Solution {
    pub(crate) fn from_parts(placements: Vec<(usize, CellIndex)>, assignment: Assignment) -> Self {
        Solution {
            deployment: Deployment::new(placements),
            assignment,
        }
    }

    /// The deployment.
    #[inline]
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Number of users served.
    #[inline]
    pub fn served_users(&self) -> usize {
        self.assignment.served
    }

    /// For each user, the index (into
    /// [`Deployment::placements`]) of the UAV serving it.
    #[inline]
    pub fn user_placement(&self) -> &[Option<usize>] {
        &self.assignment.user_placement
    }

    /// Users served by each placement.
    #[inline]
    pub fn loads(&self) -> &[u32] {
        &self.assignment.loads
    }

    /// Independently re-checks every constraint of the problem
    /// definition (§II-C) against `instance`:
    ///
    /// 1. placements reference valid, distinct UAVs and locations and
    ///    use at most `K` UAVs;
    /// 2. every served user is admissible for its UAV (coverage radius
    ///    *and* minimum data rate, re-derived from the channel model);
    /// 3. no UAV exceeds its service capacity;
    /// 4. the deployed locations form a connected sub-network under
    ///    `R_uav`.
    ///
    /// # Errors
    ///
    /// The first violated constraint, as a [`ValidationError`].
    pub fn validate(&self, instance: &Instance) -> Result<(), ValidationError> {
        let placements = self.deployment.placements();
        if placements.len() > instance.num_uavs() {
            return Err(ValidationError::TooManyUavs {
                deployed: placements.len(),
                fleet: instance.num_uavs(),
            });
        }
        for &(uav, loc) in placements {
            if uav >= instance.num_uavs() {
                return Err(ValidationError::BadUavIndex { uav });
            }
            if loc >= instance.num_locations() {
                return Err(ValidationError::BadLocationIndex { loc });
            }
        }
        // Assignment sanity plus constraint (i) and (ii).
        let mut loads = vec![0u32; placements.len()];
        if self.assignment.user_placement.len() != instance.num_users() {
            return Err(ValidationError::AssignmentShape {
                got: self.assignment.user_placement.len(),
                expected: instance.num_users(),
            });
        }
        let mut served = 0usize;
        for (user, pl) in self.assignment.user_placement.iter().enumerate() {
            let Some(pi) = *pl else { continue };
            served += 1;
            let Some(&(uav, loc)) = placements.get(pi) else {
                return Err(ValidationError::BadPlacementIndex { user, index: pi });
            };
            let radio = &instance.uavs()[uav].radio;
            let u = &instance.users()[user];
            let hover = instance.grid().hover_position(loc);
            if !instance
                .atg()
                .can_serve(radio, hover, u.pos, u.min_rate_bps)
            {
                return Err(ValidationError::UserNotAdmissible { user, uav, loc });
            }
            loads[pi] += 1;
        }
        if served != self.assignment.served {
            return Err(ValidationError::ServedCountMismatch {
                claimed: self.assignment.served,
                actual: served,
            });
        }
        for (pi, &(uav, _)) in placements.iter().enumerate() {
            let cap = instance.uavs()[uav].capacity;
            if loads[pi] > cap {
                return Err(ValidationError::OverCapacity {
                    uav,
                    load: loads[pi],
                    capacity: cap,
                });
            }
        }
        // Constraint (iii): connectivity.
        let locs = self.deployment.locations();
        if !is_connected_subset(instance.location_graph(), &locs) {
            return Err(ValidationError::Disconnected);
        }
        // Gateway constraint (Fig. 1): some UAV must reach the uplink.
        if instance.gateway().is_some()
            && !locs.is_empty()
            && !locs.iter().any(|&l| instance.is_gateway_cell(l))
        {
            return Err(ValidationError::NoGateway);
        }
        Ok(())
    }
}

/// Aggregate quality metrics of a [`Solution`]; see
/// [`Solution::summary`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolutionSummary {
    /// Users served.
    pub served: usize,
    /// Fraction of all users served, in `[0, 1]`.
    pub coverage: f64,
    /// Number of deployed UAVs.
    pub deployed_uavs: usize,
    /// Mean load / capacity over deployed UAVs, in `[0, 1]`.
    pub mean_utilization: f64,
    /// Jain's fairness index of the per-UAV loads, in `(0, 1]`
    /// (1 = perfectly even; `1/q` = one UAV carries everything).
    pub load_fairness: f64,
}

impl Solution {
    /// Computes aggregate quality metrics against `instance`.
    ///
    /// # Panics
    ///
    /// Panics if a placement references an out-of-range UAV (validate
    /// first for untrusted solutions).
    pub fn summary(&self, instance: &Instance) -> SolutionSummary {
        let placements = self.deployment.placements();
        let q = placements.len();
        let served = self.served_users();
        let coverage = if instance.num_users() == 0 {
            0.0
        } else {
            served as f64 / instance.num_users() as f64
        };
        let mut util_sum = 0.0;
        for (pi, &(uav, _)) in placements.iter().enumerate() {
            let cap = instance.uavs()[uav].capacity.max(1);
            util_sum += f64::from(self.loads()[pi]) / f64::from(cap);
        }
        let mean_utilization = if q == 0 { 0.0 } else { util_sum / q as f64 };
        let load_fairness = jain_index(self.loads());
        SolutionSummary {
            served,
            coverage,
            deployed_uavs: q,
            mean_utilization,
            load_fairness,
        }
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`; 1.0 for an empty or
/// all-zero vector by convention.
fn jain_index(xs: &[u32]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().map(|&x| f64::from(x)).sum();
    let sq: f64 = xs.iter().map(|&x| f64::from(x) * f64::from(x)).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sq)
}

/// Scores a deployment with the optimal assignment (Lemma 1) and wraps
/// it as a [`Solution`] — the shared scoring path used by `approAlg`
/// and by every baseline, so algorithm comparisons measure placement
/// quality only.
///
/// # Panics
///
/// Panics if a placement references an out-of-range UAV or location,
/// or repeats a UAV or location. Untrusted placements should go
/// through [`try_score_deployment`].
pub fn score_deployment(instance: &Instance, placements: Vec<(usize, CellIndex)>) -> Solution {
    #[cfg(feature = "debug-validate")]
    crate::verify::check_assignment_oracles(instance, &placements)
        .expect("debug-validate: matching and max-flow assignments diverged");
    let assignment = assign_users(instance, &placements);
    Solution::from_parts(placements, assignment)
}

/// [`score_deployment`] behind a `Result` boundary: placements are
/// checked for range and duplicates first, so forged or fault-injected
/// inputs yield typed errors instead of panics.
///
/// # Errors
///
/// [`CoreError::Validation`] wrapping the first malformed placement
/// (bad index or duplicate).
pub fn try_score_deployment(
    instance: &Instance,
    placements: Vec<(usize, CellIndex)>,
) -> Result<Solution, crate::CoreError> {
    for &(uav, loc) in &placements {
        if uav >= instance.num_uavs() {
            return Err(ValidationError::BadUavIndex { uav }.into());
        }
        if loc >= instance.num_locations() {
            return Err(ValidationError::BadLocationIndex { loc }.into());
        }
    }
    let deployment = Deployment::try_new(placements)?;
    let assignment = assign_users(instance, deployment.placements());
    Ok(Solution {
        deployment,
        assignment,
    })
}

/// A violated constraint found by [`Solution::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidationError {
    /// More UAVs deployed than exist in the fleet.
    TooManyUavs {
        /// Number of placements.
        deployed: usize,
        /// Fleet size `K`.
        fleet: usize,
    },
    /// A placement references a UAV outside the fleet.
    BadUavIndex {
        /// The offending UAV index.
        uav: usize,
    },
    /// The same UAV appears in two placements.
    DuplicateUav {
        /// The repeated UAV index.
        uav: usize,
    },
    /// The same location hosts two UAVs (one UAV per cell, §II-A).
    DuplicateLocation {
        /// The repeated location index.
        loc: usize,
    },
    /// A placement references a non-existent location.
    BadLocationIndex {
        /// The offending location index.
        loc: usize,
    },
    /// The assignment vector length does not match the user count.
    AssignmentShape {
        /// Length found.
        got: usize,
        /// Length expected.
        expected: usize,
    },
    /// A user points at a placement index that does not exist.
    BadPlacementIndex {
        /// The user.
        user: usize,
        /// The dangling placement index.
        index: usize,
    },
    /// A served user is outside its UAV's radius or below its rate.
    UserNotAdmissible {
        /// The user.
        user: usize,
        /// The UAV claimed to serve it.
        uav: usize,
        /// The UAV's location.
        loc: usize,
    },
    /// A UAV serves more users than its capacity (constraint ii).
    OverCapacity {
        /// The UAV.
        uav: usize,
        /// Users assigned.
        load: u32,
        /// Its capacity `C_k`.
        capacity: u32,
    },
    /// The claimed served count disagrees with the assignment.
    ServedCountMismatch {
        /// Claimed count.
        claimed: usize,
        /// Recounted value.
        actual: usize,
    },
    /// The deployed UAV network is not connected (constraint iii).
    Disconnected,
    /// The scenario has an Internet gateway but no deployed UAV can
    /// reach it.
    NoGateway,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::TooManyUavs { deployed, fleet } => {
                write!(f, "{deployed} UAVs deployed but the fleet has {fleet}")
            }
            ValidationError::BadUavIndex { uav } => write!(f, "unknown UAV index {uav}"),
            ValidationError::DuplicateUav { uav } => write!(f, "UAV {uav} placed twice"),
            ValidationError::DuplicateLocation { loc } => {
                write!(f, "location {loc} used twice")
            }
            ValidationError::BadLocationIndex { loc } => {
                write!(f, "unknown location index {loc}")
            }
            ValidationError::AssignmentShape { got, expected } => {
                write!(f, "assignment covers {got} users, expected {expected}")
            }
            ValidationError::BadPlacementIndex { user, index } => {
                write!(f, "user {user} assigned to missing placement {index}")
            }
            ValidationError::UserNotAdmissible { user, uav, loc } => {
                write!(f, "user {user} not servable by UAV {uav} at location {loc}")
            }
            ValidationError::OverCapacity {
                uav,
                load,
                capacity,
            } => write!(f, "UAV {uav} serves {load} users over capacity {capacity}"),
            ValidationError::ServedCountMismatch { claimed, actual } => {
                write!(f, "claimed {claimed} served users, recounted {actual}")
            }
            ValidationError::Disconnected => write!(f, "deployed UAV network is disconnected"),
            ValidationError::NoGateway => {
                write!(f, "no deployed UAV is within range of the gateway vehicle")
            }
        }
    }
}

impl Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn instance() -> Instance {
        let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), 300.0, 300.0)
            .unwrap()
            .build();
        let mut b = Instance::builder(grid, 320.0);
        b.add_user(Point2::new(150.0, 150.0), 2_000.0);
        b.add_user(Point2::new(160.0, 150.0), 2_000.0);
        b.add_user(Point2::new(750.0, 750.0), 2_000.0);
        b.add_uav(2, UavRadio::new(30.0, 5.0, 400.0));
        b.add_uav(1, UavRadio::new(30.0, 5.0, 400.0));
        b.build().unwrap()
    }

    #[test]
    fn score_and_validate_roundtrip() {
        let inst = instance();
        // Cells 0 and 1 are adjacent under R_uav = 320.
        let sol = score_deployment(&inst, vec![(0, 0), (1, 1)]);
        assert_eq!(sol.served_users(), 2);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.deployment().len(), 2);
        assert_eq!(sol.loads().iter().sum::<u32>(), 2);
    }

    #[test]
    fn disconnected_deployment_fails_validation() {
        let inst = instance();
        // Cells 0 and 8 are far apart (no path among chosen subset).
        let sol = score_deployment(&inst, vec![(0, 0), (1, 8)]);
        assert_eq!(sol.validate(&inst), Err(ValidationError::Disconnected));
    }

    #[test]
    fn forged_overload_is_caught() {
        let inst = instance();
        let placements = vec![(1usize, 0usize)]; // UAV 1 has capacity 1
        let assignment = Assignment {
            user_placement: vec![Some(0), Some(0), None],
            served: 2,
            loads: vec![2],
        };
        let sol = Solution::from_parts(placements, assignment);
        assert!(matches!(
            sol.validate(&inst),
            Err(ValidationError::OverCapacity { uav: 1, .. })
        ));
    }

    #[test]
    fn forged_unreachable_user_is_caught() {
        let inst = instance();
        let placements = vec![(0usize, 0usize)];
        let assignment = Assignment {
            user_placement: vec![None, None, Some(0)], // user 2 is far away
            served: 1,
            loads: vec![1],
        };
        let sol = Solution::from_parts(placements, assignment);
        assert!(matches!(
            sol.validate(&inst),
            Err(ValidationError::UserNotAdmissible { user: 2, .. })
        ));
    }

    #[test]
    fn forged_served_count_is_caught() {
        let inst = instance();
        let assignment = Assignment {
            user_placement: vec![Some(0), None, None],
            served: 2,
            loads: vec![1],
        };
        let sol = Solution::from_parts(vec![(0, 0)], assignment);
        assert!(matches!(
            sol.validate(&inst),
            Err(ValidationError::ServedCountMismatch { .. })
        ));
    }

    #[test]
    fn empty_deployment_is_valid() {
        let inst = instance();
        let sol = score_deployment(&inst, vec![]);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.served_users(), 0);
        assert!(sol.deployment().is_empty());
    }

    #[test]
    fn try_new_returns_typed_duplicate_errors() {
        assert_eq!(
            Deployment::try_new(vec![(0, 0), (0, 1)]),
            Err(ValidationError::DuplicateUav { uav: 0 })
        );
        assert_eq!(
            Deployment::try_new(vec![(0, 3), (1, 3)]),
            Err(ValidationError::DuplicateLocation { loc: 3 })
        );
        assert!(Deployment::try_new(vec![(0, 0), (1, 1)]).is_ok());
    }

    #[test]
    fn try_score_deployment_rejects_malformed_placements() {
        let inst = instance();
        assert!(matches!(
            try_score_deployment(&inst, vec![(9, 0)]),
            Err(crate::CoreError::Validation(ValidationError::BadUavIndex {
                uav: 9
            }))
        ));
        assert!(matches!(
            try_score_deployment(&inst, vec![(0, 99)]),
            Err(crate::CoreError::Validation(
                ValidationError::BadLocationIndex { loc: 99 }
            ))
        ));
        assert!(matches!(
            try_score_deployment(&inst, vec![(0, 0), (1, 0)]),
            Err(crate::CoreError::Validation(
                ValidationError::DuplicateLocation { loc: 0 }
            ))
        ));
        let sol = try_score_deployment(&inst, vec![(0, 0), (1, 1)]).unwrap();
        assert_eq!(sol.served_users(), 2);
    }

    #[test]
    #[should_panic(expected = "placed twice")]
    fn deployment_rejects_duplicate_uav() {
        let _ = Deployment::new(vec![(0, 0), (0, 1)]);
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn deployment_rejects_duplicate_location() {
        let _ = Deployment::new(vec![(0, 3), (1, 3)]);
    }

    #[test]
    fn summary_metrics_are_sane() {
        let inst = instance();
        let sol = score_deployment(&inst, vec![(0, 0), (1, 1)]);
        let s = sol.summary(&inst);
        assert_eq!(s.served, 2);
        assert!((s.coverage - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.deployed_uavs, 2);
        // UAV 0 (cap 2) serves both close users, UAV 1 (cap 1) none:
        // utilization = (2/2 + 0/1)/2 = 0.5, or the assignment splits
        // them; either way utilization ∈ (0, 1].
        assert!(s.mean_utilization > 0.0 && s.mean_utilization <= 1.0);
        assert!(s.load_fairness > 0.0 && s.load_fairness <= 1.0);
    }

    #[test]
    fn jain_index_extremes() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0, 0]), 1.0);
        assert!((jain_index(&[5, 5, 5]) - 1.0).abs() < 1e-12);
        // One worker carries everything: 1/n.
        assert!((jain_index(&[9, 0, 0]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_solution_summary() {
        let inst = instance();
        let sol = score_deployment(&inst, vec![]);
        let s = sol.summary(&inst);
        assert_eq!(s.served, 0);
        assert_eq!(s.coverage, 0.0);
        assert_eq!(s.deployed_uavs, 0);
        assert_eq!(s.mean_utilization, 0.0);
        assert_eq!(s.load_fairness, 1.0);
    }

    #[test]
    fn gateway_violation_is_caught() {
        let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), 300.0, 300.0)
            .unwrap()
            .build();
        let mut b = Instance::builder(grid, 450.0);
        b.add_user(Point2::new(750.0, 750.0), 2_000.0);
        b.gateway(Point2::new(0.0, 0.0));
        b.add_uav(2, UavRadio::new(30.0, 5.0, 400.0));
        let inst = b.build().unwrap();
        // Cell 8 (NE corner) is far from the SW gateway vehicle.
        let bad = score_deployment(&inst, vec![(0, 8)]);
        assert_eq!(bad.validate(&inst), Err(ValidationError::NoGateway));
        // Cell 0 reaches the gateway (hover (150,150,300) → origin).
        let good = score_deployment(&inst, vec![(0, 0)]);
        good.validate(&inst).unwrap();
    }

    #[test]
    fn validation_error_messages() {
        let e = ValidationError::OverCapacity {
            uav: 2,
            load: 7,
            capacity: 5,
        };
        assert!(e.to_string().contains("7"));
        assert!(ValidationError::Disconnected
            .to_string()
            .contains("disconnected"));
    }
}
