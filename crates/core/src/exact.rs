//! Brute-force exact optimum for tiny instances — the reference the
//! test-suite measures the approximation against (Theorem 1 sanity
//! checks).

use crate::solution::{score_deployment, Solution};
use crate::{CoreError, Instance};
use uavnet_graph::is_connected_subset;

/// Exhaustively computes an optimal solution of the maximum connected
/// coverage problem: every connected location subset of size ≤ `K`,
/// every injective assignment of UAVs to those locations, scored by
/// the optimal user assignment.
///
/// Exponential in both `m` and `K` — intended only for validating the
/// approximation algorithm on toy instances.
///
/// # Errors
///
/// [`CoreError::InvalidParameters`] if `m > 16` or `K > 4` (guard
/// against accidental blow-ups).
pub fn exact_optimum(instance: &Instance) -> Result<Solution, CoreError> {
    let m = instance.num_locations();
    let k = instance.num_uavs();
    if m > 16 {
        return Err(CoreError::InvalidParameters(format!(
            "exact solver limited to 16 locations, got {m}"
        )));
    }
    if k > 4 {
        return Err(CoreError::InvalidParameters(format!(
            "exact solver limited to 4 UAVs, got {k}"
        )));
    }
    let graph = instance.location_graph();
    let mut best: Option<(usize, Vec<(usize, usize)>)> = None;
    for mask in 1usize..1 << m {
        let locs: Vec<usize> = (0..m).filter(|i| mask >> i & 1 == 1).collect();
        if locs.len() > k || !is_connected_subset(graph, &locs) {
            continue;
        }
        let uav_ids: Vec<usize> = (0..k).collect();
        for_each_injection(&uav_ids, locs.len(), &mut |uavs| {
            let placements: Vec<(usize, usize)> =
                uavs.iter().copied().zip(locs.iter().copied()).collect();
            let served = crate::assign::assign_users(instance, &placements).served;
            if best.as_ref().is_none_or(|(bs, _)| served > *bs) {
                best = Some((served, placements));
            }
        });
    }
    let (_, placements) = best.expect("at least one single-location deployment exists");
    Ok(score_deployment(instance, placements))
}

/// Calls `f` with every ordered selection of `t` distinct items.
fn for_each_injection(items: &[usize], t: usize, f: &mut impl FnMut(&[usize])) {
    fn rec(
        items: &[usize],
        t: usize,
        used: &mut Vec<bool>,
        current: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]),
    ) {
        if current.len() == t {
            f(current);
            return;
        }
        for (i, &item) in items.iter().enumerate() {
            if !used[i] {
                used[i] = true;
                current.push(item);
                rec(items, t, used, current, f);
                current.pop();
                used[i] = false;
            }
        }
    }
    rec(items, t, &mut vec![false; items.len()], &mut Vec::new(), f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_alg, ApproxConfig};
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn tiny_instance(seed_users: &[(f64, f64)], caps: &[u32]) -> Instance {
        let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), 300.0, 300.0)
            .unwrap()
            .build();
        let mut b = Instance::builder(grid, 450.0);
        for &(x, y) in seed_users {
            b.add_user(Point2::new(x, y), 2_000.0);
        }
        for &c in caps {
            b.add_uav(c, UavRadio::new(30.0, 5.0, 350.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn exact_finds_the_obvious_optimum() {
        // Two users at one corner; a single capacity-2 UAV suffices.
        let inst = tiny_instance(&[(150.0, 150.0), (160.0, 150.0)], &[2]);
        let opt = exact_optimum(&inst).unwrap();
        assert_eq!(opt.served_users(), 2);
        opt.validate(&inst).unwrap();
    }

    #[test]
    fn exact_respects_connectivity() {
        // Users at two far corners; 2 UAVs cannot both reach their
        // corners *and* stay connected (diagonal distance 424 < 450,
        // so a diagonal chain works; verify the optimum validates).
        let inst = tiny_instance(&[(150.0, 150.0), (750.0, 750.0)], &[1, 1]);
        let opt = exact_optimum(&inst).unwrap();
        opt.validate(&inst).unwrap();
        // Either both corners via a connected pair, or one corner.
        assert!(opt.served_users() >= 1);
    }

    #[test]
    fn exact_heterogeneity_matters() {
        // Three users in one corner, one in the other. The capacity-3
        // UAV must take the big corner.
        let inst = tiny_instance(
            &[
                (150.0, 150.0),
                (160.0, 150.0),
                (150.0, 160.0),
                (750.0, 750.0),
            ],
            &[3, 1],
        );
        let opt = exact_optimum(&inst).unwrap();
        opt.validate(&inst).unwrap();
        // A capacity-blind placement would serve at most 2 + 1 users;
        // the true optimum gets all four if connectable, else 3 + …
        assert!(opt.served_users() >= 3);
    }

    #[test]
    fn approx_never_beats_exact() {
        let instances = [
            tiny_instance(&[(150.0, 150.0), (450.0, 450.0)], &[1, 1]),
            tiny_instance(&[(150.0, 150.0), (160.0, 160.0), (750.0, 150.0)], &[2, 1]),
            tiny_instance(
                &[
                    (150.0, 150.0),
                    (450.0, 460.0),
                    (740.0, 750.0),
                    (460.0, 440.0),
                ],
                &[2, 2, 1],
            ),
        ];
        for inst in &instances {
            let opt = exact_optimum(inst).unwrap();
            for s in 1..=2usize {
                let apx = approx_alg(inst, &ApproxConfig::with_s(s).threads(1)).unwrap();
                assert!(
                    apx.served_users() <= opt.served_users(),
                    "approx {} > exact {}",
                    apx.served_users(),
                    opt.served_users()
                );
                // Theorem 1 floor: ratio is 1/(3Δ); on these toy
                // instances the greedy should do far better — demand
                // at least the proven bound. Checked in pure integer
                // arithmetic (`served·3Δ ≥ opt`): the former
                // float-floor comparison could demand one user too
                // many near exact multiples of 3Δ.
                let plan = crate::SegmentPlan::optimal(inst.num_uavs(), s).unwrap();
                assert!(
                    crate::verify::theorem1_ratio_holds(
                        apx.served_users(),
                        opt.served_users(),
                        plan.delta()
                    ),
                    "approx {} below the 1/(3Δ) floor, Δ={} (opt {})",
                    apx.served_users(),
                    plan.delta(),
                    opt.served_users()
                );
            }
        }
    }

    #[test]
    fn guards_reject_large_instances() {
        let inst = tiny_instance(&[(150.0, 150.0)], &[1, 1, 1, 1, 1]);
        assert!(matches!(
            exact_optimum(&inst),
            Err(CoreError::InvalidParameters(_))
        ));
    }
}
