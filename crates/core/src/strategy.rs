//! Seed-search strategies behind the [`SeedStrategy`] trait — the
//! pluggable engine of Algorithm 2's subset sweep.
//!
//! [`approx_alg`](crate::approx_alg) historically had one way to pick
//! the winning seed subset: enumerate every `C(pool, s)` combination
//! and evaluate the survivors of chain pruning. That wall caps both
//! `s` and the candidate-location count. This module refactors the
//! exhaustive sweep into one [`SeedStrategy`] implementation and adds
//! two guided ones:
//!
//! * [`SeedStrategyKind::BoundPruned`] — **value-preserving** CELF-style
//!   enumeration: an admissible per-subset upper bound (see
//!   [`BoundPrunedEnumeration`]) lets workers skip any subset whose
//!   optimistic served count cannot beat the incumbent. The winner (and
//!   its placements) is bit-identical to exhaustive enumeration.
//! * [`SeedStrategyKind::Beam`] — **density-guided beam search**: seeds
//!   grow from the highest-coverage cells of the spatial index's
//!   coverage tables, a beam of width `B` survives each depth, and only
//!   the final beam is fully evaluated. Quality is gated by
//!   [`check_strategy_quality`](crate::check_strategy_quality) rather
//!   than an identity proof.
//!
//! Every strategy is deterministic and thread-count invariant: ties
//! break on enumeration rank (equivalently the lexicographic order of
//! the seed subset), and the bound-pruned parallel scheme reads the
//! incumbent only at fixed chunk boundaries so pruning decisions do not
//! depend on scheduling.

use crate::approx::{
    binomial, chain_feasible, next_combination, panic_payload_message, seed_pool,
    unrank_combination, ApproxConfig, PhaseNanos, SubsetOutcome, SweepProfile, SweepWorkspace,
};
use crate::{CoreError, Instance, SegmentPlan};
use std::cmp::Reverse;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;
use uavnet_geom::CellIndex;
use uavnet_graph::{ConnectivitySubstrate, UNREACHABLE_HOPS};

/// Default beam width of [`SeedStrategyKind::Beam`]. Wide enough that
/// quick-scale proptest instances (`C(pool, s)` below the width) suffer
/// no truncation at all — there the beam degenerates to exhaustive
/// enumeration with chain pruning — while keeping the large-scale
/// evaluation count constant instead of combinatorial.
pub const DEFAULT_BEAM_WIDTH: usize = 64;

/// How many top-ranked pool positions the bound-pruned primer combines
/// when seeding the incumbent before workers spawn.
const PRIMER_POOL: usize = 24;

/// How many primer combinations are tried before giving up on a
/// chain-feasible incumbent (workers then start unprimed).
const PRIMER_TRIES: usize = 512;

/// Fixed rank-chunk size of the bound-pruned parallel scheme. Must not
/// depend on the thread count: chunk boundaries are where incumbent
/// snapshots are taken, so the chunking *is* the determinism contract.
const BOUND_CHUNK: u64 = 64;

/// Which seed-search strategy the subset sweep runs.
///
/// Parsed from the CLI spelling used by `sweep_report --seed-strategy`:
///
/// ```
/// use uavnet_core::SeedStrategyKind;
/// assert_eq!("exhaustive".parse(), Ok(SeedStrategyKind::Exhaustive));
/// assert_eq!("bound-pruned".parse(), Ok(SeedStrategyKind::BoundPruned));
/// assert_eq!("beam:8".parse(), Ok(SeedStrategyKind::Beam { width: 8 }));
/// assert_eq!(SeedStrategyKind::default(), SeedStrategyKind::Exhaustive);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedStrategyKind {
    /// Evaluate every chain-pruning survivor of the full `C(pool, s)`
    /// enumeration (the literal Algorithm 2 engine).
    #[default]
    Exhaustive,
    /// Exhaustive enumeration with admissible bound pruning — the same
    /// winner bit-for-bit, skipping subsets that provably cannot win.
    BoundPruned,
    /// Density-guided beam search evaluating at most `width` subsets.
    Beam {
        /// Beam width `B`: states kept per depth and final evaluations.
        width: usize,
    },
}

impl SeedStrategyKind {
    /// Stable machine-readable name (`"exhaustive"`, `"bound-pruned"`,
    /// `"beam"`), used in stats, obs events and BENCH_sweep.json.
    pub fn name(self) -> &'static str {
        match self {
            SeedStrategyKind::Exhaustive => "exhaustive",
            SeedStrategyKind::BoundPruned => "bound-pruned",
            SeedStrategyKind::Beam { .. } => "beam",
        }
    }

    /// Instantiates the strategy behind this kind.
    pub fn build(self) -> Box<dyn SeedStrategy> {
        match self {
            SeedStrategyKind::Exhaustive => Box::new(ExhaustiveEnumeration),
            SeedStrategyKind::BoundPruned => Box::new(BoundPrunedEnumeration),
            SeedStrategyKind::Beam { width } => Box::new(DensityBeam { width }),
        }
    }
}

impl fmt::Display for SeedStrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeedStrategyKind::Beam { width } => write!(f, "beam:{width}"),
            other => f.write_str(other.name()),
        }
    }
}

impl FromStr for SeedStrategyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exhaustive" => Ok(SeedStrategyKind::Exhaustive),
            "bound-pruned" | "bound_pruned" => Ok(SeedStrategyKind::BoundPruned),
            "beam" => Ok(SeedStrategyKind::Beam {
                width: DEFAULT_BEAM_WIDTH,
            }),
            other => match other.strip_prefix("beam:") {
                Some(w) => match w.parse::<usize>() {
                    Ok(width) if width >= 1 => Ok(SeedStrategyKind::Beam { width }),
                    _ => Err(format!("invalid beam width {w:?} (want beam:<N≥1>)")),
                },
                None => Err(format!(
                    "unknown seed strategy {other:?} \
                     (want exhaustive | bound-pruned | beam[:N])"
                )),
            },
        }
    }
}

/// Everything a strategy needs to search one instance: the problem,
/// the plan, the shared connectivity substrate, and the precomputed
/// seed pool with its chain-pruning tables. Built internally by
/// [`approx_alg_with_stats`](crate::approx_alg_with_stats); strategies
/// never construct one themselves.
pub struct SearchContext<'a> {
    pub(crate) instance: &'a Instance,
    pub(crate) config: &'a ApproxConfig,
    pub(crate) plan: &'a SegmentPlan,
    pub(crate) substrate: &'a ConnectivitySubstrate,
    pub(crate) pool: Vec<usize>,
    pub(crate) chain_budgets: Vec<usize>,
    pub(crate) pool_dists: Option<Vec<Vec<Option<u32>>>>,
}

impl<'a> SearchContext<'a> {
    pub(crate) fn new(
        instance: &'a Instance,
        config: &'a ApproxConfig,
        plan: &'a SegmentPlan,
        substrate: &'a ConnectivitySubstrate,
    ) -> Self {
        let pool = seed_pool(instance, config, substrate);
        let s = config.s();
        let chain_budgets: Vec<usize> = plan.p()[1..s].iter().map(|&p| p + 1).collect();
        let pool_dists = crate::approx::pool_distances(config, &pool, substrate);
        SearchContext {
            instance,
            config,
            plan,
            substrate,
            pool,
            chain_budgets,
            pool_dists,
        }
    }

    /// The seed pool: candidate locations admitted to the enumeration,
    /// ascending.
    pub fn pool(&self) -> &[usize] {
        &self.pool
    }

    /// Total `C(pool, s)` subsets of the full enumeration (saturating).
    pub fn total_subsets(&self) -> u64 {
        binomial(self.pool.len(), self.config.s())
    }
}

/// The winning candidate of a strategy's search.
#[derive(Debug, Clone)]
pub struct BestCandidate {
    /// Users served by the candidate's deployment (before the
    /// leftover pass).
    pub served: usize,
    /// The seed subset, in ascending location order.
    pub seeds: Vec<CellIndex>,
    /// The full deployment: greedy picks, forced seeds, then relays.
    pub placements: Vec<(usize, CellIndex)>,
}

/// What a strategy's search produced, in the units
/// [`ApproxStats`](crate::ApproxStats) reports.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best candidate, if any subset produced a deployment.
    pub best: Option<BestCandidate>,
    /// Subsets considered before any pruning (for the enumerative
    /// strategies this is `C(pool, s)`; the beam counts generated
    /// states instead).
    pub subsets_enumerated: usize,
    /// Subsets dropped by chain pruning.
    pub subsets_chain_pruned: usize,
    /// Subsets skipped because their admissible upper bound could not
    /// beat the incumbent (bound-pruned strategy only).
    pub subsets_bound_pruned: usize,
    /// Subsets fully evaluated (greedy + connection + scoring).
    pub subsets_evaluated: usize,
    /// Evaluated subsets whose connected set exceeded the fleet.
    pub subsets_unconnectable: usize,
    /// Marginal-gain queries issued across the search.
    pub gain_queries: u64,
    /// Phase timings; `substrate_build_ns` is filled by the caller.
    pub profile: SweepProfile,
}

/// A seed-search strategy: given a prepared [`SearchContext`], find
/// the best seed subset and report honest work statistics.
///
/// # Contract
///
/// * **Determinism** — for a fixed instance and configuration, `search`
///   must return the same [`BestCandidate`] and the same deterministic
///   counters (`subsets_*`, `gain_queries`) regardless of
///   [`ApproxConfig::num_threads`]. Ties between equal-served subsets
///   break toward the lexicographically smallest seed subset
///   (equivalently, the lowest enumeration rank).
/// * **Honest stats** — `subsets_evaluated` counts real
///   greedy+connection+scoring evaluations; pruned work is reported in
///   the pruning counters, never hidden.
pub trait SeedStrategy {
    /// Stable machine-readable strategy name.
    fn name(&self) -> &'static str;

    /// Searches the context for the best seed subset.
    ///
    /// # Errors
    ///
    /// [`CoreError::Sweep`] if a worker thread panicked (all workers
    /// are drained first).
    fn search(&self, ctx: &SearchContext<'_>) -> Result<SearchResult, CoreError>;

    /// An upper bound on how many subsets this strategy would evaluate,
    /// short-circuiting once the count exceeds `limit` (the returned
    /// value is then at least `limit + 1`). Used by the `max_subsets`
    /// guard *before* any worker spawns.
    fn planned_evaluations(&self, ctx: &SearchContext<'_>, limit: usize) -> usize {
        chain_survivors_capped(
            ctx.pool.len(),
            ctx.config.s(),
            ctx.pool_dists.as_deref(),
            &ctx.chain_budgets,
            limit,
        )
    }
}

/// Counts chain-pruning survivors of the `C(pool_len, s)` enumeration,
/// stopping as soon as the count exceeds `limit`. Shared by the
/// monolithic and sharded pre-spawn `max_subsets` guards.
pub(crate) fn chain_survivors_capped(
    pool_len: usize,
    s: usize,
    pool_dists: Option<&[Vec<Option<u32>>]>,
    budgets: &[usize],
    limit: usize,
) -> usize {
    let mut combo: Vec<usize> = (0..s).collect();
    let mut count = 0usize;
    loop {
        let keep = match pool_dists {
            Some(d) => chain_feasible(d, &combo, budgets),
            None => true,
        };
        if keep {
            count += 1;
            if count > limit {
                return count;
            }
        }
        if !next_combination(&mut combo, pool_len) {
            return count;
        }
    }
}

/// The lexicographic rank of an ascending `s`-combination of `0..n` —
/// the inverse of [`unrank_combination`].
pub(crate) fn rank_of_combination(combo: &[usize], n: usize, s: usize) -> u64 {
    debug_assert!(combo.windows(2).all(|w| w[0] < w[1]));
    let mut rank = 0u64;
    let mut prev = 0usize;
    for (j, &c) in combo.iter().enumerate() {
        for v in prev..c {
            rank = rank.saturating_add(binomial(n - v - 1, s - j - 1));
        }
        prev = c + 1;
    }
    rank
}

/// (served, rank, placements, seeds) of a candidate during a sweep.
type RankedBest = Option<(usize, u64, Vec<(usize, CellIndex)>, Vec<CellIndex>)>;

fn ranked_to_candidate(best: RankedBest) -> Option<BestCandidate> {
    best.map(|(served, _, placements, seeds)| BestCandidate {
        served,
        seeds,
        placements,
    })
}

/// The literal Algorithm 2 engine: evaluate every chain-pruning
/// survivor of the full `C(pool, s)` enumeration behind a chunked
/// atomic cursor, one reusable workspace per worker.
pub struct ExhaustiveEnumeration;

impl SeedStrategy for ExhaustiveEnumeration {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn search(&self, ctx: &SearchContext<'_>) -> Result<SearchResult, CoreError> {
        let s = ctx.config.s();
        let pool = &ctx.pool;
        let total = binomial(pool.len(), s);
        let threads_cfg = ctx.config.num_threads();
        let chunk = (total / (threads_cfg as u64 * 4)).clamp(1, 64);
        let cursor = AtomicU64::new(0);
        let evaluated = AtomicUsize::new(0);
        let chain_pruned = AtomicUsize::new(0);
        let unconnectable = AtomicUsize::new(0);
        let gain_queries = AtomicU64::new(0);
        let enumeration_ns = AtomicU64::new(0);
        let greedy_ns = AtomicU64::new(0);
        let connection_ns = AtomicU64::new(0);
        let scoring_ns = AtomicU64::new(0);
        let substrate_query_ns = AtomicU64::new(0);
        let threads = threads_cfg.min(total.div_ceil(chunk).max(1) as usize);

        let worker = || -> RankedBest {
            let mut ws = SweepWorkspace::with_substrate(ctx.instance, ctx.substrate);
            let mut profile = PhaseNanos::default();
            let mut combo: Vec<usize> = Vec::with_capacity(s);
            let mut seeds: Vec<CellIndex> = Vec::with_capacity(s);
            let mut local_best: RankedBest = None;
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= total {
                    break;
                }
                let end = (start + chunk).min(total);
                for rank in start..end {
                    let t_enum = Instant::now();
                    if rank == start {
                        unrank_combination(rank, pool.len(), s, &mut combo);
                    } else {
                        let advanced = next_combination(&mut combo, pool.len());
                        debug_assert!(advanced, "rank < total implies a successor");
                    }
                    // The injection hook fires on *reaching* the rank,
                    // before any pruning: tests pick ranks without
                    // knowing which ones chain pruning will discard.
                    if ctx.config.panic_rank() == Some(rank) {
                        panic!("injected worker panic at enumeration rank {rank}");
                    }
                    let keep = match &ctx.pool_dists {
                        Some(d) => chain_feasible(d, &combo, &ctx.chain_budgets),
                        None => true,
                    };
                    profile.enumeration += t_enum.elapsed().as_nanos() as u64;
                    if !keep {
                        chain_pruned.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    evaluated.fetch_add(1, Ordering::Relaxed);
                    seeds.clear();
                    seeds.extend(combo.iter().map(|&i| pool[i]));
                    match ws.solve_subset(ctx.plan, &seeds, &mut profile) {
                        SubsetOutcome::Served(served) => {
                            let better = match &local_best {
                                None => true,
                                Some((bs, br, _, _)) => {
                                    served > *bs || (served == *bs && rank < *br)
                                }
                            };
                            if better {
                                local_best =
                                    Some((served, rank, ws.placements().to_vec(), seeds.clone()));
                            }
                        }
                        SubsetOutcome::Unconnectable => {
                            unconnectable.fetch_add(1, Ordering::Relaxed);
                        }
                        SubsetOutcome::EscapedView => {
                            unreachable!("the monolithic sweep runs without a tile view")
                        }
                    }
                }
            }
            gain_queries.fetch_add(ws.gain_queries(), Ordering::Relaxed);
            enumeration_ns.fetch_add(profile.enumeration, Ordering::Relaxed);
            greedy_ns.fetch_add(profile.greedy, Ordering::Relaxed);
            connection_ns.fetch_add(profile.connection, Ordering::Relaxed);
            scoring_ns.fetch_add(profile.scoring, Ordering::Relaxed);
            substrate_query_ns.fetch_add(profile.substrate_query, Ordering::Relaxed);
            local_best
        };

        // Join every worker unconditionally, collecting panics instead
        // of propagating them: a panicking oracle must surface as a
        // typed error, not abort the process.
        let joined: Vec<Result<RankedBest, Box<dyn std::any::Any + Send>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
                handles.into_iter().map(|h| h.join()).collect()
            });
        let mut bests: Vec<RankedBest> = Vec::with_capacity(joined.len());
        let mut worker_panic: Option<String> = None;
        for result in joined {
            match result {
                Ok(best) => bests.push(best),
                Err(payload) => {
                    worker_panic.get_or_insert_with(|| panic_payload_message(&*payload));
                }
            }
        }
        if let Some(message) = worker_panic {
            return Err(CoreError::Sweep(message));
        }

        // Join-time reduction by (served desc, rank asc): bit-identical
        // to a sequential sweep for any chunking.
        let mut best: RankedBest = None;
        for cand in bests.into_iter().flatten() {
            let better = match &best {
                None => true,
                Some((bs, br, _, _)) => cand.0 > *bs || (cand.0 == *bs && cand.1 < *br),
            };
            if better {
                best = Some(cand);
            }
        }

        Ok(SearchResult {
            best: ranked_to_candidate(best),
            subsets_enumerated: total as usize,
            subsets_chain_pruned: chain_pruned.load(Ordering::Relaxed),
            subsets_bound_pruned: 0,
            subsets_evaluated: evaluated.load(Ordering::Relaxed),
            subsets_unconnectable: unconnectable.load(Ordering::Relaxed),
            gain_queries: gain_queries.load(Ordering::Relaxed),
            profile: SweepProfile {
                enumeration_ns: enumeration_ns.load(Ordering::Relaxed),
                greedy_ns: greedy_ns.load(Ordering::Relaxed),
                connection_ns: connection_ns.load(Ordering::Relaxed),
                scoring_ns: scoring_ns.load(Ordering::Relaxed),
                subset_buffer_peak_bytes: threads * s * 2 * std::mem::size_of::<usize>(),
                substrate_build_ns: 0,
                substrate_query_ns: substrate_query_ns.load(Ordering::Relaxed),
                tile_view_ns: 0,
            },
        })
    }
}

/// Value-preserving bound-pruned enumeration (CELF-style).
///
/// # The admissible bound
///
/// For a seed subset `S`, every greedy pick lands in the hop-budget
/// matroid's ground set — cells within `h_max` hops of some seed — so
/// users served by those UAVs lie in `∪_{v∈S} U_h(v)`, where `U_h(v)`
/// is the union over all radio classes of users coverable from any
/// cell within `h_max` hops of `v`. UAVs deployed *outside* those
/// balls are relay/gateway commitments, which always continue down the
/// capacity order after at least the `s` seeds, so their total served
/// users cannot exceed `tail_caps = Σ` capacities of the fleet ranked
/// `≥ s` by capacity. Hence
///
/// `served(S) ≤ min(Σ capacities, n, Σ_{v∈S} ūh(v) + tail_caps)`
///
/// is an admissible (never under-estimating) bound on the pre-leftover
/// served count — exactly the quantity subsets compete on — for any
/// `ūh(v) ≥ |U_h(v)|`; the implementation uses the cheap cached-count
/// over-estimate from [`reach_coverage_bounds`].
///
/// # Deterministic parallel pruning
///
/// Ranks advance in fixed chunks of [`BOUND_CHUNK`] regardless of the
/// thread count; all workers process each chunk in lockstep (worker
/// `w` owns the ranks congruent to `w` within the chunk) behind a
/// [`Barrier`]. The incumbent is snapshotted once per chunk, *after*
/// the barrier, and every skip decision compares against that snapshot
/// only — never against mid-chunk discoveries; a second barrier at the
/// end of each chunk holds every merge back until all workers have
/// finished their reads, so no chunk-local best can leak into a
/// sibling's skip decisions. The set of pruned ranks (and therefore
/// every counter) is thus identical for 1, 2 or `N` workers. Skipping is safe only when the bound is *strictly* below
/// the incumbent, or equal with the incumbent at a lower rank: an
/// equal-bound subset at a lower rank could still win the tie-break.
///
/// # Saturation early exit
///
/// `min(Σ capacities, n)` bounds *every* subset, so once the incumbent
/// reaches it at a rank below the next chunk, the entire remaining
/// tail is pruned wholesale — without even walking the combinations or
/// running their chain checks. The canonical greedy pool order (see
/// [`crate::ApproxConfig::seed_strategy`]) makes this the common case
/// on capacity-saturated instances: a fleet-saturating subset sits in
/// the first few ranks, and the sweep stops after a handful of chunks.
/// Tail ranks skipped this way are counted as bound-pruned even when
/// the chain filter would also have rejected them — the accounting
/// identity `enumerated = evaluated + chain_pruned + bound_pruned`
/// still holds, but `chain_pruned` alone is no longer comparable with
/// the exhaustive sweep's.
pub struct BoundPrunedEnumeration;

/// The shared incumbent of the bound-pruned sweep.
struct Incumbent {
    served: usize,
    rank: u64,
    placements: Vec<(usize, CellIndex)>,
    seeds: Vec<CellIndex>,
}

/// Admissible over-count of `|U_h(v)|` per pool position: the sum,
/// over every cell within `h_max` hops of the pool member and every
/// radio class, of the cached coverable-list length. Summing without
/// deduplication can only *over*-estimate the true union size, so the
/// bound stays admissible, while the cached per-(class, cell) counts
/// turn the computation into O(cells) table lookups per position
/// instead of a full user-list traversal — the exact union walk cost
/// tens of milliseconds at the 100k-user scale, dominating the pruned
/// sweep it was meant to accelerate.
fn reach_coverage_bounds(ctx: &SearchContext<'_>) -> Vec<u64> {
    let instance = ctx.instance;
    let h_max = ctx.plan.h_max();
    let classes = instance.num_radio_classes();
    let cell_counts: Vec<u64> = (0..instance.num_locations())
        .map(|w| {
            (0..classes)
                .map(|class| instance.coverable_class_count(class, w) as u64)
                .sum()
        })
        .collect();
    ctx.pool
        .iter()
        .map(|&v| {
            let mut count = 0u64;
            for (w, &hops) in ctx.substrate.hop_row(v).iter().enumerate() {
                if hops == UNREACHABLE_HOPS || hops as usize > h_max {
                    continue;
                }
                count += cell_counts[w];
            }
            count
        })
        .collect()
}

impl SeedStrategy for BoundPrunedEnumeration {
    fn name(&self) -> &'static str {
        "bound-pruned"
    }

    #[allow(clippy::too_many_lines)]
    fn search(&self, ctx: &SearchContext<'_>) -> Result<SearchResult, CoreError> {
        let instance = ctx.instance;
        let s = ctx.config.s();
        let pool_len = ctx.pool.len();
        let total = binomial(pool_len, s);

        let t_setup = Instant::now();
        let uh = reach_coverage_bounds(ctx);
        let cap_total: u64 = instance.uavs().iter().map(|u| u64::from(u.capacity)).sum();
        let tail_caps: u64 = instance.uavs_by_capacity()[s..]
            .iter()
            .map(|&u| u64::from(instance.uavs()[u].capacity))
            .sum();
        let cap_bound = cap_total.min(instance.num_users() as u64);
        let setup_ns = t_setup.elapsed().as_nanos() as u64;

        // Prime the incumbent before any worker spawns, from two
        // complementary candidates evaluated once on this thread:
        //
        // 1. the lowest-rank chain-feasible combination — under the
        //    canonical greedy pool order this is usually the winner
        //    itself, and its rank-0-ish position means *every* later
        //    rank with an equal bound tie-prunes immediately;
        // 2. the first chain-feasible combination of the highest-|U_h|
        //    pool positions — a served-count safety net for instances
        //    where the greedy order's head is not fleet-saturating.
        //
        // A strong early incumbent is what lets chunk 0's successors
        // prune at all.
        let mut primer_profile = PhaseNanos::default();
        let mut primer_gain_queries = 0u64;
        let mut primer_evaluated = 0usize;
        let mut primer_unconnectable = 0usize;
        let mut primer_ranks: Vec<u64> = Vec::with_capacity(2);
        let mut incumbent: Option<Incumbent> = None;
        {
            let mut candidates: Vec<Vec<usize>> = Vec::with_capacity(2);
            if pool_len >= s {
                let mut combo: Vec<usize> = (0..s).collect();
                let mut tries = 0usize;
                loop {
                    tries += 1;
                    let feasible = match &ctx.pool_dists {
                        Some(d) => chain_feasible(d, &combo, &ctx.chain_budgets),
                        None => true,
                    };
                    if feasible {
                        candidates.push(combo.clone());
                        break;
                    }
                    if tries >= PRIMER_TRIES || !next_combination(&mut combo, pool_len) {
                        break;
                    }
                }
            }
            let mut order: Vec<usize> = (0..pool_len).collect();
            order.sort_by_key(|&p| (Reverse(uh[p]), p));
            let top = order.len().min(PRIMER_POOL);
            if top >= s {
                let mut slot_combo: Vec<usize> = (0..s).collect();
                let mut tries = 0usize;
                loop {
                    tries += 1;
                    let mut positions: Vec<usize> = slot_combo.iter().map(|&i| order[i]).collect();
                    positions.sort_unstable();
                    let feasible = match &ctx.pool_dists {
                        Some(d) => chain_feasible(d, &positions, &ctx.chain_budgets),
                        None => true,
                    };
                    if feasible {
                        if !candidates.contains(&positions) {
                            candidates.push(positions);
                        }
                        break;
                    }
                    if tries >= PRIMER_TRIES || !next_combination(&mut slot_combo, top) {
                        break;
                    }
                }
            }
            if !candidates.is_empty() {
                let mut ws = SweepWorkspace::with_substrate(instance, ctx.substrate);
                for positions in candidates {
                    let seeds: Vec<CellIndex> = positions.iter().map(|&p| ctx.pool[p]).collect();
                    let rank = rank_of_combination(&positions, pool_len, s);
                    match ws.solve_subset(ctx.plan, &seeds, &mut primer_profile) {
                        SubsetOutcome::Served(served) => {
                            let better = match &incumbent {
                                None => true,
                                Some(i) => {
                                    served > i.served || (served == i.served && rank < i.rank)
                                }
                            };
                            if better {
                                incumbent = Some(Incumbent {
                                    served,
                                    rank,
                                    placements: ws.placements().to_vec(),
                                    seeds,
                                });
                            }
                        }
                        SubsetOutcome::Unconnectable => primer_unconnectable += 1,
                        SubsetOutcome::EscapedView => {
                            unreachable!("the monolithic sweep runs without a tile view")
                        }
                    }
                    primer_evaluated += 1;
                    primer_ranks.push(rank);
                }
                primer_gain_queries = ws.gain_queries();
            }
        }

        let incumbent = Mutex::new(incumbent);
        let poisoned = AtomicBool::new(false);
        let panic_msg: Mutex<Option<String>> = Mutex::new(None);
        let chain_pruned = AtomicUsize::new(0);
        let bound_pruned = AtomicUsize::new(0);
        let evaluated = AtomicUsize::new(primer_evaluated);
        let unconnectable = AtomicUsize::new(primer_unconnectable);
        let gain_queries = AtomicU64::new(primer_gain_queries);
        let enumeration_ns = AtomicU64::new(setup_ns + primer_profile.enumeration);
        let greedy_ns = AtomicU64::new(primer_profile.greedy);
        let connection_ns = AtomicU64::new(primer_profile.connection);
        let scoring_ns = AtomicU64::new(primer_profile.scoring);
        let substrate_query_ns = AtomicU64::new(primer_profile.substrate_query);
        let threads = ctx
            .config
            .num_threads()
            .min(usize::try_from(total).unwrap_or(usize::MAX))
            .max(1);
        let barrier = Barrier::new(threads);

        let worker = |w: usize| {
            let mut ws = SweepWorkspace::with_substrate(instance, ctx.substrate);
            let mut profile = PhaseNanos::default();
            let mut combo: Vec<usize> = Vec::with_capacity(s);
            let mut seeds: Vec<CellIndex> = Vec::with_capacity(s);
            let mut local_chain = 0usize;
            let mut local_bound = 0usize;
            let mut local_eval = 0usize;
            let mut local_unconn = 0usize;
            let mut chunk_start = 0u64;
            while chunk_start < total {
                // The barrier is the determinism (and memory-ordering)
                // fence: after it, every merge from the previous chunk
                // is visible and no sibling is processing ranks, so the
                // snapshot below is identical across workers.
                barrier.wait();
                let snapshot: Option<(usize, u64)> = incumbent
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .as_ref()
                    .map(|i| (i.served, i.rank));
                // Saturation early exit: served can never exceed
                // `cap_bound = min(Σ capacities, n)`, so once the
                // incumbent reaches that global ceiling at a rank every
                // remaining combination outranks, no successor can win
                // — not even on the tie-break. The whole tail is then
                // bound-prunable wholesale, without walking a single
                // further combination or chain check. Merges only
                // happen behind the second fence, so every worker reads
                // the same snapshot here and they all exit on the same
                // chunk — the barrier counts stay paired.
                if let Some((inc_served, inc_rank)) = snapshot {
                    if inc_served as u64 >= cap_bound && inc_rank < chunk_start {
                        if w == 0 {
                            local_bound += (total - chunk_start) as usize;
                        }
                        break;
                    }
                }
                let end = (chunk_start + BOUND_CHUNK).min(total);
                let mut chunk_best: RankedBest = None;
                let mut dead = false;
                let mut rank = chunk_start + w as u64;
                if rank < end {
                    let t_enum = Instant::now();
                    unrank_combination(rank, pool_len, s, &mut combo);
                    profile.enumeration += t_enum.elapsed().as_nanos() as u64;
                }
                while rank < end {
                    let t_enum = Instant::now();
                    let feasible = match &ctx.pool_dists {
                        Some(d) => chain_feasible(d, &combo, &ctx.chain_budgets),
                        None => true,
                    };
                    profile.enumeration += t_enum.elapsed().as_nanos() as u64;
                    if !feasible {
                        local_chain += 1;
                    } else if primer_ranks.contains(&rank) {
                        // Already evaluated (and counted) by the primer.
                    } else {
                        let mut optimistic = tail_caps;
                        for &p in &combo {
                            optimistic += uh[p];
                        }
                        let bound = optimistic.min(cap_bound);
                        let skip = match snapshot {
                            None => false,
                            Some((inc_served, inc_rank)) => {
                                bound < inc_served as u64
                                    || (bound == inc_served as u64 && inc_rank < rank)
                            }
                        };
                        if skip {
                            local_bound += 1;
                        } else {
                            seeds.clear();
                            seeds.extend(combo.iter().map(|&i| ctx.pool[i]));
                            // Contain panics *inside* the barrier
                            // discipline: an uncaught panic would strand
                            // the sibling workers at the next wait.
                            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                if ctx.config.panic_rank() == Some(rank) {
                                    panic!("injected worker panic at enumeration rank {rank}");
                                }
                                ws.solve_subset(ctx.plan, &seeds, &mut profile)
                            }));
                            match outcome {
                                Ok(SubsetOutcome::Served(served)) => {
                                    local_eval += 1;
                                    let better = match &chunk_best {
                                        None => true,
                                        Some((bs, br, _, _)) => {
                                            served > *bs || (served == *bs && rank < *br)
                                        }
                                    };
                                    if better {
                                        chunk_best = Some((
                                            served,
                                            rank,
                                            ws.placements().to_vec(),
                                            seeds.clone(),
                                        ));
                                    }
                                }
                                Ok(SubsetOutcome::Unconnectable) => {
                                    local_eval += 1;
                                    local_unconn += 1;
                                }
                                Ok(SubsetOutcome::EscapedView) => {
                                    unreachable!("the monolithic sweep runs without a tile view")
                                }
                                Err(payload) => {
                                    panic_msg
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .get_or_insert_with(|| panic_payload_message(&*payload));
                                    poisoned.store(true, Ordering::Release);
                                    dead = true;
                                    break;
                                }
                            }
                        }
                    }
                    let next = rank + threads as u64;
                    if next < end {
                        let t_enum = Instant::now();
                        for _ in 0..threads {
                            next_combination(&mut combo, pool_len);
                        }
                        profile.enumeration += t_enum.elapsed().as_nanos() as u64;
                    }
                    rank = next;
                }
                // Second fence: no worker may merge this chunk's best
                // until every worker has finished reading the snapshot
                // and processing its ranks — otherwise a fast sibling's
                // merge would leak into a slow sibling's skip decisions
                // and the pruned counter would depend on thread timing.
                barrier.wait();
                if !dead {
                    if let Some((served, rank, placements, seeds)) = chunk_best {
                        let mut inc = incumbent.lock().unwrap_or_else(|e| e.into_inner());
                        let better = match &*inc {
                            None => true,
                            Some(i) => served > i.served || (served == i.served && rank < i.rank),
                        };
                        if better {
                            *inc = Some(Incumbent {
                                served,
                                rank,
                                placements,
                                seeds,
                            });
                        }
                    }
                }
                chunk_start += BOUND_CHUNK;
                // Poisoned check: strictly between the second fence and
                // the next chunk's top fence no worker can be inside
                // the rank loop, so the flag is stable here — either
                // every worker sees the panic and they all break
                // together, or none does. (Checking right after the
                // *top* fence instead races with a same-chunk panic
                // from a faster sibling: the store becomes visible
                // before this worker starts the chunk, it breaks, and
                // the sibling waits at the second fence forever.)
                if poisoned.load(Ordering::Acquire) {
                    break;
                }
            }
            chain_pruned.fetch_add(local_chain, Ordering::Relaxed);
            bound_pruned.fetch_add(local_bound, Ordering::Relaxed);
            evaluated.fetch_add(local_eval, Ordering::Relaxed);
            unconnectable.fetch_add(local_unconn, Ordering::Relaxed);
            gain_queries.fetch_add(ws.gain_queries(), Ordering::Relaxed);
            enumeration_ns.fetch_add(profile.enumeration, Ordering::Relaxed);
            greedy_ns.fetch_add(profile.greedy, Ordering::Relaxed);
            connection_ns.fetch_add(profile.connection, Ordering::Relaxed);
            scoring_ns.fetch_add(profile.scoring, Ordering::Relaxed);
            substrate_query_ns.fetch_add(profile.substrate_query, Ordering::Relaxed);
        };

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| scope.spawn(move || worker(w)))
                .collect();
            for h in handles {
                // Workers contain their own panics via catch_unwind;
                // a join error would mean a panic outside the guarded
                // region, which the message slot still reports.
                if let Err(payload) = h.join() {
                    panic_msg
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .get_or_insert_with(|| panic_payload_message(&*payload));
                    poisoned.store(true, Ordering::Release);
                }
            }
        });
        if let Some(message) = panic_msg.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(CoreError::Sweep(message));
        }

        let best = incumbent
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .map(|i| BestCandidate {
                served: i.served,
                seeds: i.seeds,
                placements: i.placements,
            });
        Ok(SearchResult {
            best,
            subsets_enumerated: total as usize,
            subsets_chain_pruned: chain_pruned.load(Ordering::Relaxed),
            subsets_bound_pruned: bound_pruned.load(Ordering::Relaxed),
            subsets_evaluated: evaluated.load(Ordering::Relaxed),
            subsets_unconnectable: unconnectable.load(Ordering::Relaxed),
            gain_queries: gain_queries.load(Ordering::Relaxed),
            profile: SweepProfile {
                enumeration_ns: enumeration_ns.load(Ordering::Relaxed),
                greedy_ns: greedy_ns.load(Ordering::Relaxed),
                connection_ns: connection_ns.load(Ordering::Relaxed),
                scoring_ns: scoring_ns.load(Ordering::Relaxed),
                subset_buffer_peak_bytes: threads * s * 2 * std::mem::size_of::<usize>(),
                substrate_build_ns: 0,
                substrate_query_ns: substrate_query_ns.load(Ordering::Relaxed),
                tile_view_ns: 0,
            },
        })
    }
}

/// Density-guided beam search seeded from the highest-coverage cells.
///
/// Depth 1 admits the `width` pool members with the largest
/// [`Instance::best_coverage_count`] (the spatial index's per-cell
/// user-density signal); each further depth extends every beam state
/// with every pool member, dedupes, drops partial subsets that already
/// violate the chain budgets (the feasible prefix of any feasible full
/// ordering always survives, so no feasible final subset becomes
/// unreachable — only truncation loses candidates), scores states by
/// summed density and keeps the best `width`. Only the final beam is
/// fully evaluated, sequentially in lexicographic order so ties break
/// exactly like the enumerative strategies. When `C(pool, s)` fits
/// inside the width the beam degenerates to exhaustive enumeration
/// with chain pruning.
///
/// The injected-panic test hook (`inject_worker_panic_at`) addresses
/// enumeration ranks, which the beam does not have; like the sharded
/// sweep, it ignores the hook.
pub struct DensityBeam {
    /// Beam width `B`.
    pub width: usize,
}

impl SeedStrategy for DensityBeam {
    fn name(&self) -> &'static str {
        "beam"
    }

    fn search(&self, ctx: &SearchContext<'_>) -> Result<SearchResult, CoreError> {
        let instance = ctx.instance;
        let s = ctx.config.s();
        let width = self.width.max(1);
        let pool_len = ctx.pool.len();
        let t_enum = Instant::now();
        let density: Vec<u64> = ctx
            .pool
            .iter()
            .map(|&v| instance.best_coverage_count(v) as u64)
            .collect();
        let mut enumerated = 0usize;
        let mut chain_pruned = 0usize;
        let mut peak_states = 0usize;

        let mut order: Vec<usize> = (0..pool_len).collect();
        order.sort_by_key(|&p| (Reverse(density[p]), p));
        let mut beam: Vec<Vec<usize>> = order.iter().take(width).map(|&p| vec![p]).collect();
        enumerated += beam.len();

        for depth in 2..=s {
            let mut candidates: Vec<Vec<usize>> = Vec::new();
            for state in &beam {
                for q in 0..pool_len {
                    if state.contains(&q) {
                        continue;
                    }
                    let mut next = Vec::with_capacity(depth);
                    next.extend_from_slice(state);
                    next.push(q);
                    next.sort_unstable();
                    candidates.push(next);
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
            peak_states = peak_states.max(candidates.len() * depth);
            enumerated += candidates.len();
            if let Some(d) = &ctx.pool_dists {
                let before = candidates.len();
                candidates.retain(|c| chain_feasible(d, c, &ctx.chain_budgets[..depth - 1]));
                chain_pruned += before - candidates.len();
            }
            let score = |state: &[usize]| -> u64 { state.iter().map(|&p| density[p]).sum::<u64>() };
            candidates.sort_by(|a, b| score(b).cmp(&score(a)).then_with(|| a.cmp(b)));
            candidates.truncate(width);
            candidates.sort_unstable();
            beam = candidates;
            if beam.is_empty() {
                break;
            }
        }
        let mut profile = PhaseNanos::default();
        profile.enumeration += t_enum.elapsed().as_nanos() as u64;

        // Full evaluation of the final beam, in lexicographic subset
        // order: accepting only strict improvements makes the earliest
        // (lowest-rank) subset win ties, like the enumerative engines.
        let mut ws = SweepWorkspace::with_substrate(instance, ctx.substrate);
        let mut evaluated = 0usize;
        let mut unconnectable = 0usize;
        let mut best: Option<(usize, Vec<usize>)> = None;
        let mut best_placements: Vec<(usize, CellIndex)> = Vec::new();
        let mut seeds: Vec<CellIndex> = Vec::with_capacity(s);
        for state in &beam {
            seeds.clear();
            seeds.extend(state.iter().map(|&p| ctx.pool[p]));
            match ws.solve_subset(ctx.plan, &seeds, &mut profile) {
                SubsetOutcome::Served(served) => {
                    evaluated += 1;
                    let better = match &best {
                        None => true,
                        Some((bs, _)) => served > *bs,
                    };
                    if better {
                        best = Some((served, state.clone()));
                        best_placements = ws.placements().to_vec();
                    }
                }
                SubsetOutcome::Unconnectable => {
                    evaluated += 1;
                    unconnectable += 1;
                }
                SubsetOutcome::EscapedView => {
                    unreachable!("the monolithic sweep runs without a tile view")
                }
            }
        }
        let gain_queries = ws.gain_queries();

        Ok(SearchResult {
            best: best.map(|(served, state)| BestCandidate {
                served,
                seeds: state.iter().map(|&p| ctx.pool[p]).collect(),
                placements: best_placements,
            }),
            subsets_enumerated: enumerated,
            subsets_chain_pruned: chain_pruned,
            subsets_bound_pruned: 0,
            subsets_evaluated: evaluated,
            subsets_unconnectable: unconnectable,
            gain_queries,
            profile: SweepProfile {
                enumeration_ns: profile.enumeration,
                greedy_ns: profile.greedy,
                connection_ns: profile.connection,
                scoring_ns: profile.scoring,
                subset_buffer_peak_bytes: peak_states
                    .max(width * s)
                    .max(pool_len)
                    .saturating_mul(std::mem::size_of::<usize>()),
                substrate_build_ns: 0,
                substrate_query_ns: profile.substrate_query,
                tile_view_ns: 0,
            },
        })
    }

    fn planned_evaluations(&self, ctx: &SearchContext<'_>, _limit: usize) -> usize {
        usize::try_from(ctx.total_subsets())
            .unwrap_or(usize::MAX)
            .min(self.width.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_alg_with_stats, ApproxConfig};
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn grid(cell: f64, side: f64) -> uavnet_geom::Grid {
        GridSpec::new(AreaSpec::new(side, side, 500.0).unwrap(), cell, 300.0)
            .unwrap()
            .build()
    }

    fn two_cluster_instance() -> Instance {
        let mut b = Instance::builder(grid(300.0, 1500.0), 450.0);
        for i in 0..6 {
            b.add_user(Point2::new(100.0 + 10.0 * i as f64, 120.0), 2_000.0);
        }
        for i in 0..6 {
            b.add_user(Point2::new(1_350.0 + 10.0 * i as f64, 1_380.0), 2_000.0);
        }
        b.add_user(Point2::new(750.0, 750.0), 2_000.0);
        for cap in [4u32, 3, 3, 2, 2, 2] {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, 400.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn kind_parses_displays_and_names() {
        for (text, kind) in [
            ("exhaustive", SeedStrategyKind::Exhaustive),
            ("bound-pruned", SeedStrategyKind::BoundPruned),
            ("bound_pruned", SeedStrategyKind::BoundPruned),
            (
                "beam",
                SeedStrategyKind::Beam {
                    width: DEFAULT_BEAM_WIDTH,
                },
            ),
            ("beam:7", SeedStrategyKind::Beam { width: 7 }),
        ] {
            assert_eq!(text.parse::<SeedStrategyKind>(), Ok(kind));
        }
        assert!("beam:0".parse::<SeedStrategyKind>().is_err());
        assert!("beam:x".parse::<SeedStrategyKind>().is_err());
        assert!("simulated-annealing".parse::<SeedStrategyKind>().is_err());
        assert_eq!(SeedStrategyKind::Beam { width: 9 }.to_string(), "beam:9");
        assert_eq!(SeedStrategyKind::BoundPruned.to_string(), "bound-pruned");
        assert_eq!(SeedStrategyKind::Beam { width: 9 }.name(), "beam");
    }

    #[test]
    fn rank_of_combination_inverts_unranking() {
        for (n, s) in [(1usize, 1usize), (5, 1), (6, 2), (7, 3), (8, 5)] {
            let mut combo = Vec::new();
            for rank in 0..binomial(n, s) {
                unrank_combination(rank, n, s, &mut combo);
                assert_eq!(rank_of_combination(&combo, n, s), rank, "C({n},{s})");
            }
        }
    }

    #[test]
    fn chain_survivor_cap_matches_direct_count() {
        // No distances: every combination survives.
        assert_eq!(chain_survivors_capped(6, 2, None, &[], usize::MAX), 15);
        assert_eq!(chain_survivors_capped(6, 2, None, &[], 4), 5); // capped
        let d = vec![
            vec![Some(0), Some(1), Some(2)],
            vec![Some(1), Some(0), Some(1)],
            vec![Some(2), Some(1), Some(0)],
        ];
        // Budget 1: {0,1} and {1,2} survive, {0,2} is pruned.
        assert_eq!(chain_survivors_capped(3, 2, Some(&d), &[1], usize::MAX), 2);
    }

    #[test]
    fn bound_pruned_is_bit_identical_to_exhaustive() {
        let inst = two_cluster_instance();
        for s in [1usize, 2] {
            let exhaustive = ApproxConfig::with_s(s).threads(2);
            let pruned = exhaustive
                .clone()
                .seed_strategy(SeedStrategyKind::BoundPruned);
            let (sol_e, stats_e) = approx_alg_with_stats(&inst, &exhaustive).unwrap();
            let (sol_p, stats_p) = approx_alg_with_stats(&inst, &pruned).unwrap();
            assert_eq!(
                sol_p.deployment().placements(),
                sol_e.deployment().placements(),
                "s = {s}"
            );
            assert_eq!(sol_p.served_users(), sol_e.served_users());
            assert_eq!(stats_p.best_seeds, stats_e.best_seeds);
            assert_eq!(stats_p.subsets_enumerated, stats_e.subsets_enumerated);
            // Stats identity: every rank is accounted exactly once.
            assert_eq!(
                stats_p.subsets_enumerated,
                stats_p.subsets_evaluated
                    + stats_p.subsets_chain_pruned
                    + stats_p.subsets_bound_pruned,
                "s = {s}"
            );
            assert_eq!(stats_p.strategy, "bound-pruned");
        }
    }

    #[test]
    fn bound_pruned_counters_are_thread_count_invariant() {
        let inst = two_cluster_instance();
        let runs: Vec<_> = [1usize, 2, 4]
            .iter()
            .map(|&t| {
                approx_alg_with_stats(
                    &inst,
                    &ApproxConfig::with_s(2)
                        .threads(t)
                        .seed_strategy(SeedStrategyKind::BoundPruned),
                )
                .unwrap()
            })
            .collect();
        for (sol, stats) in &runs[1..] {
            assert_eq!(
                sol.deployment().placements(),
                runs[0].0.deployment().placements()
            );
            assert_eq!(stats.subsets_bound_pruned, runs[0].1.subsets_bound_pruned);
            assert_eq!(stats.subsets_evaluated, runs[0].1.subsets_evaluated);
            assert_eq!(stats.gain_queries, runs[0].1.gain_queries);
        }
    }

    #[test]
    fn bound_pruned_worker_panic_is_a_typed_error_not_a_deadlock() {
        // A rank only panics if the sweep actually evaluates it (chain-
        // or bound-pruned ranks never reach the hook), so scan a few:
        // each thread count must surface at least one injected panic as
        // a typed error, and no injection may deadlock the barrier
        // scheme (the test would hang) or abort the process.
        let inst = two_cluster_instance();
        for threads in [1usize, 2, 4] {
            let mut hit = false;
            for rank in 0..12u64 {
                let config = ApproxConfig::with_s(2)
                    .threads(threads)
                    .seed_strategy(SeedStrategyKind::BoundPruned)
                    .inject_worker_panic_at(rank);
                match approx_alg_with_stats(&inst, &config) {
                    Err(CoreError::Sweep(msg)) => {
                        assert!(msg.contains("injected"), "{msg}");
                        hit = true;
                    }
                    Ok(_) => {} // rank was pruned before evaluation
                    Err(other) => panic!("expected CoreError::Sweep, got {other:?}"),
                }
            }
            assert!(hit, "no injected rank was evaluated at {threads} threads");
        }
    }

    #[test]
    fn untruncated_beam_matches_exhaustive() {
        // C(pool, 2) on this instance is far below a width of 1024, so
        // the beam degenerates to exhaustive-with-chain-pruning.
        let inst = two_cluster_instance();
        let exhaustive = ApproxConfig::with_s(2).threads(2);
        let beam = exhaustive
            .clone()
            .seed_strategy(SeedStrategyKind::Beam { width: 1024 });
        let (sol_e, stats_e) = approx_alg_with_stats(&inst, &exhaustive).unwrap();
        let (sol_b, stats_b) = approx_alg_with_stats(&inst, &beam).unwrap();
        assert_eq!(
            sol_b.deployment().placements(),
            sol_e.deployment().placements()
        );
        assert_eq!(sol_b.served_users(), sol_e.served_users());
        assert_eq!(stats_b.best_seeds, stats_e.best_seeds);
        assert_eq!(stats_b.subsets_evaluated, stats_e.subsets_evaluated);
        assert_eq!(stats_b.strategy, "beam");
    }

    #[test]
    fn narrow_beam_still_produces_a_valid_competitive_solution() {
        let inst = two_cluster_instance();
        let (sol, stats) = approx_alg_with_stats(
            &inst,
            &ApproxConfig::with_s(2)
                .threads(2)
                .seed_strategy(SeedStrategyKind::Beam { width: 2 }),
        )
        .unwrap();
        sol.validate(&inst).unwrap();
        assert!(stats.subsets_evaluated <= 2);
        assert!(sol.served_users() > 0);
    }

    #[test]
    fn strategy_adjusted_guard_lets_a_narrow_beam_through() {
        // The raw enumeration exceeds the limit, but the beam plans at
        // most `width` evaluations — the guard must use the latter.
        let inst = two_cluster_instance();
        let config = ApproxConfig::with_s(2)
            .max_subsets(4)
            .seed_strategy(SeedStrategyKind::Beam { width: 3 });
        let (sol, _) = approx_alg_with_stats(&inst, &config).unwrap();
        sol.validate(&inst).unwrap();
        let exhaustive = ApproxConfig::with_s(2).max_subsets(4);
        assert!(matches!(
            approx_alg_with_stats(&inst, &exhaustive),
            Err(CoreError::InvalidParameters(_))
        ));
    }
}
