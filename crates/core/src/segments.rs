//! Segment arithmetic of §III-C/D: the hop budgets `Q_h` (Eq. 1) and
//! the relay-count upper bound `g(L, p_1 … p_{s+1})` (Eq. 2, Lemma 2).
//!
//! A subpath with `L` nodes containing `s` seeds splits into `s + 1`
//! segments with `p_1, …, p_{s+1}` non-seed nodes
//! (`Σ p_i = L − s`). `p_1` and `p_{s+1}` hang off the outer seeds;
//! the middle segments sit between two seeds, so their nodes are at
//! most `⌈p_i / 2⌉` hops from the nearer seed.

/// The maximum seed-distance `h_max = max(p_1, p_{s+1}, max_i ⌈p_i/2⌉)`
/// over the middle segments (§III-C).
///
/// # Panics
///
/// Panics if `p` has fewer than two entries (`s ≥ 1` requires
/// `s + 1 ≥ 2` segments).
pub fn h_max(p: &[usize]) -> usize {
    assert!(p.len() >= 2, "need s+1 >= 2 segment sizes, got {}", p.len());
    let outer = p[0].max(p[p.len() - 1]);
    let middle = p[1..p.len() - 1]
        .iter()
        .map(|&pi| pi.div_ceil(2))
        .max()
        .unwrap_or(0);
    outer.max(middle)
}

/// The hop budgets `Q_0 … Q_{h_max}` of Eq. 1:
/// `Q_0 = L` and, for `h ≥ 1`,
/// `Q_h = max(p_1 − (h−1), 0) + Σ_{i=2}^{s} max(p_i − 2(h−1), 0)
///        + max(p_{s+1} − (h−1), 0)`.
///
/// `Q_h` bounds how many chosen locations may lie at least `h` hops
/// from the seed set; it parameterizes the matroid `M2`.
///
/// # Panics
///
/// Panics if `p` has fewer than two entries or `Σ p_i ≠ L − s` (with
/// `s = p.len() − 1`).
///
/// # Examples
///
/// ```
/// use uavnet_core::q_budgets;
/// // The paper's Fig. 2(d): L = 10, s = 3, p = (1, 2, 2, 2)
/// // gives Q = [10, 7, 1].
/// assert_eq!(q_budgets(10, &[1, 2, 2, 2]), vec![10, 7, 1]);
/// ```
pub fn q_budgets(l: usize, p: &[usize]) -> Vec<usize> {
    assert!(p.len() >= 2, "need s+1 >= 2 segment sizes");
    let s = p.len() - 1;
    let total: usize = p.iter().sum();
    assert!(
        total == l - s,
        "segment sizes sum to {total}, expected L - s = {}",
        l - s
    );
    let hm = h_max(p);
    let mut q = Vec::with_capacity(hm + 1);
    q.push(l);
    for h in 1..=hm {
        let mut qh = p[0].saturating_sub(h - 1) + p[s].saturating_sub(h - 1);
        for &pi in &p[1..s] {
            qh += pi.saturating_sub(2 * (h - 1));
        }
        q.push(qh);
    }
    q
}

/// The relay bound `g(L, p_1 … p_{s+1})` of Eq. 2 (proved in Lemma 2):
/// an upper bound on the number of UAVs needed to connect any
/// `M2`-independent location set of `L` nodes back to the seeds:
///
/// `g = s + Σ_{i=2}^{s} p_i + p_1(p_1+1)/2
///    + Σ_{i=2}^{s} (p_i² + 2p_i + (p_i mod 2)) / 4
///    + p_{s+1}(p_{s+1}+1)/2`.
///
/// Algorithm 1 maximizes `L` subject to `g ≤ K`.
///
/// # Panics
///
/// Panics if `p` has fewer than two entries.
///
/// # Examples
///
/// ```
/// use uavnet_core::g_upper_bound;
/// // s = 3, p = (1, 2, 2, 2): g = 3 + (2+2) + 1 + (2+2) + 3 = 15.
/// assert_eq!(g_upper_bound(&[1, 2, 2, 2]), 15);
/// ```
pub fn g_upper_bound(p: &[usize]) -> usize {
    assert!(p.len() >= 2, "need s+1 >= 2 segment sizes");
    let s = p.len() - 1;
    let p1 = p[0];
    let ps1 = p[s];
    let middle_sum: usize = p[1..s].iter().sum();
    let middle_relays: usize = p[1..s]
        .iter()
        .map(|&pi| (pi * pi + 2 * pi + (pi % 2)) / 4)
        .sum();
    s + middle_sum + p1 * (p1 + 1) / 2 + middle_relays + ps1 * (ps1 + 1) / 2
}

/// Direct (unsimplified) evaluation of the bound in inequality (4) of
/// Lemma 2: `s + Σ_{i=2}^s p_i + Σ_{h=1}^{h_max} Q_h`. Equal to
/// [`g_upper_bound`]; kept as an executable cross-check of the
/// closed-form algebra.
pub fn g_via_q_sums(l: usize, p: &[usize]) -> usize {
    let s = p.len() - 1;
    let q = q_budgets(l, p);
    let middle_sum: usize = p[1..s].iter().sum();
    s + middle_sum + q[1..].iter().sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_fig2d() {
        // s = 3, L = 10, p = (1, 2, 2, 2).
        let p = [1, 2, 2, 2];
        assert_eq!(h_max(&p), 2);
        assert_eq!(q_budgets(10, &p), vec![10, 7, 1]);
    }

    #[test]
    fn q0_is_l_and_q_decreasing() {
        let p = [3, 5, 0, 4, 2];
        let l: usize = p.iter().sum::<usize>() + (p.len() - 1);
        let q = q_budgets(l, &p);
        assert_eq!(q[0], l);
        for w in q.windows(2) {
            assert!(w[1] <= w[0], "Q must be non-increasing: {q:?}");
        }
        // The last budget is positive (h_max is tight).
        assert!(*q.last().unwrap() >= 1);
    }

    #[test]
    fn q1_counts_all_non_seed_nodes() {
        // At h = 1 every non-seed node is at least 1 hop away:
        // Q_1 = Σ p_i = L − s.
        for p in [vec![1, 2, 2, 2], vec![0, 0], vec![4, 7], vec![2, 3, 1]] {
            let s = p.len() - 1;
            let l = p.iter().sum::<usize>() + s;
            let q = q_budgets(l, &p);
            if q.len() > 1 {
                assert_eq!(q[1], l - s, "p={p:?}");
            }
        }
    }

    #[test]
    fn h_max_cases() {
        assert_eq!(h_max(&[0, 0]), 0); // s = 1, no non-seed nodes
        assert_eq!(h_max(&[3, 1]), 3); // outer segment dominates
        assert_eq!(h_max(&[1, 5, 1]), 3); // middle ⌈5/2⌉
        assert_eq!(h_max(&[0, 4, 0]), 2);
    }

    #[test]
    fn g_closed_form_matches_q_sum_form() {
        // The Lemma 2 derivation: g = s + Σ middle + Σ_{h≥1} Q_h.
        for p in [
            vec![1, 2, 2, 2],
            vec![0, 0],
            vec![5, 3],
            vec![2, 7, 1],
            vec![0, 4, 4, 0],
            vec![3, 3, 3, 3, 3],
            vec![0, 0, 0, 0],
            vec![6, 1, 2, 5],
        ] {
            let s = p.len() - 1;
            let l = p.iter().sum::<usize>() + s;
            assert_eq!(
                g_upper_bound(&p),
                g_via_q_sums(l, &p),
                "closed form diverges for p={p:?}"
            );
        }
    }

    #[test]
    fn g_examples() {
        // s = 1, p = (0, 0): a single seed, no extras: g = 1.
        assert_eq!(g_upper_bound(&[0, 0]), 1);
        // s = 1, p = (1, 1): g = 1 + 1 + 1 = 3.
        assert_eq!(g_upper_bound(&[1, 1]), 3);
        // s = 2, p = (0, 3, 0): middle only: g = 2 + 3 + (9+6+1)/4 = 9.
        assert_eq!(g_upper_bound(&[0, 3, 0]), 9);
    }

    #[test]
    fn g_is_at_least_l() {
        // g counts the L chosen nodes plus relays, so g ≥ L.
        for p in [vec![1, 2, 2, 2], vec![4, 4], vec![0, 9, 0], vec![2, 2, 2]] {
            let s = p.len() - 1;
            let l = p.iter().sum::<usize>() + s;
            assert!(g_upper_bound(&p) >= l, "p={p:?}");
        }
    }

    #[test]
    fn middle_relay_identity() {
        // Σ_{h=1}^{h_max} max(p − 2(h−1), 0) = (p² + 2p + (p mod 2)) / 4,
        // verified for both parities as Lemma 2 claims.
        for p in 0..30usize {
            let direct: usize = (1..=p.div_ceil(2)).map(|h| p - 2 * (h - 1)).sum();
            assert_eq!(direct, (p * p + 2 * p + p % 2) / 4, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn q_budgets_rejects_mismatched_sum() {
        let _ = q_budgets(10, &[1, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "s+1")]
    fn rejects_short_p() {
        let _ = h_max(&[1]);
    }
}
