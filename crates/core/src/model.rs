//! The problem instance: users, the heterogeneous fleet, channels, the
//! candidate-location graph and precomputed coverage tables.

use crate::coverage::{CoverageMemory, CoverageTables};
use crate::CoreError;
use serde::{Deserialize, Serialize};
use uavnet_channel::{AtgChannel, UavRadio, UavToUavChannel};
use uavnet_flow::UserList;
use uavnet_geom::{CellIndex, Grid, Point2, SpatialIndex};
use uavnet_graph::Graph;

/// A ground user: position and minimum data-rate requirement
/// `r_i^min` in bit/s (§II-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct User {
    /// Position on the ground plane.
    pub pos: Point2,
    /// Minimum acceptable data rate in bit/s (e.g. 2 000 for voice).
    pub min_rate_bps: f64,
}

/// A UAV of the heterogeneous fleet: service capacity `C_k` and the
/// radio of its mounted base station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uav {
    /// Maximum number of simultaneously served users.
    pub capacity: u32,
    /// The mounted base-station radio (power, gain, coverage radius).
    pub radio: UavRadio,
}

/// An immutable, preprocessed instance of the maximum connected
/// coverage problem.
///
/// Construction (via [`Instance::builder`]) precomputes:
///
/// * the **location graph** `G[V]`: an edge joins two candidate
///   hovering locations within `R_uav` of each other;
/// * **coverage tables**: for every distinct radio class and location,
///   the list of users that a UAV with that radio could serve there
///   (range *and* rate admissible).
#[derive(Debug, Clone)]
pub struct Instance {
    grid: Grid,
    users: Vec<User>,
    uavs: Vec<Uav>,
    atg: AtgChannel,
    uav_channel: UavToUavChannel,
    location_graph: Graph,
    /// Distinct radio classes; `radio_class[k]` maps UAV `k` to one.
    radio_class: Vec<usize>,
    /// User positions, extracted once for spatial-index queries.
    user_positions: Vec<Point2>,
    /// Uniform-grid index over `user_positions`, binned by the
    /// coarsest coverage radius of the fleet.
    user_index: SpatialIndex,
    /// Compressed `(class, location)` → coverable-user lists.
    coverage: CoverageTables,
    /// `best_coverage[location]` = max coverage count over all classes.
    best_coverage: Vec<usize>,
    /// UAV indices sorted by capacity, largest first.
    uavs_by_capacity: Vec<usize>,
    /// Ground position of the Internet uplink (emergency vehicle).
    gateway: Option<Point2>,
    /// `gateway_cells[loc]`: hovering there reaches the uplink.
    gateway_cells: Vec<bool>,
}

impl Instance {
    /// Starts building an instance over `grid` with UAV-to-UAV range
    /// `uav_range_m` and the default urban air-to-ground channel.
    pub fn builder(grid: Grid, uav_range_m: f64) -> InstanceBuilder {
        InstanceBuilder {
            grid,
            users: Vec::new(),
            uavs: Vec::new(),
            atg: AtgChannel::default(),
            uav_channel: UavToUavChannel::new(uav_range_m),
            gateway: None,
        }
    }

    /// The hovering-plane grid.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The ground users.
    #[inline]
    pub fn users(&self) -> &[User] {
        &self.users
    }

    /// Number of users `n`.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// The fleet, in the order UAVs were added.
    #[inline]
    pub fn uavs(&self) -> &[Uav] {
        &self.uavs
    }

    /// Number of UAVs `K`.
    #[inline]
    pub fn num_uavs(&self) -> usize {
        self.uavs.len()
    }

    /// Number of candidate hovering locations `m`.
    #[inline]
    pub fn num_locations(&self) -> usize {
        self.grid.num_cells()
    }

    /// A stable FNV-1a fingerprint of the problem instance — the
    /// dimensions, every user's position and rate demand, and every
    /// UAV's capacity and radio. Two instances built from the same
    /// inputs hash identically on any platform (the hash folds IEEE
    /// bit patterns, not rounded values), so the fingerprint stamped
    /// into a run's obs provenance (`uavnet_obs::Provenance`)
    /// identifies *what* was solved when two recordings are diffed.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut fold = |v: u64| h = (h ^ v).wrapping_mul(FNV_PRIME);
        fold(self.users.len() as u64);
        fold(self.uavs.len() as u64);
        fold(self.grid.num_cells() as u64);
        for u in &self.users {
            fold(u.pos.x.to_bits());
            fold(u.pos.y.to_bits());
            fold(u.min_rate_bps.to_bits());
        }
        for k in &self.uavs {
            fold(u64::from(k.capacity));
            fold(k.radio.tx_power_dbm().to_bits());
            fold(k.radio.antenna_gain_dbi().to_bits());
            fold(k.radio.user_range_m().to_bits());
        }
        h
    }

    /// The air-to-ground channel model.
    #[inline]
    pub fn atg(&self) -> &AtgChannel {
        &self.atg
    }

    /// The UAV-to-UAV channel model.
    #[inline]
    pub fn uav_channel(&self) -> &UavToUavChannel {
        &self.uav_channel
    }

    /// The candidate-location connectivity graph `G[V]`.
    #[inline]
    pub fn location_graph(&self) -> &Graph {
        &self.location_graph
    }

    /// UAV indices sorted by capacity, largest first (ties by index).
    ///
    /// Algorithm 2 deploys UAVs in exactly this order.
    #[inline]
    pub fn uavs_by_capacity(&self) -> &[usize] {
        &self.uavs_by_capacity
    }

    /// The ground position of the Internet gateway (an emergency
    /// communication vehicle, Fig. 1 of the paper), if the scenario
    /// has one.
    #[inline]
    pub fn gateway(&self) -> Option<Point2> {
        self.gateway
    }

    /// Whether a UAV hovering at `loc` can relay to the gateway
    /// vehicle (3-D distance within `R_uav`).
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    #[inline]
    pub fn is_gateway_cell(&self, loc: CellIndex) -> bool {
        self.gateway_cells[loc]
    }

    /// All gateway-capable cells (empty when no gateway is set, or the
    /// vehicle parked out of range of every cell).
    pub fn gateway_cells(&self) -> Vec<CellIndex> {
        self.gateway_cells
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g)
            .map(|(i, _)| i)
            .collect()
    }

    /// The radio-class index of a UAV: two UAVs share a class iff
    /// their radios are identical, so they cover exactly the same
    /// users from every location.
    ///
    /// # Panics
    ///
    /// Panics if `uav` is out of range.
    #[inline]
    pub fn radio_class(&self, uav: usize) -> usize {
        self.radio_class[uav]
    }

    /// Users that UAV `uav` could serve from location `loc`, as a
    /// borrowed ascending [`UserList`] over the compressed tables.
    /// Admissibility covers both the coverage radius of the UAV's
    /// radio and each user's minimum rate.
    ///
    /// # Panics
    ///
    /// Panics if `uav` or `loc` is out of range.
    #[inline]
    pub fn coverable(&self, uav: usize, loc: CellIndex) -> UserList<'_> {
        self.coverage.list(self.radio_class[uav], loc)
    }

    /// Number of users coverable by UAV `uav` from `loc` — an O(1)
    /// lookup of the cached list length.
    #[inline]
    pub fn coverage_count(&self, uav: usize, loc: CellIndex) -> usize {
        self.coverage.count(self.radio_class[uav], loc)
    }

    /// Coverable users by radio class instead of UAV index — the tile
    /// view builder walks every (class, location) pair once.
    #[inline]
    pub(crate) fn coverable_class(&self, class: usize, loc: CellIndex) -> UserList<'_> {
        self.coverage.list(class, loc)
    }

    /// Cached length of the per-(class, cell) coverable list — an O(1)
    /// lookup, used by the bound-pruned strategy's admissible
    /// reach-coverage over-count.
    #[inline]
    pub(crate) fn coverable_class_count(&self, class: usize, loc: CellIndex) -> usize {
        self.coverage.count(class, loc)
    }

    /// Number of distinct radio classes across the fleet.
    #[inline]
    pub(crate) fn num_radio_classes(&self) -> usize {
        self.coverage.num_classes()
    }

    /// Memory accounting for the compressed coverage tables
    /// (compressed vs would-be-uncompressed bytes and the per-encoding
    /// list tallies). Reported per scale in `BENCH_sweep.json`.
    pub fn coverage_memory(&self) -> CoverageMemory {
        self.coverage.memory()
    }

    /// The largest coverage count over the fleet at `loc` — a cheap
    /// upper bound used for seed pruning and relay ordering.
    /// Precomputed at build time, so this is a plain table lookup.
    ///
    /// # Panics
    ///
    /// Panics if `loc` is out of range.
    #[inline]
    pub fn best_coverage_count(&self, loc: CellIndex) -> usize {
        self.best_coverage[loc]
    }

    /// Calls `f` with the id of every user within `radius_m`
    /// (inclusive, planar) of `center`, via the spatial index built at
    /// construction time. Ids arrive bin-grouped, **not** globally
    /// sorted. This is the same index that backs the coverage tables
    /// and the leftover/redeploy paths.
    pub fn for_each_user_within(&self, center: Point2, radius_m: f64, f: impl FnMut(u32)) {
        self.user_index
            .for_each_within(&self.user_positions, center, radius_m, f);
    }

    /// Sorted ids of the users within `radius_m` (inclusive, planar)
    /// of `center`.
    pub fn users_within(&self, center: Point2, radius_m: f64) -> Vec<u32> {
        let mut ids = Vec::new();
        self.for_each_user_within(center, radius_m, |id| ids.push(id));
        ids.sort_unstable();
        ids
    }

    /// Recomputes the coverage tables by the all-pairs reference scan
    /// (no spatial index), in the same `coverage[class][location]`
    /// layout. Exists solely so tests can differentially check the
    /// indexed builder; not part of the public API surface.
    #[doc(hidden)]
    pub fn coverage_tables_bruteforce(&self) -> Vec<Vec<Vec<u32>>> {
        let m = self.num_locations();
        let num_classes = self.coverage.num_classes();
        let mut tables = vec![vec![Vec::new(); m]; num_classes];
        for (class, per_loc) in tables.iter_mut().enumerate() {
            let uav = self
                .radio_class
                .iter()
                .position(|&c| c == class)
                .expect("every class has a UAV");
            let radio = self.uavs[uav].radio;
            for (loc, slot) in per_loc.iter_mut().enumerate() {
                *slot = coverable_bruteforce(&self.atg, &radio, &self.grid, loc, &self.users);
            }
        }
        tables
    }

    /// The coverage tables decoded into the legacy `[class][location]`
    /// → sorted-user-ids layout. Exists for differential tests; use
    /// [`Instance::coverable`] in algorithm code (it borrows the
    /// compressed store instead of allocating).
    #[doc(hidden)]
    pub fn coverage_tables(&self) -> Vec<Vec<Vec<u32>>> {
        self.coverage.decode_all()
    }

    /// A degraded copy of this instance whose location graph lost the
    /// given UAV-to-UAV links (unordered cell pairs; pairs that were
    /// never edges are ignored). Coverage tables, fleet and users are
    /// shared semantics — only connectivity changes. Used by the
    /// fault-injection harness ([`crate::verify`]) to model jammed or
    /// shadowed inter-UAV links.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] if a pair references a
    /// non-existent location.
    pub fn with_severed_links(
        &self,
        severed: &[(CellIndex, CellIndex)],
    ) -> Result<Instance, CoreError> {
        let m = self.num_locations();
        for &(a, b) in severed {
            if a >= m || b >= m {
                return Err(CoreError::InvalidParameters(format!(
                    "severed link ({a}, {b}) references a location outside 0..{m}"
                )));
            }
        }
        let cut = |u: usize, v: usize| {
            severed
                .iter()
                .any(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u))
        };
        let graph = Graph::from_edges(m, self.location_graph.edges().filter(|&(u, v)| !cut(u, v)));
        let mut degraded = self.clone();
        degraded.location_graph = graph;
        Ok(degraded)
    }

    /// A copy of this instance with `extra` users appended (a demand
    /// surge). Coverage tables are rebuilt; existing user ids are
    /// preserved, the new users take ids `n..n + extra.len()`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInstance`] if an extra user lies outside the
    /// zone or has an invalid minimum rate.
    pub fn with_extra_users(&self, extra: &[User]) -> Result<Instance, CoreError> {
        let builder = InstanceBuilder {
            grid: self.grid.clone(),
            users: self.users.iter().chain(extra).copied().collect(),
            uavs: self.uavs.clone(),
            atg: self.atg,
            uav_channel: self.uav_channel,
            gateway: self.gateway,
        };
        let mut rebuilt = builder.build()?;
        // Preserve this instance's connectivity, which may already be
        // degraded by severed links.
        rebuilt.location_graph = self.location_graph.clone();
        Ok(rebuilt)
    }

    /// A copy of this instance with the listed users relocated (a
    /// mobility tick). Coverage tables are rebuilt; every user keeps
    /// its id, rate demand and ordering — only positions change.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] if a move names a user id that
    /// does not exist; [`CoreError::InvalidInstance`] if a new position
    /// lies outside the zone.
    pub fn with_moved_users(&self, moves: &[(u32, Point2)]) -> Result<Instance, CoreError> {
        let n = self.num_users();
        let mut users = self.users.clone();
        for &(id, pos) in moves {
            let Some(user) = users.get_mut(id as usize) else {
                return Err(CoreError::InvalidParameters(format!(
                    "moved user {id} outside 0..{n}"
                )));
            };
            user.pos = pos;
        }
        let builder = InstanceBuilder {
            grid: self.grid.clone(),
            users,
            uavs: self.uavs.clone(),
            atg: self.atg,
            uav_channel: self.uav_channel,
            gateway: self.gateway,
        };
        let mut rebuilt = builder.build()?;
        // Preserve this instance's connectivity, which may already be
        // degraded by severed links.
        rebuilt.location_graph = self.location_graph.clone();
        Ok(rebuilt)
    }
}

/// Reference all-pairs coverage scan for one (radio, location) pair:
/// the planar `d² ≤ r²` prefilter followed by the full admissibility
/// check, exactly what the indexed builder must reproduce.
fn coverable_bruteforce(
    atg: &AtgChannel,
    radio: &UavRadio,
    grid: &Grid,
    loc: CellIndex,
    users: &[User],
) -> Vec<u32> {
    let center = grid.cell_center(loc);
    let hover = grid.hover_position(loc);
    let range_sq = radio.user_range_m() * radio.user_range_m();
    let mut list = Vec::new();
    for (uid, user) in users.iter().enumerate() {
        if user.pos.distance_sq(center) > range_sq {
            continue;
        }
        if atg.can_serve(radio, hover, user.pos, user.min_rate_bps) {
            list.push(uid as u32);
        }
    }
    list
}

/// Builder for [`Instance`]; see [`Instance::builder`].
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    grid: Grid,
    users: Vec<User>,
    uavs: Vec<Uav>,
    atg: AtgChannel,
    uav_channel: UavToUavChannel,
    gateway: Option<Point2>,
}

impl InstanceBuilder {
    /// Overrides the air-to-ground channel model.
    pub fn atg_channel(&mut self, atg: AtgChannel) -> &mut Self {
        self.atg = atg;
        self
    }

    /// Places the Internet gateway (emergency communication vehicle)
    /// at a ground position. When set, a valid deployment must keep at
    /// least one UAV within `R_uav` (3-D) of this point — the *gateway
    /// UAV* of Fig. 1.
    pub fn gateway(&mut self, pos: Point2) -> &mut Self {
        self.gateway = Some(pos);
        self
    }

    /// Adds a user at `pos` with minimum rate `min_rate_bps`.
    pub fn add_user(&mut self, pos: Point2, min_rate_bps: f64) -> &mut Self {
        self.users.push(User { pos, min_rate_bps });
        self
    }

    /// Adds every user from an iterator.
    pub fn users(&mut self, users: impl IntoIterator<Item = User>) -> &mut Self {
        self.users.extend(users);
        self
    }

    /// Adds a UAV with service capacity `capacity` and `radio`.
    pub fn add_uav(&mut self, capacity: u32, radio: UavRadio) -> &mut Self {
        self.uavs.push(Uav { capacity, radio });
        self
    }

    /// Adds every UAV from an iterator.
    pub fn uavs(&mut self, uavs: impl IntoIterator<Item = Uav>) -> &mut Self {
        self.uavs.extend(uavs);
        self
    }

    /// Validates and preprocesses the instance.
    ///
    /// A zone with **zero users** is a valid (degenerate) instance:
    /// every deployment serves nobody, but the solvers, validators and
    /// the fault-injection harness all degrade gracefully instead of
    /// erroring — a disaster zone can empty out mid-mission.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidInstance`] if there are no UAVs, a user lies
    /// outside the disaster zone, or a user has a non-positive minimum
    /// rate.
    pub fn build(&self) -> Result<Instance, CoreError> {
        if self.uavs.is_empty() {
            return Err(CoreError::InvalidInstance("fleet is empty".into()));
        }
        let area = self.grid.spec().area();
        for (i, u) in self.users.iter().enumerate() {
            if !area.contains(u.pos) {
                return Err(CoreError::InvalidInstance(format!(
                    "user {i} at {} outside the disaster zone",
                    u.pos
                )));
            }
            if !(u.min_rate_bps.is_finite() && u.min_rate_bps > 0.0) {
                return Err(CoreError::InvalidInstance(format!(
                    "user {i} has invalid minimum rate {}",
                    u.min_rate_bps
                )));
            }
        }
        if self.users.len() > u32::MAX as usize {
            return Err(CoreError::InvalidInstance(
                "more than u32::MAX users".into(),
            ));
        }

        let m = self.grid.num_cells();
        // Location graph: edges within R_uav (same altitude, so the
        // planar distance is the full distance).
        let mut location_graph = Graph::new(m);
        let range = self.uav_channel.range_m();
        for j in 0..m {
            let cj = self.grid.cell_center(j);
            for l in self.grid.cells_within(cj, range) {
                if l > j {
                    location_graph.add_edge(j, l);
                }
            }
        }

        // Distinct radio classes (bitwise-identical radios share one).
        let mut classes: Vec<UavRadio> = Vec::new();
        let mut radio_class = Vec::with_capacity(self.uavs.len());
        for uav in &self.uavs {
            let id = classes
                .iter()
                .position(|r| r == &uav.radio)
                .unwrap_or_else(|| {
                    classes.push(uav.radio);
                    classes.len() - 1
                });
            radio_class.push(id);
        }

        // Spatial index over user positions, binned by the coarsest
        // coverage radius: a per-class query then touches only the
        // bins overlapping that class's coverage disc, making the
        // tables O(users + hits) per location instead of all-pairs.
        let user_positions: Vec<Point2> = self.users.iter().map(|u| u.pos).collect();
        let max_range = classes
            .iter()
            .map(|r| r.user_range_m())
            .fold(0.0_f64, f64::max);
        let user_index = SpatialIndex::build(&user_positions, max_range);

        // Coverage tables per class and location, via the index. The
        // inclusive d² ≤ r² planar prefilter happens inside the index
        // scan; the full admissibility check (rate requirement) runs
        // on the survivors. Ids arrive bin-grouped, so each list is
        // sorted before encoding to restore the ascending-uid
        // invariant. Each list is encoded into the compressed store as
        // soon as it is built — the uncompressed `Vec<Vec<u32>>` shape
        // never materializes; one scratch buffer is reused throughout.
        let mut coverage = CoverageTables::with_shape(classes.len(), m);
        let mut list: Vec<u32> = Vec::new();
        for radio in &classes {
            for loc in 0..m {
                let center = self.grid.cell_center(loc);
                let hover = self.grid.hover_position(loc);
                list.clear();
                user_index.for_each_within(&user_positions, center, radio.user_range_m(), |uid| {
                    let user = &self.users[uid as usize];
                    if self
                        .atg
                        .can_serve(radio, hover, user.pos, user.min_rate_bps)
                    {
                        list.push(uid);
                    }
                });
                list.sort_unstable();
                #[cfg(feature = "debug-validate")]
                {
                    let brute =
                        coverable_bruteforce(&self.atg, radio, &self.grid, loc, &self.users);
                    assert_eq!(
                        list, brute,
                        "debug-validate: spatial coverage table diverges at loc {loc}"
                    );
                }
                // `push_list` re-decodes the encoded list under
                // `debug-validate`, closing the compression oracle.
                coverage.push_list(&list);
            }
        }
        let coverage = coverage.finish();

        let best_coverage: Vec<usize> = (0..m)
            .map(|loc| {
                (0..classes.len())
                    .map(|class| coverage.count(class, loc))
                    .max()
                    .unwrap_or(0)
            })
            .collect();

        let mut uavs_by_capacity: Vec<usize> = (0..self.uavs.len()).collect();
        uavs_by_capacity.sort_by_key(|&k| (std::cmp::Reverse(self.uavs[k].capacity), k));

        let gateway_cells: Vec<bool> = match self.gateway {
            Some(pos) => {
                let ground = pos.at_altitude(0.0);
                (0..m)
                    .map(|loc| {
                        self.grid.hover_position(loc).distance(ground) <= self.uav_channel.range_m()
                    })
                    .collect()
            }
            None => vec![false; m],
        };

        Ok(Instance {
            grid: self.grid.clone(),
            users: self.users.clone(),
            uavs: self.uavs.clone(),
            atg: self.atg,
            uav_channel: self.uav_channel,
            location_graph,
            radio_class,
            user_positions,
            user_index,
            coverage,
            best_coverage,
            uavs_by_capacity,
            gateway: self.gateway,
            gateway_cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_geom::{AreaSpec, GridSpec};

    fn grid_900(cell: f64) -> Grid {
        GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), cell, 300.0)
            .unwrap()
            .build()
    }

    fn radio() -> UavRadio {
        UavRadio::new(30.0, 5.0, 500.0)
    }

    #[test]
    fn build_small_instance() {
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        b.add_user(Point2::new(450.0, 450.0), 2_000.0);
        b.add_uav(10, radio());
        let inst = b.build().unwrap();
        assert_eq!(inst.num_users(), 1);
        assert_eq!(inst.num_uavs(), 1);
        assert_eq!(inst.num_locations(), 9);
    }

    #[test]
    fn rejects_empty_fleet_but_allows_zero_users() {
        let b = Instance::builder(grid_900(300.0), 600.0);
        assert!(matches!(b.build(), Err(CoreError::InvalidInstance(_))));
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        b.add_user(Point2::new(1.0, 1.0), 2_000.0);
        assert!(b.build().is_err()); // users but no fleet
                                     // A fleet over an evacuated zone is a valid degenerate instance.
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        b.add_uav(10, radio());
        let inst = b.build().unwrap();
        assert_eq!(inst.num_users(), 0);
        for loc in 0..inst.num_locations() {
            assert_eq!(inst.coverage_count(0, loc), 0);
        }
    }

    #[test]
    fn severed_links_disappear_from_the_graph() {
        let mut b = Instance::builder(grid_900(300.0), 350.0);
        b.add_user(Point2::new(450.0, 450.0), 2_000.0);
        b.add_uav(10, radio());
        let inst = b.build().unwrap();
        assert!(inst.location_graph().has_edge(0, 1));
        let degraded = inst.with_severed_links(&[(1, 0), (4, 5)]).unwrap();
        assert!(!degraded.location_graph().has_edge(0, 1));
        assert!(!degraded.location_graph().has_edge(4, 5));
        assert!(degraded.location_graph().has_edge(1, 2)); // untouched
        assert_eq!(degraded.num_users(), 1);
        // Out-of-range pairs are rejected, not panicked on.
        assert!(matches!(
            inst.with_severed_links(&[(0, 99)]),
            Err(CoreError::InvalidParameters(_))
        ));
    }

    #[test]
    fn extra_users_extend_coverage_tables() {
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        b.add_user(Point2::new(150.0, 150.0), 2_000.0);
        b.add_uav(10, radio());
        let inst = b.build().unwrap();
        let surged = inst
            .with_extra_users(&[User {
                pos: Point2::new(160.0, 150.0),
                min_rate_bps: 2_000.0,
            }])
            .unwrap();
        assert_eq!(surged.num_users(), 2);
        assert_eq!(surged.coverable(0, 0).to_vec(), vec![0, 1]);
        // Invalid extras are typed errors.
        assert!(surged
            .with_extra_users(&[User {
                pos: Point2::new(-5.0, 0.0),
                min_rate_bps: 2_000.0,
            }])
            .is_err());
        // A severed graph survives the surge rebuild.
        let degraded = inst.with_severed_links(&[(0, 1)]).unwrap();
        let both = degraded
            .with_extra_users(&[User {
                pos: Point2::new(450.0, 450.0),
                min_rate_bps: 2_000.0,
            }])
            .unwrap();
        assert!(!both.location_graph().has_edge(0, 1));
    }

    #[test]
    fn rejects_user_outside_zone() {
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        b.add_user(Point2::new(1_000.0, 0.0), 2_000.0);
        b.add_uav(10, radio());
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn rejects_invalid_min_rate() {
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        b.add_user(Point2::new(10.0, 10.0), 0.0);
        b.add_uav(10, radio());
        assert!(b.build().is_err());
    }

    #[test]
    fn location_graph_edges_respect_range() {
        // 3×3 grid of 300 m cells: horizontal neighbors are 300 m
        // apart, diagonal ≈ 424 m; R_uav = 350 m joins only the
        // orthogonal neighbors.
        let mut b = Instance::builder(grid_900(300.0), 350.0);
        b.add_user(Point2::new(450.0, 450.0), 2_000.0);
        b.add_uav(10, radio());
        let inst = b.build().unwrap();
        let g = inst.location_graph();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 4)); // diagonal
                                    // Each interior node has exactly 4 neighbors.
        assert_eq!(g.degree(4), 4);
    }

    #[test]
    fn coverage_respects_radius_and_rate() {
        let grid = grid_900(300.0);
        let mut b = Instance::builder(grid, 600.0);
        // User near cell 0's center and another far away.
        b.add_user(Point2::new(150.0, 150.0), 2_000.0);
        b.add_user(Point2::new(850.0, 850.0), 2_000.0);
        b.add_uav(10, UavRadio::new(30.0, 5.0, 200.0));
        let inst = b.build().unwrap();
        assert_eq!(inst.coverable(0, 0).to_vec(), vec![0]);
        assert_eq!(inst.coverage_count(0, 8), 1);
        // The middle cell (center 450,450) reaches neither with a
        // 200 m radius.
        assert_eq!(inst.coverage_count(0, 4), 0);
    }

    #[test]
    fn impossible_rate_excludes_user() {
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        b.add_user(Point2::new(150.0, 150.0), 1e15); // absurd requirement
        b.add_uav(10, radio());
        let inst = b.build().unwrap();
        for loc in 0..inst.num_locations() {
            assert_eq!(inst.coverage_count(0, loc), 0);
        }
    }

    #[test]
    fn radio_classes_are_shared() {
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        b.add_user(Point2::new(150.0, 150.0), 2_000.0);
        // Three UAVs, two distinct radios.
        b.add_uav(10, radio());
        b.add_uav(20, radio());
        b.add_uav(30, UavRadio::new(28.0, 4.0, 350.0));
        let inst = b.build().unwrap();
        assert_eq!(inst.radio_class[0], inst.radio_class[1]);
        assert_ne!(inst.radio_class[0], inst.radio_class[2]);
        assert_eq!(inst.coverage.num_classes(), 2);
    }

    #[test]
    fn capacity_order_is_descending_with_stable_ties() {
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        b.add_user(Point2::new(150.0, 150.0), 2_000.0);
        b.add_uav(10, radio());
        b.add_uav(30, radio());
        b.add_uav(10, radio());
        b.add_uav(20, radio());
        let inst = b.build().unwrap();
        assert_eq!(inst.uavs_by_capacity(), &[1, 3, 0, 2]);
    }

    #[test]
    fn indexed_coverage_matches_bruteforce() {
        // Two radio classes with very different radii over a scattered
        // population: the spatial-index build must reproduce the
        // reference scan exactly, per class and location.
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        let mut state = 0xc0ffee_u64;
        for _ in 0..80 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 33) as f64 % 900.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 33) as f64 % 900.0;
            b.add_user(Point2::new(x, y), 2_000.0);
        }
        b.add_uav(10, UavRadio::new(30.0, 5.0, 150.0));
        b.add_uav(10, radio()); // 500 m class
        let inst = b.build().unwrap();
        let brute = inst.coverage_tables_bruteforce();
        let tables = inst.coverage_tables();
        assert_eq!(tables, brute);
        // Every list is sorted and deduplicated.
        for per_loc in &tables {
            for list in per_loc {
                assert!(list.windows(2).all(|w| w[0] < w[1]));
            }
        }
        // The compression must never cost more than the naive layout.
        let mem = inst.coverage_memory();
        assert!(mem.compressed_bytes <= mem.uncompressed_bytes + 24 * mem.lists);
        assert_eq!(mem.lists, mem.ids_lists + mem.run_lists + mem.bitset_lists);
    }

    #[test]
    fn users_within_matches_linear_scan() {
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        b.add_user(Point2::new(150.0, 150.0), 2_000.0);
        b.add_user(Point2::new(450.0, 450.0), 2_000.0);
        b.add_user(Point2::new(850.0, 850.0), 2_000.0);
        b.add_uav(10, radio());
        let inst = b.build().unwrap();
        let center = Point2::new(450.0, 450.0);
        let expect: Vec<u32> = inst
            .users()
            .iter()
            .enumerate()
            .filter(|(_, u)| u.pos.distance_sq(center) <= 500.0 * 500.0)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(inst.users_within(center, 500.0), expect);
        assert!(inst.users_within(center, -1.0).is_empty());
    }

    #[test]
    fn best_coverage_count_takes_max_over_classes() {
        let mut b = Instance::builder(grid_900(300.0), 600.0);
        b.add_user(Point2::new(150.0, 150.0), 2_000.0);
        b.add_user(Point2::new(450.0, 150.0), 2_000.0);
        b.add_uav(10, UavRadio::new(30.0, 5.0, 100.0)); // tiny radius
        b.add_uav(10, radio()); // big radius
        let inst = b.build().unwrap();
        assert_eq!(inst.best_coverage_count(0), 2);
    }
}
