//! Construction of the hop-budget matroid `M2` for a seed subset
//! (§III-C).

use crate::SegmentPlan;
use uavnet_graph::{multi_source_hops, ConnectivitySubstrate, Graph, UNREACHABLE_HOPS};
use uavnet_matroid::NestedFamilyMatroid;

/// Builds the matroid `M2` over candidate locations for the seed set
/// `{v*_1 … v*_s}`:
///
/// * a location's depth is its minimum hop distance to the seeds in
///   the candidate graph (`d_l` of §III-C), with locations farther
///   than `h_max` hops (or unreachable) excluded outright;
/// * the budgets are the `Q_h` of Eq. 1 from the segment plan.
///
/// Only the seeds themselves sit at depth 0, so any maximal
/// independent set of size `L_max` contains all of them
/// (`Q_0 − Q_1 = s`, as the paper observes).
///
/// # Panics
///
/// Panics if a seed is out of range of `graph`, or the number of seeds
/// differs from `plan.s()`.
///
/// # Examples
///
/// ```
/// use uavnet_core::{seed_matroid, SegmentPlan};
/// use uavnet_graph::Graph;
/// use uavnet_matroid::Matroid;
///
/// # fn main() -> Result<(), uavnet_core::CoreError> {
/// let g = Graph::from_edges(5, (0..4).map(|i| (i, i + 1)));
/// let plan = SegmentPlan::optimal(5, 1)?;
/// let m2 = seed_matroid(&g, &[2], &plan);
/// assert!(m2.is_independent(&[2]));
/// # Ok(())
/// # }
/// ```
pub fn seed_matroid(graph: &Graph, seeds: &[usize], plan: &SegmentPlan) -> NestedFamilyMatroid {
    assert_eq!(
        seeds.len(),
        plan.s(),
        "got {} seeds for a plan with s = {}",
        seeds.len(),
        plan.s()
    );
    let h_max = plan.h_max();
    let hops = multi_source_hops(graph, seeds.iter().copied());
    let depth: Vec<Option<usize>> = hops
        .into_iter()
        .map(|d| match d {
            Some(d) if (d as usize) <= h_max => Some(d as usize),
            _ => None,
        })
        .collect();
    NestedFamilyMatroid::new(depth, plan.budgets())
}

/// [`seed_matroid`] with depths read from precomputed substrate hop
/// rows instead of a fresh multi-source BFS: `d_l = min_seed row[seed][l]`,
/// clipped at `h_max`. Produces the identical matroid — the sweep hot
/// path uses this, the materialized oracle keeps the BFS version.
///
/// # Panics
///
/// Panics if a seed is out of range of the substrate, or the number of
/// seeds differs from `plan.s()`.
pub fn seed_matroid_substrate(
    sub: &ConnectivitySubstrate,
    seeds: &[usize],
    plan: &SegmentPlan,
) -> NestedFamilyMatroid {
    assert_eq!(
        seeds.len(),
        plan.s(),
        "got {} seeds for a plan with s = {}",
        seeds.len(),
        plan.s()
    );
    let h_max = plan.h_max();
    let mut depth: Vec<Option<usize>> = vec![None; sub.num_nodes()];
    for &seed in seeds {
        for (&d, slot) in sub.hop_row(seed).iter().zip(depth.iter_mut()) {
            if d != UNREACHABLE_HOPS && (d as usize) <= h_max {
                match slot {
                    Some(best) if *best <= d as usize => {}
                    _ => *slot = Some(d as usize),
                }
            }
        }
    }
    NestedFamilyMatroid::new(depth, plan.budgets())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_matroid::Matroid;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn depths_follow_hops() {
        let g = path_graph(9);
        let plan = SegmentPlan::optimal(9, 1).unwrap();
        let m2 = seed_matroid(&g, &[4], &plan);
        assert_eq!(m2.depth_of(4), Some(0));
        assert_eq!(m2.depth_of(3), Some(1));
        assert_eq!(m2.depth_of(5), Some(1));
        // Plan for K=9, s=1: L_max = 5 with p = (2, 2), h_max = 2
        // (g(5, (2,2)) = 7 ≤ 9 but g(6, ·) = 10 > 9).
        assert_eq!(plan.l_max(), 5);
        assert_eq!(plan.h_max(), 2);
        assert_eq!(m2.depth_of(2), Some(2));
        // Node 0 is 4 hops out — beyond h_max, excluded.
        assert_eq!(m2.depth_of(0), None);
    }

    #[test]
    fn far_nodes_are_excluded() {
        let g = path_graph(20);
        let plan = SegmentPlan::optimal(6, 1).unwrap();
        let m2 = seed_matroid(&g, &[0], &plan);
        let hm = plan.h_max();
        assert!(m2.depth_of(hm).is_some());
        assert_eq!(m2.depth_of(hm + 1), None);
        assert!(!m2.can_extend(&[0], hm + 1));
    }

    #[test]
    fn unreachable_nodes_are_excluded() {
        let mut g = path_graph(4);
        let iso = {
            // add two disconnected nodes
            let mut g2 = Graph::new(6);
            for (u, v) in g.edges().collect::<Vec<_>>() {
                g2.add_edge(u, v);
            }
            g2.add_edge(4, 5);
            g = g2;
            4
        };
        let plan = SegmentPlan::optimal(6, 1).unwrap();
        let m2 = seed_matroid(&g, &[0], &plan);
        assert_eq!(m2.depth_of(iso), None);
    }

    #[test]
    fn only_seeds_have_depth_zero() {
        let g = path_graph(10);
        let plan = SegmentPlan::optimal(10, 2).unwrap();
        let m2 = seed_matroid(&g, &[2, 7], &plan);
        for v in 0..10 {
            let zero = m2.depth_of(v) == Some(0);
            assert_eq!(zero, v == 2 || v == 7, "node {v}");
        }
    }

    #[test]
    fn maximal_independent_sets_contain_the_seeds() {
        // Grow a maximal independent set greedily by node id; every
        // seed must be in it because non-seeds are capped at Q_1 =
        // L_max − s.
        let g = path_graph(12);
        let plan = SegmentPlan::optimal(12, 2).unwrap();
        let seeds = [3, 8];
        let m2 = seed_matroid(&g, &seeds, &plan);
        let mut set: Vec<usize> = Vec::new();
        for v in 0..12 {
            if set.len() < plan.l_max() && m2.can_extend(&set, v) {
                set.push(v);
            }
        }
        // Force-completing with seeds must always be possible.
        for s in seeds {
            if !set.contains(&s) {
                assert!(m2.can_extend(&set, s), "seed {s} blocked: {set:?}");
                set.push(s);
            }
        }
        assert!(set.len() <= plan.l_max());
        assert!(m2.is_independent(&set));
    }

    #[test]
    #[should_panic(expected = "seeds")]
    fn seed_count_must_match_plan() {
        let g = path_graph(5);
        let plan = SegmentPlan::optimal(5, 2).unwrap();
        let _ = seed_matroid(&g, &[1], &plan);
    }

    #[test]
    fn substrate_matroid_equals_bfs_matroid() {
        let mut g = path_graph(12);
        g.add_edge(0, 11); // a cycle plus an isolated pair
        let mut g2 = Graph::new(14);
        for (u, v) in g.edges().collect::<Vec<_>>() {
            g2.add_edge(u, v);
        }
        g2.add_edge(12, 13);
        let g = g2;
        let sub = ConnectivitySubstrate::build(&g).unwrap();
        for (k, seeds) in [(12, vec![3]), (12, vec![3, 9]), (14, vec![0, 12])] {
            let plan = SegmentPlan::optimal(k, seeds.len()).unwrap();
            let via_bfs = seed_matroid(&g, &seeds, &plan);
            let via_sub = seed_matroid_substrate(&sub, &seeds, &plan);
            for v in 0..14 {
                assert_eq!(
                    via_sub.depth_of(v),
                    via_bfs.depth_of(v),
                    "seeds {seeds:?} node {v}"
                );
            }
        }
    }
}
