//! Incremental re-solve engine: a standing solver absorbing deltas.
//!
//! The batch pipeline ([`approx_alg`](crate::approx_alg)) solves one
//! frozen instance; the ROADMAP's north-star is a long-running service
//! that keeps a deployment current as users move, UAVs fail and links
//! drop. [`SolverLoop`] is that service core: it owns a standing
//! deployment, the matching kernel that scored it and the shared
//! [`ConnectivitySubstrate`], consumes a typed [`Delta`] stream, and
//! applies *localized* repair instead of a full re-solve:
//!
//! * **dirty-tile invalidation** — user-affecting deltas mark the
//!   [`TilePartition`] tiles around every changed position (dilated by
//!   the fleet's maximum coverage radius), and only stations hovering
//!   in a dirty tile have their coverage re-derived;
//! * **matching maintenance** — refreshed stations are deactivated and
//!   re-added in the epoch-stamped kernel
//!   ([`CapacitatedMatching`]); one
//!   [`resaturate`](CapacitatedMatching::resaturate) pass then restores
//!   the maximum matching (no cold rebuild);
//! * **connectivity repair** — topology-affecting deltas reuse the
//!   fault path's component triage, MST re-bridging and gateway
//!   re-extension (shared with
//!   [`inject_and_repair`](crate::inject_and_repair) via
//!   [`plan_repair`]), spending spare UAVs as relays.
//!
//! Correctness is pinned by verify **oracle 7**
//! ([`check_incremental`](crate::verify::check_incremental)): after any
//! delta sequence the incrementally maintained assignment must serve
//! exactly as many users as a cold rescore of the same placements on
//! the mutated instance (the maximum matching value is unique), and the
//! materialized solution must pass independent validation. Under
//! `debug-validate` every [`SolverLoop::apply`] call runs that
//! comparison inline.

use crate::approx::{approx_alg, ApproxConfig};
use crate::assign::{assign_users, Assignment};
use crate::connecting::{
    connect_via_mst, connect_via_substrate, extend_to_gateway, extend_to_gateway_substrate,
};
use crate::model::User;
use crate::solution::{try_score_deployment, Solution};
use crate::{CoreError, Instance};
use std::cmp::Reverse;
use uavnet_flow::CapacitatedMatching;
use uavnet_geom::{CellIndex, Point2, TilePartition};
use uavnet_graph::{connected_components, ConnectivitySubstrate};

/// One mutation of the live scenario, as emitted by mobility ticks and
/// fault detectors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Delta {
    /// A batch of users changed position (one mobility tick; see
    /// `uavnet_workload::MobilitySimulator::step_deltas`).
    UserMoved(Vec<(u32, Point2)>),
    /// The listed UAVs (fleet indices) crashed or were withdrawn.
    /// Kills are cumulative across deltas; re-killing a dead UAV is a
    /// no-op.
    KillUavs(Vec<usize>),
    /// The listed inter-UAV links (unordered cell pairs) are jammed or
    /// shadowed. Cumulative; severing a missing edge is a no-op.
    SeverLinks(Vec<(CellIndex, CellIndex)>),
    /// Extra users appeared (a demand surge); they take the next free
    /// user ids.
    UserSurge(Vec<User>),
}

/// Tuning of a [`SolverLoop`].
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Configuration for cold solves (the initial deployment and the
    /// full re-solve fallback).
    pub approx: ApproxConfig,
    /// Tile side (grid cells) of the dirty-tile partition; `0` puts
    /// the whole grid in one tile (every user delta refreshes every
    /// station — correct, never fast).
    pub tile_cells: usize,
    /// When a repair abandons more than this fraction of the standing
    /// placements *and no UAV has died*, the loop falls back to a full
    /// cold solve on the mutated instance instead of limping on with
    /// the remnant. (With dead UAVs the instance cannot express the
    /// reduced fleet, so the localized repair result stands.)
    pub cold_solve_drop_fraction: f64,
}

impl LoopConfig {
    /// A configuration with the default tile side (16 cells) and cold
    /// fallback threshold (0.5).
    pub fn new(approx: ApproxConfig) -> Self {
        LoopConfig {
            approx,
            tile_cells: 16,
            cold_solve_drop_fraction: 0.5,
        }
    }
}

/// Cumulative work counters of a [`SolverLoop`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ResolveStats {
    /// Deltas applied successfully.
    pub deltas_applied: usize,
    /// Connectivity repairs planned (kill/sever paths).
    pub repairs: usize,
    /// Full cold re-solves (fallback path).
    pub cold_solves: usize,
    /// Dirty tiles marked across all user deltas.
    pub dirty_tiles: usize,
    /// Stations whose coverage was re-derived.
    pub stations_refreshed: usize,
    /// Spare UAVs spent as relays or gateway bridges.
    pub relays_spent: usize,
    /// Standing placements abandoned by repairs.
    pub dropped_placements: usize,
    /// Matching-kernel compaction rebuilds.
    pub matching_rebuilds: usize,
}

/// What one [`SolverLoop::apply`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DeltaOutcome {
    /// Users served after the delta.
    pub served: usize,
    /// Dirty tiles this delta marked.
    pub dirty_tiles: usize,
    /// Stations this delta refreshed.
    pub stations_refreshed: usize,
    /// Spare UAVs this delta spent as relays.
    pub relays_spent: usize,
    /// Standing placements this delta abandoned.
    pub dropped_placements: usize,
    /// Whether the delta escalated to a full cold re-solve.
    pub cold_solved: bool,
}

/// What a connectivity repair decided: the placements to keep (kept
/// survivors plus spare relays) and what it cost.
pub(crate) struct RepairPlan {
    /// Surviving placements plus `(spare, relay cell)` bridges.
    pub placements: Vec<(usize, CellIndex)>,
    /// Spares spent on relay/gateway cells.
    pub relays_spent: usize,
    /// Survivors abandoned (stranded components or budget shortfall).
    pub dropped: usize,
}

/// The shared repair planner behind both
/// [`inject_and_repair`](crate::inject_and_repair) and the
/// [`SolverLoop`] kill/sever paths:
///
/// 1. if the survivors' network fell apart, keep the connected
///    component serving the most users ([`best_component`]);
/// 2. reconnect through an MST over the survivors' cells and re-extend
///    to the gateway, spending spare (alive, undeployed) UAVs as
///    relays — largest spares on the most coverable relay cells; when
///    the spare budget is short, abandon the least-coverable survivor
///    and retry.
///
/// `dead[uav]` marks UAVs that are gone for good: they are excluded
/// from the spare pool even though they no longer appear among the
/// placements — the fix for the repair-after-repair staleness bug
/// where a second pass re-deployed first-pass casualties as relays.
///
/// With `sub`, distance decisions read the precomputed hop rows
/// (bit-identical results, no per-call BFS); the substrate must have
/// been built from `degraded`'s location graph.
pub(crate) fn plan_repair(
    degraded: &Instance,
    sub: Option<&ConnectivitySubstrate>,
    mut survivors: Vec<(usize, CellIndex)>,
    dead: &[bool],
) -> Result<RepairPlan, CoreError> {
    uavnet_obs::counters::RESOLVE_REPAIRS.add(1);
    let _timer = uavnet_obs::hists::REPAIR_NS.timer();
    let _span = uavnet_obs::phases::REPAIR.span();
    let graph = degraded.location_graph();
    let mut dropped = 0usize;

    // Severed links may have split the *location graph* itself,
    // stranding survivors in different graph components no relay chain
    // can bridge. Keep the most valuable stranded group. (Survivors
    // that are merely non-adjacent within one component are fine — the
    // budget loop bridges them with relays.)
    if survivors.len() > 1 {
        let keep = best_component(degraded, &survivors);
        dropped += survivors.len() - keep.len();
        survivors = keep;
    }

    // Spare fleet: alive UAVs not deployed anywhere, largest capacity
    // first — servers of the repair's relay chain.
    let deployed: Vec<usize> = survivors.iter().map(|&(u, _)| u).collect();
    let spares: Vec<usize> = degraded
        .uavs_by_capacity()
        .iter()
        .copied()
        .filter(|&u| !dead[u] && !deployed.contains(&u))
        .collect();
    let gateway_cells = degraded.gateway_cells();

    // Reconnect within the spare budget, abandoning the
    // least-coverable survivor on shortfall. Terminates because the
    // survivor set strictly shrinks; one survivor needs no relays.
    let mut relay_cells: Vec<usize>;
    loop {
        if survivors.is_empty() {
            relay_cells = Vec::new();
            break;
        }
        let locs: Vec<usize> = survivors.iter().map(|&(_, l)| l).collect();
        let all = match sub {
            Some(sub) => connect_via_substrate(graph, sub, &locs)?,
            None => connect_via_mst(graph, &locs)?,
        };
        let mut extra_cells: Vec<usize> = all[locs.len()..].to_vec();
        if degraded.gateway().is_some() {
            // The gateway being unreachable from this component cannot
            // be fixed by shrinking the component further — propagate.
            let gw = match sub {
                Some(sub) => extend_to_gateway_substrate(graph, sub, &all, &gateway_cells)?,
                None => extend_to_gateway(graph, &all, |c| degraded.is_gateway_cell(c))?,
            };
            extra_cells.extend(gw);
        }
        if extra_cells.len() <= spares.len() {
            relay_cells = extra_cells;
            break;
        }
        let (victim, _) = survivors
            .iter()
            .enumerate()
            .min_by_key(|&(i, &(uav, loc))| (degraded.coverage_count(uav, loc), i))
            .expect("survivors is non-empty");
        survivors.remove(victim);
        dropped += 1;
    }

    // Largest spares on the most coverable relay cells (ties by cell).
    relay_cells.sort_by_key(|&v| (Reverse(degraded.best_coverage_count(v)), v));
    let relays_spent = relay_cells.len();
    let mut placements = survivors;
    for (cell, &uav) in relay_cells.into_iter().zip(spares.iter()) {
        placements.push((uav, cell));
    }
    Ok(RepairPlan {
        placements,
        relays_spent,
        dropped,
    })
}

/// The survivors of the location-graph component serving the most
/// users (ties: more placements, then the smaller first placement
/// index) — deterministic triage after severed links split the graph.
/// Returns all survivors unchanged when they share one component.
pub(crate) fn best_component(
    degraded: &Instance,
    survivors: &[(usize, CellIndex)],
) -> Vec<(usize, CellIndex)> {
    let mut comp_of = vec![usize::MAX; degraded.num_locations()];
    for (ci, comp) in connected_components(degraded.location_graph())
        .iter()
        .enumerate()
    {
        for &v in comp {
            comp_of[v] = ci;
        }
    }
    let mut groups: Vec<(usize, Vec<(usize, CellIndex)>)> = Vec::new();
    for &(uav, loc) in survivors {
        match groups.iter_mut().find(|(c, _)| *c == comp_of[loc]) {
            Some((_, g)) => g.push((uav, loc)),
            None => groups.push((comp_of[loc], vec![(uav, loc)])),
        }
    }
    if groups.len() <= 1 {
        return survivors.to_vec();
    }
    // Groups are in first-occurrence order; `Reverse(i)` makes every
    // key distinct, so ties on (served, size) go to the group holding
    // the earliest placement.
    groups
        .into_iter()
        .enumerate()
        .max_by_key(|(i, (_, g))| (assign_users(degraded, g).served, g.len(), Reverse(*i)))
        .map(|(_, (_, g))| g)
        .unwrap_or_default()
}

/// A standing deployment that absorbs a [`Delta`] stream by localized
/// repair instead of re-solving from scratch (see the module docs).
///
/// # Failure contract
///
/// Every unrepairable situation is a typed [`CoreError`], never a
/// panic. After an error from [`apply`](SolverLoop::apply) the loop
/// state may hold a partially applied delta — discard the loop and
/// re-seed from a cold solve.
///
/// # Examples
///
/// ```
/// # use uavnet_core::{ApproxConfig, Delta, Instance, LoopConfig, SolverLoop};
/// # use uavnet_channel::UavRadio;
/// # use uavnet_geom::{AreaSpec, GridSpec, Point2};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let grid = GridSpec::new(AreaSpec::new(600.0, 600.0, 500.0)?, 300.0, 300.0)?.build();
/// # let mut b = Instance::builder(grid, 600.0);
/// # b.add_user(Point2::new(150.0, 150.0), 2_000.0);
/// # b.add_user(Point2::new(450.0, 150.0), 2_000.0);
/// # b.add_uav(5, UavRadio::new(30.0, 5.0, 500.0));
/// # b.add_uav(5, UavRadio::new(30.0, 5.0, 500.0));
/// # let instance = b.build()?;
/// let mut solver = SolverLoop::new(instance, LoopConfig::new(ApproxConfig::with_s(1)))?;
/// let outcome = solver.apply(Delta::UserMoved(vec![(0, Point2::new(400.0, 150.0))]))?;
/// assert_eq!(outcome.served, solver.served_users());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SolverLoop {
    instance: Instance,
    substrate: ConnectivitySubstrate,
    partition: TilePartition,
    config: LoopConfig,
    /// Cumulatively killed UAVs — never redeployed, never spares.
    dead: Vec<bool>,
    placements: Vec<(usize, CellIndex)>,
    /// The standing matching; `station_of[i]` is the kernel station
    /// backing `placements[i]`. Deactivated (refreshed/dropped)
    /// stations linger with zero capacity until a compaction rebuild.
    matching: CapacitatedMatching,
    station_of: Vec<usize>,
    dead_stations: usize,
    /// Chebyshev tile dilation radius covering the fleet's largest
    /// coverage range (precomputed; see [`Self::mark_dirty`]).
    dilation: usize,
    /// Dirty-tile scratch, one flag per tile.
    tile_dirty: Vec<bool>,
    stats: ResolveStats,
}

impl SolverLoop {
    /// Cold-solves `instance` and stands up the loop on the result.
    ///
    /// # Errors
    ///
    /// Any [`CoreError`] of the cold solve or the substrate build.
    pub fn new(instance: Instance, config: LoopConfig) -> Result<Self, CoreError> {
        let solution = approx_alg(&instance, &config.approx)?;
        Self::from_solution(instance, &solution, config)
    }

    /// Stands up the loop on an existing solution for `instance`
    /// (e.g. the output of a prior cold solve or a repaired
    /// [`DegradationReport`](crate::DegradationReport)).
    ///
    /// # Errors
    ///
    /// [`CoreError::Substrate`] when the location graph exceeds the
    /// substrate's node limit.
    pub fn from_solution(
        instance: Instance,
        solution: &Solution,
        config: LoopConfig,
    ) -> Result<Self, CoreError> {
        let substrate = ConnectivitySubstrate::build(instance.location_graph())?;
        let partition = TilePartition::build(
            instance.grid().cols(),
            instance.grid().rows(),
            config.tile_cells,
        );
        let tile_m = partition.tile_cells() as f64 * instance.grid().spec().cell_m();
        let max_range_m = instance
            .uavs()
            .iter()
            .map(|u| u.radio.user_range_m())
            .fold(0.0f64, f64::max);
        if !max_range_m.is_finite() || !tile_m.is_finite() || tile_m <= 0.0 {
            return Err(CoreError::InvalidParameters(format!(
                "dilation inputs must be finite and positive: \
                 max user range {max_range_m} m over {tile_m} m tiles"
            )));
        }
        // A station's coverage can only change when an affected user
        // position lies within its radio range; one extra tile absorbs
        // the within-cell and within-tile offsets. Over-dilation is a
        // performance loss, never a correctness one — but it must stay
        // clamped to the partition dims: a degenerate tiny tile_m
        // otherwise saturates the f64→usize cast and the `+ 1` / the
        // `tr + d + 1` tile arithmetic in `mark_dirty` overflows.
        let tile_cols = instance.grid().cols().div_ceil(partition.tile_cells());
        let tile_rows = instance.grid().rows().div_ceil(partition.tile_cells());
        let dilation = ((max_range_m / tile_m).ceil() as usize)
            .saturating_add(1)
            .min(tile_cols.max(tile_rows));
        let num_tiles = partition.num_tiles();
        let mut solver = SolverLoop {
            dead: vec![false; instance.num_uavs()],
            placements: solution.deployment().placements().to_vec(),
            matching: CapacitatedMatching::new(0),
            station_of: Vec::new(),
            dead_stations: 0,
            dilation,
            tile_dirty: vec![false; num_tiles],
            stats: ResolveStats::default(),
            instance,
            substrate,
            partition,
            config,
        };
        solver.rebuild_matching();
        solver.stats.matching_rebuilds = 0; // the seed build is not a compaction
        Ok(solver)
    }

    /// The (possibly mutated) instance the deployment lives on.
    #[inline]
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The standing placements.
    #[inline]
    pub fn placements(&self) -> &[(usize, CellIndex)] {
        &self.placements
    }

    /// Users currently served (the standing maximum-matching value) —
    /// `O(1)`.
    #[inline]
    pub fn served_users(&self) -> usize {
        self.matching.matched_count()
    }

    /// Fleet indices killed so far, ascending.
    pub fn dead_uavs(&self) -> Vec<usize> {
        self.dead
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(u, _)| u)
            .collect()
    }

    /// Cumulative work counters.
    #[inline]
    pub fn stats(&self) -> &ResolveStats {
        &self.stats
    }

    /// Materializes the standing deployment and assignment as a
    /// [`Solution`] (valid against [`instance`](Self::instance)).
    pub fn solution(&self) -> Solution {
        let mut station_to_place = vec![usize::MAX; self.matching.num_stations()];
        for (i, &st) in self.station_of.iter().enumerate() {
            station_to_place[st] = i;
        }
        // Deactivated stations serve nobody, so every mapped station id
        // belongs to a live placement.
        let user_placement = self
            .matching
            .assignment()
            .iter()
            .map(|a| a.map(|st| station_to_place[st]))
            .collect();
        let loads = self
            .station_of
            .iter()
            .map(|&st| self.matching.station_load(st))
            .collect();
        let assignment = Assignment {
            user_placement,
            served: self.matching.matched_count(),
            loads,
        };
        Solution::from_parts(self.placements.clone(), assignment)
    }

    /// Scores the standing placements from scratch on the current
    /// instance — the cold half of oracle 7.
    ///
    /// # Errors
    ///
    /// [`CoreError::Validation`] if the standing placements no longer
    /// form a deployable set (a loop invariant violation).
    pub fn cold_rescore(&self) -> Result<Solution, CoreError> {
        try_score_deployment(&self.instance, self.placements.clone())
    }

    /// Applies one delta by localized repair and returns what it did.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameters`] for out-of-range UAV ids,
    ///   user ids or link endpoints;
    /// * [`CoreError::InvalidInstance`] for surge/move positions the
    ///   instance builder rejects;
    /// * [`CoreError::Connect`] when no relay chain can restore the
    ///   gateway link;
    /// * [`CoreError::Substrate`] if a severed-link rebuild exceeds
    ///   the substrate's limits.
    pub fn apply(&mut self, delta: Delta) -> Result<DeltaOutcome, CoreError> {
        uavnet_obs::counters::RESOLVE_DELTAS.add(1);
        let _span = uavnet_obs::phases::RESOLVE_APPLY.span();
        let _timer = uavnet_obs::hists::DELTA_APPLY.timer();
        let before = self.stats.clone();
        let cold_solved = match delta {
            Delta::KillUavs(ids) => self.apply_kill(&ids)?,
            Delta::SeverLinks(links) => self.apply_sever(&links)?,
            Delta::UserSurge(users) => self.apply_surge(&users)?,
            Delta::UserMoved(moves) => self.apply_moves(&moves)?,
        };
        self.stats.deltas_applied += 1;
        #[cfg(feature = "debug-validate")]
        self.assert_matches_cold_rescore();
        Ok(DeltaOutcome {
            served: self.served_users(),
            dirty_tiles: self.stats.dirty_tiles - before.dirty_tiles,
            stations_refreshed: self.stats.stations_refreshed - before.stations_refreshed,
            relays_spent: self.stats.relays_spent - before.relays_spent,
            dropped_placements: self.stats.dropped_placements - before.dropped_placements,
            cold_solved,
        })
    }

    /// Inline oracle 7: the incremental matching must serve exactly as
    /// many users as a cold rescore of the same placements (the
    /// maximum matching value is unique), and the materialized
    /// solution must validate. Compiled only under `debug-validate`.
    #[cfg(feature = "debug-validate")]
    fn assert_matches_cold_rescore(&self) {
        let cold = self
            .cold_rescore()
            .expect("debug-validate: cold rescore of the incremental deployment failed");
        assert_eq!(
            self.served_users(),
            cold.served_users(),
            "debug-validate: incremental served count diverged from cold rescore"
        );
        self.solution()
            .validate(&self.instance)
            .expect("debug-validate: incremental solution failed validation");
    }

    fn apply_kill(&mut self, ids: &[usize]) -> Result<bool, CoreError> {
        if let Some(&bad) = ids.iter().find(|&&u| u >= self.instance.num_uavs()) {
            return Err(CoreError::InvalidParameters(format!(
                "killed UAV {bad} outside the fleet of {}",
                self.instance.num_uavs()
            )));
        }
        let mut hit_deployment = false;
        for &u in ids {
            if self.dead[u] {
                continue; // re-kill is a no-op
            }
            self.dead[u] = true;
            if let Some(i) = self.placements.iter().position(|&(uav, _)| uav == u) {
                self.matching.deactivate_station(self.station_of[i]);
                self.dead_stations += 1;
                self.placements.swap_remove(i);
                self.station_of.swap_remove(i);
                hit_deployment = true;
            }
        }
        if !hit_deployment {
            // Only spares died: the standing network is untouched.
            return Ok(false);
        }
        self.repair_connectivity()
    }

    fn apply_sever(&mut self, links: &[(CellIndex, CellIndex)]) -> Result<bool, CoreError> {
        self.instance = self.instance.with_severed_links(links)?;
        self.substrate = ConnectivitySubstrate::build(self.instance.location_graph())?;
        // Coverage and user ids are untouched — only the topology
        // needs repair.
        self.repair_connectivity()
    }

    fn apply_surge(&mut self, users: &[User]) -> Result<bool, CoreError> {
        self.instance = self.instance.with_extra_users(users)?;
        // Existing ids are preserved, so the standing assignment stays
        // valid; grow_users re-derives the free bitset so the surged
        // ids become visible to the word-AND pre-passes.
        self.matching.grow_users(self.instance.num_users());
        // Stations near a surged user may now cover it; their kernel
        // adjacency was frozen at add time, so refresh them.
        self.begin_dirty();
        for user in users {
            if let Some(cell) = self.instance.grid().locate(user.pos) {
                self.mark_dirty(cell);
            }
        }
        self.refresh_dirty_stations();
        Ok(false)
    }

    fn apply_moves(&mut self, moves: &[(u32, Point2)]) -> Result<bool, CoreError> {
        self.begin_dirty();
        // Old cells first: a station that only covered the *previous*
        // position must be refreshed too.
        for &(id, _) in moves {
            let Some(user) = self.instance.users().get(id as usize) else {
                return Err(CoreError::InvalidParameters(format!(
                    "moved user {id} outside 0..{}",
                    self.instance.num_users()
                )));
            };
            if let Some(cell) = self.instance.grid().locate(user.pos) {
                self.mark_dirty(cell);
            }
        }
        self.instance = self.instance.with_moved_users(moves)?;
        for &(_, pos) in moves {
            if let Some(cell) = self.instance.grid().locate(pos) {
                self.mark_dirty(cell);
            }
        }
        self.refresh_dirty_stations();
        Ok(false)
    }

    /// Re-plans connectivity for the standing placements after a
    /// topology change, applying the plan's drops and relay additions
    /// to the matching. Returns whether the cold-solve fallback fired.
    fn repair_connectivity(&mut self) -> Result<bool, CoreError> {
        let standing = self.placements.len();
        let plan = plan_repair(
            &self.instance,
            Some(&self.substrate),
            self.placements.clone(),
            &self.dead,
        )?;
        self.stats.repairs += 1;
        self.stats.relays_spent += plan.relays_spent;
        self.stats.dropped_placements += plan.dropped;

        // Fallback: a repair that abandoned most of the deployment is
        // worse than re-solving — but only the full fleet can be
        // re-solved (the instance cannot express dead UAVs).
        if standing > 0
            && !self.dead.iter().any(|&d| d)
            && (plan.dropped as f64) > self.config.cold_solve_drop_fraction * standing as f64
        {
            uavnet_obs::counters::RESOLVE_COLD_SOLVES.add(1);
            self.stats.cold_solves += 1;
            let solution = approx_alg(&self.instance, &self.config.approx)?;
            self.placements = solution.deployment().placements().to_vec();
            self.rebuild_matching();
            return Ok(true);
        }

        // Diff the plan against the standing placements on exact
        // (uav, cell) pairs: a stranded UAV can return as a relay at a
        // *different* cell, which is a drop plus an addition — not a
        // keep. Drop what the plan abandoned, add what it placed.
        let mut i = 0;
        while i < self.placements.len() {
            if plan.placements.contains(&self.placements[i]) {
                i += 1;
            } else {
                self.matching.deactivate_station(self.station_of[i]);
                self.dead_stations += 1;
                self.placements.swap_remove(i);
                self.station_of.swap_remove(i);
            }
        }
        for &(uav, cell) in &plan.placements {
            if !self.placements.contains(&(uav, cell)) {
                let st = self.matching.add_station_list(
                    self.instance.uavs()[uav].capacity,
                    self.instance.coverable(uav, cell),
                );
                self.placements.push((uav, cell));
                self.station_of.push(st);
            }
        }
        self.maybe_compact();
        self.matching.resaturate();
        Ok(false)
    }

    /// Clears the dirty-tile scratch for a new user-affecting delta.
    fn begin_dirty(&mut self) {
        self.tile_dirty.fill(false);
    }

    /// Marks the tile of `cell` and its Chebyshev `dilation`
    /// neighborhood dirty.
    fn mark_dirty(&mut self, cell: CellIndex) {
        let tile = self.partition.tile_cells();
        let tile_cols = self.instance.grid().cols().div_ceil(tile);
        let tile_rows = self.instance.grid().rows().div_ceil(tile);
        let (c, r) = self.instance.grid().col_row(cell);
        let (tc, tr) = (c / tile, r / tile);
        let d = self.dilation;
        for ty in tr.saturating_sub(d)..(tr + d + 1).min(tile_rows) {
            for tx in tc.saturating_sub(d)..(tc + d + 1).min(tile_cols) {
                let t = ty * tile_cols + tx;
                if !self.tile_dirty[t] {
                    self.tile_dirty[t] = true;
                    self.stats.dirty_tiles += 1;
                    uavnet_obs::counters::RESOLVE_DIRTY_TILES.add(1);
                }
            }
        }
    }

    /// Re-derives coverage for every station hovering in a dirty tile
    /// (deactivate + re-add with the current instance's list), then
    /// restores matching maximality with one resaturation pass.
    fn refresh_dirty_stations(&mut self) {
        for i in 0..self.placements.len() {
            let (uav, loc) = self.placements[i];
            if !self.tile_dirty[self.partition.tile_of(loc)] {
                continue;
            }
            self.matching.deactivate_station(self.station_of[i]);
            self.dead_stations += 1;
            let st = self.matching.add_station_list(
                self.instance.uavs()[uav].capacity,
                self.instance.coverable(uav, loc),
            );
            self.station_of[i] = st;
            self.stats.stations_refreshed += 1;
            uavnet_obs::counters::RESOLVE_STATIONS_REFRESHED.add(1);
        }
        self.maybe_compact();
        self.matching.resaturate();
    }

    /// Rebuilds the matching from the live placements when deactivated
    /// stations outnumber them (the kernel's arenas and BFS scratch
    /// grow with every refresh; compaction bounds them to 2× live).
    fn maybe_compact(&mut self) {
        if self.dead_stations > self.placements.len() {
            self.rebuild_matching();
        }
    }

    /// Cold-rebuilds the standing matching from `placements` (each
    /// station added and saturated in order — a maximum matching).
    fn rebuild_matching(&mut self) {
        let mut matching = CapacitatedMatching::new(self.instance.num_users());
        self.station_of.clear();
        for &(uav, loc) in &self.placements {
            let st = matching.add_station_list(
                self.instance.uavs()[uav].capacity,
                self.instance.coverable(uav, loc),
            );
            matching.saturate(st);
            self.station_of.push(st);
        }
        self.matching = matching;
        self.dead_stations = 0;
        self.stats.matching_rebuilds += 1;
    }
}

/// Placement-level difference between two standing deployments —
/// what the service's `deployments` topic publishes after each
/// absorbed delta instead of re-sending the full placement list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeploymentDiff {
    /// Placements present after but not before, in `after` order.
    pub added: Vec<(usize, CellIndex)>,
    /// Placements present before but not after, in `before` order.
    pub removed: Vec<(usize, CellIndex)>,
}

impl DeploymentDiff {
    /// `true` when the deployments are identical as sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Diffs two placement lists as sets of `(uav, cell)` pairs.
///
/// A UAV that moved shows up once in `removed` (old cell) and once in
/// `added` (new cell). Runs in `O((n + m) log (n + m))`.
pub fn diff_deployments(
    before: &[(usize, CellIndex)],
    after: &[(usize, CellIndex)],
) -> DeploymentDiff {
    let mut before_sorted = before.to_vec();
    let mut after_sorted = after.to_vec();
    before_sorted.sort_unstable();
    after_sorted.sort_unstable();
    DeploymentDiff {
        added: after
            .iter()
            .filter(|p| before_sorted.binary_search(p).is_err())
            .copied()
            .collect(),
        removed: before
            .iter()
            .filter(|p| after_sorted.binary_search(p).is_err())
            .copied()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec};

    /// A 5×5 grid with two user clusters and a 6-UAV fleet; roomy
    /// enough for kills, surges and moves to all change coverage.
    fn build_instance(gateway: Option<Point2>) -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, 450.0);
        for i in 0..8 {
            b.add_user(Point2::new(150.0 + 20.0 * i as f64, 150.0), 2_000.0);
        }
        for i in 0..8 {
            b.add_user(Point2::new(1_200.0 + 10.0 * i as f64, 1_200.0), 2_000.0);
        }
        for _ in 0..4 {
            b.add_uav(4, UavRadio::new(30.0, 5.0, 400.0));
        }
        for _ in 0..2 {
            b.add_uav(6, UavRadio::new(33.0, 6.0, 500.0));
        }
        if let Some(gw) = gateway {
            b.gateway(gw);
        }
        b.build().unwrap()
    }

    fn config() -> LoopConfig {
        let mut cfg = LoopConfig::new(ApproxConfig::with_s(1));
        cfg.tile_cells = 2;
        cfg
    }

    /// Oracle-7 helper: incremental served == cold rescore served and
    /// the materialized solution validates.
    fn assert_cold_equivalent(solver: &SolverLoop) {
        let cold = solver.cold_rescore().expect("cold rescore");
        assert_eq!(solver.served_users(), cold.served_users());
        solver
            .solution()
            .validate(solver.instance())
            .expect("validate");
    }

    #[test]
    fn seed_matches_cold_solve() {
        let instance = build_instance(None);
        let solver = SolverLoop::new(instance.clone(), config()).unwrap();
        let cold = approx_alg(&instance, &config().approx).unwrap();
        assert_eq!(solver.served_users(), cold.served_users());
        assert_eq!(solver.solution().deployment(), cold.deployment());
        assert_cold_equivalent(&solver);
    }

    #[test]
    fn kill_drops_placement_and_stays_consistent() {
        let instance = build_instance(None);
        let mut solver = SolverLoop::new(instance, config()).unwrap();
        let victim = solver.placements()[0].0;
        let before = solver.served_users();
        let out = solver.apply(Delta::KillUavs(vec![victim])).unwrap();
        assert!(solver.placements().iter().all(|&(u, _)| u != victim));
        assert!(out.served <= before);
        assert_eq!(solver.dead_uavs(), vec![victim]);
        assert_cold_equivalent(&solver);
        // Re-killing is a no-op.
        let served = solver.served_users();
        solver.apply(Delta::KillUavs(vec![victim])).unwrap();
        assert_eq!(solver.served_users(), served);
        assert_cold_equivalent(&solver);
    }

    #[test]
    fn killed_uav_never_returns_as_relay() {
        let instance = build_instance(None);
        let mut solver = SolverLoop::new(instance, config()).unwrap();
        let victims: Vec<usize> = solver.placements().iter().map(|&(u, _)| u).collect();
        for v in victims {
            solver.apply(Delta::KillUavs(vec![v])).unwrap();
            let dead = solver.dead_uavs();
            assert!(solver.placements().iter().all(|(u, _)| !dead.contains(u)));
            assert_cold_equivalent(&solver);
        }
    }

    #[test]
    fn surge_serves_new_users() {
        let instance = build_instance(None);
        let mut solver = SolverLoop::new(instance, config()).unwrap();
        let before = solver.served_users();
        // Surge next to the first cluster, well inside coverage.
        let surge: Vec<User> = (0..3)
            .map(|i| User {
                pos: Point2::new(200.0 + i as f64, 160.0),
                min_rate_bps: 2_000.0,
            })
            .collect();
        let out = solver.apply(Delta::UserSurge(surge)).unwrap();
        assert!(out.served >= before);
        assert_eq!(solver.instance().num_users(), 19);
        assert_cold_equivalent(&solver);
    }

    #[test]
    fn moves_track_users_across_tiles() {
        let instance = build_instance(None);
        let mut solver = SolverLoop::new(instance, config()).unwrap();
        // March the first cluster toward the second, one hop at a time.
        for step in 0..5 {
            let moves: Vec<(u32, Point2)> = (0..8)
                .map(|id| {
                    let x = 150.0 + 20.0 * id as f64 + 200.0 * (step + 1) as f64;
                    (id, Point2::new(x.min(1_400.0), 150.0))
                })
                .collect();
            solver.apply(Delta::UserMoved(moves)).unwrap();
            assert_cold_equivalent(&solver);
        }
    }

    #[test]
    fn sever_triggers_repair_with_gateway() {
        let instance = build_instance(Some(Point2::new(150.0, 150.0)));
        let mut solver = SolverLoop::new(instance, config()).unwrap();
        // Sever every edge of the first placement's cell; repair must
        // keep the solution valid (possibly dropping placements).
        let loc = solver.placements()[0].1;
        let links: Vec<(CellIndex, CellIndex)> = solver
            .instance()
            .location_graph()
            .neighbors(loc)
            .iter()
            .map(|&n| (loc, n))
            .collect();
        match solver.apply(Delta::SeverLinks(links)) {
            Ok(_) => assert_cold_equivalent(&solver),
            Err(CoreError::Connect(_)) => {} // gateway genuinely cut off
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn interleaved_deltas_stay_cold_equivalent() {
        let instance = build_instance(None);
        let mut solver = SolverLoop::new(instance, config()).unwrap();
        let victim = solver.placements()[0].0;
        let deltas = vec![
            Delta::UserMoved(vec![(0, Point2::new(700.0, 700.0))]),
            Delta::KillUavs(vec![victim]),
            Delta::UserSurge(vec![User {
                pos: Point2::new(1_250.0, 1_250.0),
                min_rate_bps: 2_000.0,
            }]),
            Delta::UserMoved(vec![(16, Point2::new(200.0, 200.0))]),
            Delta::KillUavs(vec![victim]), // repeat: no-op
        ];
        for d in deltas {
            solver.apply(d).unwrap();
            assert_cold_equivalent(&solver);
        }
        assert_eq!(solver.stats().deltas_applied, 5);
    }

    #[test]
    fn compaction_preserves_equivalence() {
        let instance = build_instance(None);
        let mut solver = SolverLoop::new(instance, config()).unwrap();
        // Enough refresh churn to force several compaction rebuilds.
        for step in 0..20 {
            let y = 150.0 + 50.0 * (step % 4) as f64;
            solver
                .apply(Delta::UserMoved(vec![(0, Point2::new(150.0, y))]))
                .unwrap();
        }
        assert!(solver.stats().matching_rebuilds > 0);
        assert_cold_equivalent(&solver);
    }

    #[test]
    fn kill_out_of_range_is_typed() {
        let instance = build_instance(None);
        let mut solver = SolverLoop::new(instance, config()).unwrap();
        let err = solver.apply(Delta::KillUavs(vec![99])).unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameters(_)));
    }

    #[test]
    fn move_out_of_range_is_typed() {
        let instance = build_instance(None);
        let mut solver = SolverLoop::new(instance, config()).unwrap();
        let err = solver
            .apply(Delta::UserMoved(vec![(999, Point2::new(0.0, 0.0))]))
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameters(_)));
    }

    /// Regression: a huge-but-finite fleet range (or equivalently a
    /// degenerate tiny `tile_m`) made the dilation ratio saturate the
    /// f64→usize cast, and the unclamped `+ 1` overflowed in debug
    /// builds (wrapping the tile arithmetic in release). The dilation
    /// must clamp to the partition dims and stay correct.
    #[test]
    fn extreme_dilation_ratio_clamps_to_partition() {
        let grid = GridSpec::new(
            AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, 450.0);
        for i in 0..8 {
            b.add_user(Point2::new(150.0 + 20.0 * i as f64, 150.0), 2_000.0);
        }
        // Effective tile_m / range ratio beyond 2^64: the old code
        // panicked inside `SolverLoop::new` before applying anything.
        b.add_uav(4, UavRadio::new(30.0, 5.0, 1e300));
        b.add_uav(4, UavRadio::new(30.0, 5.0, 400.0));
        let instance = b.build().unwrap();
        let mut solver = SolverLoop::new(instance, config()).unwrap();
        solver
            .apply(Delta::UserMoved(vec![(0, Point2::new(1_200.0, 1_200.0))]))
            .unwrap();
        assert_cold_equivalent(&solver);
    }

    /// A `tile_cells` large enough to push `tile_m` past f64 range
    /// must fail with a typed error, not a saturated dilation.
    #[test]
    fn non_finite_tile_m_is_typed() {
        let grid = GridSpec::new(AreaSpec::new(1e300, 1e300, 500.0).unwrap(), 1e300, 300.0)
            .unwrap()
            .build();
        let mut b = Instance::builder(grid, 450.0);
        b.add_user(Point2::new(1.0, 1.0), 2_000.0);
        b.add_uav(4, UavRadio::new(30.0, 5.0, 400.0));
        let instance = b.build().unwrap();
        let mut cfg = config();
        cfg.tile_cells = usize::MAX; // tile_m = usize::MAX · 1e300 m = inf
        let err = SolverLoop::new(instance, cfg).unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameters(_)));
    }

    #[test]
    fn deployment_diff_tracks_moves_kills_and_adds() {
        let before = [(0, 3), (1, 7), (2, 9)];
        let after = [(0, 3), (1, 8), (3, 2)];
        let diff = diff_deployments(&before, &after);
        assert_eq!(diff.added, vec![(1, 8), (3, 2)]);
        assert_eq!(diff.removed, vec![(1, 7), (2, 9)]);
        assert!(!diff.is_empty());
        assert!(diff_deployments(&before, &before).is_empty());
        // Order-insensitive: a permuted deployment is not a change.
        let permuted = [(2, 9), (0, 3), (1, 7)];
        assert!(diff_deployments(&before, &permuted).is_empty());
    }
}
