//! The maximum connected coverage problem for heterogeneous UAV
//! networks — the primary contribution of the reproduced paper.
//!
//! # Problem (§II-C)
//!
//! Deploy `K` heterogeneous UAVs (capacities `C_1 ≥ … ≥ C_K`, possibly
//! different radios) at candidate hovering locations on a grid so that
//! the number of served users is maximized, subject to:
//!
//! 1. each user is served by at most one UAV, within that UAV's
//!    coverage radius, at a data rate ≥ the user's minimum;
//! 2. UAV `k` serves at most `C_k` users;
//! 3. the deployed UAVs form a connected network under the UAV-to-UAV
//!    range `R_uav`.
//!
//! # What this crate provides
//!
//! * [`Instance`] — the problem input (grid, users, fleet, channels)
//!   with precomputed coverage tables and the location graph;
//! * [`assign_users`] — the **optimal** user assignment for a fixed
//!   deployment via integral max-flow (§II-D, Lemma 1);
//! * [`SegmentPlan`] — Algorithm 1: the optimal segment budget
//!   (`L_max`, `p*_1 … p*_{s+1}`) from the relay bound `g(…)` (Eq. 2,
//!   Lemma 2) and the hop budgets `Q_h` (Eq. 1);
//! * [`approx_alg`] — Algorithm 2, the `O(√(s/K))`-approximation:
//!   enumerate `s`-subsets of seed locations, run the two-matroid lazy
//!   greedy per subset, connect the chosen locations through an MST of
//!   shortest relay paths, and keep the best feasible deployment;
//! * [`Solution`] / [`Solution::validate`] — deployments with their
//!   assignments and an independent feasibility checker;
//! * [`exact_optimum`] — a brute-force reference for tiny instances,
//!   used by the test-suite to sanity-check the approximation ratio;
//! * the `verify` module — differential oracles over every redundant
//!   implementation pair (matching vs max-flow, streaming vs
//!   materialized sweep, closed-form vs `Σ Q_h` relay bound,
//!   substrate-backed vs per-call-BFS connection, approx vs exact with
//!   the Theorem 1 floor) plus fault injection with typed
//!   repair ([`inject_and_repair`]); the hot-path cross-checks compile
//!   in under the `debug-validate` cargo feature.
//!
//! # Examples
//!
//! ```
//! use uavnet_core::{ApproxConfig, Instance, approx_alg};
//! use uavnet_channel::{AtgChannel, UavRadio};
//! use uavnet_geom::{AreaSpec, GridSpec, Point2};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0)?, 300.0, 300.0)?.build();
//! let mut builder = Instance::builder(grid, 600.0);
//! for i in 0..20 {
//!     builder.add_user(Point2::new(45.0 * i as f64, 400.0), 2_000.0);
//! }
//! builder.add_uav(8, UavRadio::new(30.0, 5.0, 500.0));
//! builder.add_uav(5, UavRadio::new(28.0, 4.0, 400.0));
//! let instance = builder.build()?;
//!
//! let solution = approx_alg(&instance, &ApproxConfig::with_s(1))?;
//! solution.validate(&instance)?;
//! assert!(solution.served_users() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alg1;
mod approx;
mod assign;
mod connecting;
mod coverage;
mod error;
mod exact;
mod incremental;
mod model;
mod obs;
mod oracle;
mod redeploy;
mod seed_matroid;
mod segments;
mod shard;
mod solution;
mod strategy;
mod verify;

pub use alg1::SegmentPlan;
#[doc(hidden)]
pub use approx::approx_alg_materialized;
pub use approx::{approx_alg, approx_alg_with_stats, ApproxConfig, ApproxStats, SweepProfile};
pub use assign::{
    assign_users, assign_users_max_flow, assign_users_max_rate, Assignment, ThroughputAssignment,
};
pub use connecting::{
    connect_via_mst, connect_via_substrate, extend_to_gateway, extend_to_gateway_substrate,
    ConnectError,
};
pub use coverage::{CoverageMemory, CoverageTables};
pub use error::CoreError;
pub use exact::exact_optimum;
pub use incremental::{
    diff_deployments, Delta, DeltaOutcome, DeploymentDiff, LoopConfig, ResolveStats, SolverLoop,
};
pub use model::{Instance, InstanceBuilder, Uav, User};
pub use oracle::CoverageOracle;
pub use redeploy::{redeploy, rescore, RedeployStats};
pub use seed_matroid::{seed_matroid, seed_matroid_substrate};
pub use segments::{g_upper_bound, g_via_q_sums, h_max, q_budgets};
pub use shard::{approx_alg_sharded, ShardConfig};
pub use solution::{
    score_deployment, try_score_deployment, Deployment, Solution, SolutionSummary, ValidationError,
};
pub use strategy::{
    BestCandidate, SearchContext, SearchResult, SeedStrategy, SeedStrategyKind, DEFAULT_BEAM_WIDTH,
};
pub use verify::{
    check_against_exact, check_assignment_oracles, check_connection_substrate, check_incremental,
    check_relay_bound, check_sharded_sweep, check_strategy_quality, check_sweep_oracles,
    inject_and_repair, theorem1_ratio_holds, verify_pipeline, DegradationReport, Fault,
    VerifyError, STRATEGY_QUALITY_DEN, STRATEGY_QUALITY_NUM,
};
