//! Connecting a chosen location set through relay nodes (Fig. 3 of the
//! paper).
//!
//! Given the greedily chosen locations `V'_j`, Algorithm 2 builds a
//! complete weighted graph `G'_j` whose edge weights are pairwise hop
//! distances in the candidate graph `G`, finds a minimum spanning tree
//! `T'_j`, and replaces every tree edge by a shortest path in `G`. The
//! union of those paths is the connected subgraph `G_j`; its non-`V'_j`
//! nodes are the relay locations.

use std::error::Error;
use std::fmt;
use uavnet_graph::{
    bfs_hops, prim_mst, shortest_path, ConnectivitySubstrate, Graph, Hops, UNREACHABLE_HOPS,
};

/// Error from [`connect_via_mst`] / [`extend_to_gateway`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConnectError {
    /// Two of the requested nodes lie in different components of the
    /// candidate graph, so no relay chain can join them.
    Unreachable {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A requested node does not exist in the candidate graph.
    NodeOutOfRange {
        /// The offending node.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// The same node was requested twice.
    DuplicateNode {
        /// The repeated node.
        node: usize,
    },
    /// [`extend_to_gateway`] was called with no deployed location.
    EmptyDeployment,
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::Unreachable { a, b } => {
                write!(f, "locations {a} and {b} cannot be connected by relays")
            }
            ConnectError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} outside the {num_nodes}-node graph")
            }
            ConnectError::DuplicateNode { node } => write!(f, "duplicate node {node}"),
            ConnectError::EmptyDeployment => {
                write!(f, "cannot extend an empty deployment to the gateway")
            }
        }
    }
}

impl Error for ConnectError {}

/// Connects `nodes` inside `graph` with relay nodes: MST over pairwise
/// hop distances, each tree edge expanded to a shortest path, followed
/// by the Kou–Markowsky–Berman clean-up (take a spanning tree of the
/// union and iteratively prune relay leaves), so no relay is kept that
/// the terminals do not need.
///
/// Returns the full connected node set: first the input `nodes` (in
/// their given order), then the surviving relay nodes. The induced
/// subgraph over the returned set is connected.
///
/// # Errors
///
/// * [`ConnectError::Unreachable`] if the nodes span multiple
///   components of `graph`;
/// * [`ConnectError::NodeOutOfRange`] / [`ConnectError::DuplicateNode`]
///   on malformed input — typed errors, not panics, so fault-injected
///   location sets degrade gracefully.
///
/// # Examples
///
/// ```
/// use uavnet_core::connect_via_mst;
/// use uavnet_graph::Graph;
///
/// // A path 0-1-2-3-4: connecting {0, 4} needs relays 1, 2, 3.
/// let g = Graph::from_edges(5, (0..4).map(|i| (i, i + 1)));
/// let all = connect_via_mst(&g, &[0, 4])?;
/// assert_eq!(all.len(), 5);
/// # Ok::<(), uavnet_core::ConnectError>(())
/// ```
pub fn connect_via_mst(graph: &Graph, nodes: &[usize]) -> Result<Vec<usize>, ConnectError> {
    let k = nodes.len();
    for (i, &v) in nodes.iter().enumerate() {
        if v >= graph.num_nodes() {
            return Err(ConnectError::NodeOutOfRange {
                node: v,
                num_nodes: graph.num_nodes(),
            });
        }
        if nodes[..i].contains(&v) {
            return Err(ConnectError::DuplicateNode { node: v });
        }
    }
    if k <= 1 {
        return Ok(nodes.to_vec());
    }
    // Pairwise hop distances via one BFS per node.
    let mut weights: Vec<Vec<Option<Hops>>> = vec![vec![None; k]; k];
    for (i, &v) in nodes.iter().enumerate() {
        let d = bfs_hops(graph, v);
        for (j, &w) in nodes.iter().enumerate() {
            weights[i][j] = d[w];
        }
    }
    let mst = match prim_mst(&weights) {
        Ok(mst) => mst,
        Err(_) => {
            // Find a concrete unreachable pair for the error message.
            let d = bfs_hops(graph, nodes[0]);
            let b = nodes
                .iter()
                .copied()
                .find(|&w| d[w].is_none())
                .unwrap_or(nodes[0]);
            uavnet_obs::counters::CONNECT_FAILURES.add(1);
            return Err(ConnectError::Unreachable { a: nodes[0], b });
        }
    };
    let mut all = nodes.to_vec();
    let mut in_set = vec![false; graph.num_nodes()];
    for &v in nodes {
        in_set[v] = true;
    }
    for &(i, j, _) in &mst {
        // INVARIANT (unwrap audit): the MST edge (i, j) exists only if
        // weights[i][j] was Some, and that weight came from
        // `bfs_hops(graph, nodes[i])` over THIS graph — so the same
        // BFS front reaches nodes[j] here too. No caller input can
        // break the agreement; both reads are derived from one graph
        // within this call.
        let path = shortest_path(graph, nodes[i], nodes[j])
            .expect("MST edge implies a finite hop distance");
        for v in path {
            if !in_set[v] {
                in_set[v] = true;
                all.push(v);
            }
        }
    }
    let pruned = prune_relay_leaves(graph, nodes, all);
    uavnet_obs::counters::CONNECT_MST_CONNECTIONS.add(1);
    uavnet_obs::counters::CONNECT_RELAYS_ADDED.add((pruned.len() - nodes.len()) as u64);
    #[cfg(feature = "debug-validate")]
    {
        assert!(
            uavnet_graph::is_connected_subset(graph, &pruned),
            "debug-validate: pruned relay set is not induced-connected"
        );
        assert!(
            nodes.iter().all(|v| pruned.contains(v)),
            "debug-validate: pruning dropped a terminal"
        );
    }
    Ok(pruned)
}

/// [`connect_via_mst`] with the hop structure read from a precomputed
/// [`ConnectivitySubstrate`] instead of per-call BFS: the `k` full
/// BFS runs for pairwise weights become `O(k²)` row lookups, and
/// unreachability is detected from the rows. Only the `k − 1` tree
/// edges still extract a path, via the same [`shortest_path`] BFS as
/// [`connect_via_mst`]. `graph` must be the graph the substrate was
/// built from.
///
/// Produces **exactly** the node set of [`connect_via_mst`] — same
/// relays, same order — because the weights are value-identical and
/// the path extraction is literally shared; `verify.rs` checks this
/// differentially and `debug-validate` builds assert it inline.
///
/// # Errors
///
/// Same contract as [`connect_via_mst`].
pub fn connect_via_substrate(
    graph: &Graph,
    sub: &ConnectivitySubstrate,
    nodes: &[usize],
) -> Result<Vec<usize>, ConnectError> {
    let k = nodes.len();
    for (i, &v) in nodes.iter().enumerate() {
        if v >= sub.num_nodes() {
            return Err(ConnectError::NodeOutOfRange {
                node: v,
                num_nodes: sub.num_nodes(),
            });
        }
        if nodes[..i].contains(&v) {
            return Err(ConnectError::DuplicateNode { node: v });
        }
    }
    if k <= 1 {
        return Ok(nodes.to_vec());
    }
    let mut weights: Vec<Vec<Option<Hops>>> = vec![vec![None; k]; k];
    for (i, &v) in nodes.iter().enumerate() {
        let row = sub.hop_row(v);
        for (j, &w) in nodes.iter().enumerate() {
            weights[i][j] = match row[w] {
                UNREACHABLE_HOPS => None,
                d => Some(Hops::from(d)),
            };
        }
    }
    let mst = match prim_mst(&weights) {
        Ok(mst) => mst,
        Err(_) => {
            let row = sub.hop_row(nodes[0]);
            let b = nodes
                .iter()
                .copied()
                .find(|&w| row[w] == UNREACHABLE_HOPS)
                .unwrap_or(nodes[0]);
            uavnet_obs::counters::CONNECT_FAILURES.add(1);
            return Err(ConnectError::Unreachable { a: nodes[0], b });
        }
    };
    let mut all = nodes.to_vec();
    let mut in_set = vec![false; sub.num_nodes()];
    for &v in nodes {
        in_set[v] = true;
    }
    // Path extraction deliberately shares `shortest_path` with
    // `connect_via_mst`: only s − 1 tree edges need a path, and using
    // the same BFS keeps the chosen relays bit-for-bit identical.
    for &(i, j, _) in &mst {
        // Unlike `connect_via_mst`, finiteness of the MST weight here
        // comes from the *substrate's* hop rows while the path runs a
        // BFS on `graph` — if a caller hands a graph the substrate was
        // not built from (a documented misuse that malformed input can
        // reach), the two can disagree. Degrade to a typed error
        // instead of panicking.
        let Some(path) = shortest_path(graph, nodes[i], nodes[j]) else {
            return Err(ConnectError::Unreachable {
                a: nodes[i],
                b: nodes[j],
            });
        };
        for v in path {
            if !in_set[v] {
                in_set[v] = true;
                all.push(v);
            }
        }
    }
    let pruned = prune_relay_leaves(graph, nodes, all);
    uavnet_obs::counters::CONNECT_MST_CONNECTIONS.add(1);
    uavnet_obs::counters::CONNECT_RELAYS_ADDED.add((pruned.len() - nodes.len()) as u64);
    #[cfg(feature = "debug-validate")]
    {
        assert_eq!(
            Ok(&pruned),
            connect_via_mst(graph, nodes).as_ref(),
            "debug-validate: substrate connection diverges from BFS connection"
        );
    }
    Ok(pruned)
}

/// KMB step 4–5: spanning tree of the induced union, then iterative
/// removal of non-terminal leaves. Keeps the terminal-first ordering.
fn prune_relay_leaves(graph: &Graph, terminals: &[usize], all: Vec<usize>) -> Vec<usize> {
    if all.len() <= terminals.len() {
        return all;
    }
    let n = graph.num_nodes();
    let mut in_set = vec![false; n];
    for &v in &all {
        in_set[v] = true;
    }
    let mut is_terminal = vec![false; n];
    for &t in terminals {
        is_terminal[t] = true;
    }
    // BFS spanning tree of the induced subgraph.
    let mut parent = vec![usize::MAX; n];
    let mut tree_degree = vec![0usize; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[all[0]] = true;
    queue.push_back(all[0]);
    while let Some(u) = queue.pop_front() {
        for &w in graph.neighbors(u) {
            if in_set[w] && !visited[w] {
                visited[w] = true;
                parent[w] = u;
                tree_degree[w] += 1;
                tree_degree[u] += 1;
                queue.push_back(w);
            }
        }
    }
    // Iteratively shed relay leaves.
    let mut removed = vec![false; n];
    let mut leaves: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&v| tree_degree[v] <= 1 && !is_terminal[v])
        .collect();
    while let Some(v) = leaves.pop() {
        if removed[v] || tree_degree[v] > 1 || is_terminal[v] {
            continue;
        }
        removed[v] = true;
        let p = parent[v];
        if p != usize::MAX && !removed[p] {
            tree_degree[p] -= 1;
            if tree_degree[p] <= 1 && !is_terminal[p] {
                leaves.push(p);
            }
        }
    }
    all.into_iter().filter(|&v| !removed[v]).collect()
}

/// Extends a connected location set with relay cells until it touches
/// a gateway-capable cell (Fig. 1's uplink requirement). Returns the
/// *additional* cells, in path order ending at the gateway cell;
/// empty when the set already contains one.
///
/// # Errors
///
/// * [`ConnectError::Unreachable`] if no gateway-capable cell is
///   reachable from the set;
/// * [`ConnectError::EmptyDeployment`] /
///   [`ConnectError::NodeOutOfRange`] on malformed input.
pub fn extend_to_gateway(
    graph: &Graph,
    current: &[usize],
    mut is_gateway: impl FnMut(usize) -> bool,
) -> Result<Vec<usize>, ConnectError> {
    if current.is_empty() {
        return Err(ConnectError::EmptyDeployment);
    }
    if let Some(&node) = current.iter().find(|&&v| v >= graph.num_nodes()) {
        return Err(ConnectError::NodeOutOfRange {
            node,
            num_nodes: graph.num_nodes(),
        });
    }
    if current.iter().any(|&l| is_gateway(l)) {
        return Ok(Vec::new());
    }
    let dist = uavnet_graph::multi_source_hops(graph, current.iter().copied());
    let target = (0..graph.num_nodes())
        .filter(|&c| is_gateway(c))
        .filter_map(|c| dist[c].map(|d| (d, c)))
        .min();
    let Some((_, target)) = target else {
        uavnet_obs::counters::CONNECT_FAILURES.add(1);
        return Err(ConnectError::Unreachable {
            a: current[0],
            b: (0..graph.num_nodes())
                .find(|&c| is_gateway(c))
                .unwrap_or(current[0]),
        });
    };
    // Walk back from the target to the nearest set member.
    //
    // INVARIANT (unwrap audit) for both expects below: `target` was
    // selected because `multi_source_hops(graph, current)` assigned it
    // a finite distance, i.e. some member of `current` reaches it in
    // THIS graph. Hop distances are symmetric in an undirected graph,
    // so `bfs_hops(graph, target)` reaches that member (first expect)
    // and `shortest_path(graph, start, target)` finds the path (second
    // expect). All three traversals run on the same graph within this
    // call, so no caller input can make them disagree.
    let back = bfs_hops(graph, target);
    let (_, start) = current
        .iter()
        .filter_map(|&v| back[v].map(|d| (d, v)))
        .min()
        .expect("target reachable implies a finite back-distance");
    let path = shortest_path(graph, start, target)
        .expect("finite back-distance implies a path on the same graph");
    uavnet_obs::counters::CONNECT_GATEWAY_EXTENSIONS.add(1);
    Ok(path.into_iter().filter(|v| !current.contains(v)).collect())
}

/// [`extend_to_gateway`] from precomputed hop rows: the multi-source
/// BFS for the nearest gateway-capable cell and the full walk-back BFS
/// both become row reads (same `(distance, index)` minimization), and
/// only the single connecting path is extracted — via the same
/// [`shortest_path`] BFS — so the output is bit-for-bit identical.
///
/// `gateway_cells` must be sorted ascending (as
/// `Instance::gateway_cells` returns them); `graph` must be the graph
/// the substrate was built from.
///
/// # Errors
///
/// Same contract as [`extend_to_gateway`].
pub fn extend_to_gateway_substrate(
    graph: &Graph,
    sub: &ConnectivitySubstrate,
    current: &[usize],
    gateway_cells: &[usize],
) -> Result<Vec<usize>, ConnectError> {
    if current.is_empty() {
        return Err(ConnectError::EmptyDeployment);
    }
    if let Some(&node) = current.iter().find(|&&v| v >= sub.num_nodes()) {
        return Err(ConnectError::NodeOutOfRange {
            node,
            num_nodes: sub.num_nodes(),
        });
    }
    if current
        .iter()
        .any(|v| gateway_cells.binary_search(v).is_ok())
    {
        return Ok(Vec::new());
    }
    // Nearest gateway cell over the min-of-rows multi-source metric.
    let target = gateway_cells
        .iter()
        .filter_map(|&c| {
            current
                .iter()
                .map(|&v| sub.hop_row(v)[c])
                .min()
                .filter(|&d| d != UNREACHABLE_HOPS)
                .map(|d| (d, c))
        })
        .min();
    let Some((_, target)) = target else {
        uavnet_obs::counters::CONNECT_FAILURES.add(1);
        return Err(ConnectError::Unreachable {
            a: current[0],
            b: gateway_cells.first().copied().unwrap_or(current[0]),
        });
    };
    // INVARIANT (unwrap audit): `target` won the min above because
    // some member of `current` has a finite substrate distance to it;
    // the substrate's hop matrix is symmetric, so the walk-back min
    // over the same matrix is non-empty. Both reads come from the one
    // substrate, so the expect is unreachable for any caller input.
    let back = sub.hop_row(target);
    let (_, start) = current
        .iter()
        .filter_map(|&v| (back[v] != UNREACHABLE_HOPS).then_some((back[v], v)))
        .min()
        .expect("target reachable implies a finite back-distance");
    // The path, however, is extracted from `graph` while reachability
    // was established on the substrate — a caller passing a graph the
    // substrate was not built from can make them disagree, so that
    // mismatch degrades to a typed error rather than a panic.
    let Some(path) = shortest_path(graph, start, target) else {
        return Err(ConnectError::Unreachable {
            a: start,
            b: target,
        });
    };
    uavnet_obs::counters::CONNECT_GATEWAY_EXTENSIONS.add(1);
    Ok(path.into_iter().filter(|v| !current.contains(v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_graph::is_connected_subset;

    fn grid_graph(cols: usize, rows: usize) -> Graph {
        let mut g = Graph::new(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    g.add_edge(v, v + 1);
                }
                if r + 1 < rows {
                    g.add_edge(v, v + cols);
                }
            }
        }
        g
    }

    #[test]
    fn single_and_empty_inputs() {
        let g = grid_graph(3, 3);
        assert_eq!(connect_via_mst(&g, &[]).unwrap(), Vec::<usize>::new());
        assert_eq!(connect_via_mst(&g, &[5]).unwrap(), vec![5]);
    }

    #[test]
    fn adjacent_nodes_need_no_relays() {
        let g = grid_graph(3, 3);
        let all = connect_via_mst(&g, &[0, 1, 2]).unwrap();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn corners_of_grid_get_relays() {
        let g = grid_graph(3, 3);
        let all = connect_via_mst(&g, &[0, 8]).unwrap();
        assert!(all.len() >= 5, "needs 3 relays at least: {all:?}");
        assert!(is_connected_subset(&g, &all));
        // Inputs come first.
        assert_eq!(&all[..2], &[0, 8]);
    }

    #[test]
    fn result_is_always_induced_connected() {
        let g = grid_graph(4, 4);
        for nodes in [
            vec![0, 15],
            vec![3, 12, 0],
            vec![5, 10, 6, 9],
            vec![0, 3, 12, 15],
        ] {
            let all = connect_via_mst(&g, &nodes).unwrap();
            assert!(is_connected_subset(&g, &all), "{nodes:?} -> {all:?}");
            // Every requested node is present.
            for v in &nodes {
                assert!(all.contains(v));
            }
            // No duplicates.
            let mut sorted = all.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), all.len());
        }
    }

    #[test]
    fn relay_count_is_modest_on_a_line() {
        // Connecting the two ends of an n-path requires exactly the
        // n − 2 interior nodes.
        let g = Graph::from_edges(7, (0..6).map(|i| (i, i + 1)));
        let all = connect_via_mst(&g, &[0, 6]).unwrap();
        assert_eq!(all.len(), 7);
    }

    #[test]
    fn unreachable_nodes_error() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let err = connect_via_mst(&g, &[0, 3]).unwrap_err();
        assert!(matches!(err, ConnectError::Unreachable { .. }));
        assert!(err.to_string().contains("connected"));
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        let g = grid_graph(2, 2);
        assert_eq!(
            connect_via_mst(&g, &[0, 0]),
            Err(ConnectError::DuplicateNode { node: 0 })
        );
        assert_eq!(
            connect_via_mst(&g, &[0, 7]),
            Err(ConnectError::NodeOutOfRange {
                node: 7,
                num_nodes: 4
            })
        );
        assert_eq!(
            extend_to_gateway(&g, &[9], |_| true),
            Err(ConnectError::NodeOutOfRange {
                node: 9,
                num_nodes: 4
            })
        );
    }

    #[test]
    fn pruning_preserves_terminals_and_connectivity() {
        let g = grid_graph(6, 6);
        for terminals in [
            vec![0, 35, 5, 30],
            vec![0, 35],
            vec![7, 28, 10, 25, 17],
            vec![0, 5, 30, 35, 14, 21],
        ] {
            let all = connect_via_mst(&g, &terminals).unwrap();
            assert!(is_connected_subset(&g, &all), "{terminals:?}");
            for t in &terminals {
                assert!(all.contains(t));
            }
            // Pruned result: every relay has tree-degree ≥ 2 in SOME
            // spanning structure, so no relay can be dropped while
            // keeping the terminals connected through the same cells —
            // weaker check: dropping any single relay disconnects or
            // orphans something, OR the relay lies on a cycle. At
            // minimum: the relay count stays within the MST bound.
            assert!(all.len() <= 36);
        }
    }

    #[test]
    fn pruning_strips_crossing_artifacts() {
        // A plus-shaped graph: terminals at the four arm tips, center
        // shared. Expanding MST edges can union overlapping paths; the
        // pruned result must not exceed the plus itself.
        let mut g = Graph::new(9);
        // center 4; arms: 0-1-4, 2-3-4, 4-5-6, 4-7-8
        g.add_edge(0, 1);
        g.add_edge(1, 4);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        g.add_edge(4, 7);
        g.add_edge(7, 8);
        let all = connect_via_mst(&g, &[0, 2, 6, 8]).unwrap();
        assert_eq!(all.len(), 9); // the whole plus is needed
        assert!(is_connected_subset(&g, &all));
    }

    #[test]
    fn gateway_extension_noop_when_present() {
        let g = grid_graph(3, 3);
        let extra = extend_to_gateway(&g, &[0, 1], |c| c == 1).unwrap();
        assert!(extra.is_empty());
    }

    #[test]
    fn gateway_extension_builds_a_relay_path() {
        // Set at the NW corner, gateway only at the SE corner of a
        // 3×3 grid: needs a chain of relays ending at cell 8.
        let g = grid_graph(3, 3);
        let current = vec![0usize];
        let extra = extend_to_gateway(&g, &current, |c| c == 8).unwrap();
        assert_eq!(extra.last(), Some(&8));
        let mut all = current.clone();
        all.extend(extra);
        assert!(is_connected_subset(&g, &all));
        assert_eq!(all.len(), 5); // 4 hops → 4 new cells
    }

    #[test]
    fn gateway_extension_picks_the_nearest_capable_cell() {
        let g = grid_graph(3, 3);
        let extra = extend_to_gateway(&g, &[4], |c| c == 0 || c == 1).unwrap();
        assert_eq!(extra, vec![1]); // 1 is adjacent to the center
    }

    #[test]
    fn gateway_extension_unreachable_errors() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let err = extend_to_gateway(&g, &[0], |c| c == 3).unwrap_err();
        assert!(matches!(err, ConnectError::Unreachable { .. }));
        // No gateway cell at all behaves the same.
        let err = extend_to_gateway(&g, &[0], |_| false).unwrap_err();
        assert!(matches!(err, ConnectError::Unreachable { .. }));
    }

    #[test]
    fn gateway_extension_rejects_empty_set() {
        let g = grid_graph(2, 2);
        assert_eq!(
            extend_to_gateway(&g, &[], |_| true),
            Err(ConnectError::EmptyDeployment)
        );
    }

    #[test]
    fn substrate_connection_equals_bfs_connection() {
        let g = grid_graph(5, 5);
        let sub = ConnectivitySubstrate::build(&g).unwrap();
        for nodes in [
            vec![],
            vec![12],
            vec![0, 24],
            vec![4, 20, 0],
            vec![6, 18, 8, 16],
            vec![0, 4, 20, 24, 12],
        ] {
            assert_eq!(
                connect_via_substrate(&g, &sub, &nodes),
                connect_via_mst(&g, &nodes),
                "{nodes:?}"
            );
        }
        // Errors match too.
        let split = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let sub = ConnectivitySubstrate::build(&split).unwrap();
        assert_eq!(
            connect_via_substrate(&split, &sub, &[0, 3]),
            connect_via_mst(&split, &[0, 3])
        );
        assert_eq!(
            connect_via_substrate(&split, &sub, &[0, 0]),
            Err(ConnectError::DuplicateNode { node: 0 })
        );
        assert_eq!(
            connect_via_substrate(&split, &sub, &[9]),
            Err(ConnectError::NodeOutOfRange {
                node: 9,
                num_nodes: 4
            })
        );
    }

    #[test]
    fn substrate_gateway_extension_equals_bfs_extension() {
        let g = grid_graph(4, 4);
        let sub = ConnectivitySubstrate::build(&g).unwrap();
        for (current, gates) in [
            (vec![0usize], vec![15usize]),
            (vec![5, 6], vec![0, 12, 15]),
            (vec![3], vec![3]),
            (vec![10], vec![]),
        ] {
            let via_bfs = extend_to_gateway(&g, &current, |c| gates.binary_search(&c).is_ok());
            let via_sub = extend_to_gateway_substrate(&g, &sub, &current, &gates);
            assert_eq!(via_sub, via_bfs, "{current:?} gates {gates:?}");
        }
        assert_eq!(
            extend_to_gateway_substrate(&g, &sub, &[], &[0]),
            Err(ConnectError::EmptyDeployment)
        );
        let split = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let sub = ConnectivitySubstrate::build(&split).unwrap();
        assert_eq!(
            extend_to_gateway_substrate(&split, &sub, &[0], &[3]),
            Err(ConnectError::Unreachable { a: 0, b: 3 })
        );
    }
}
