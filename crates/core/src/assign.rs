//! The optimal user-assignment subroutine (§II-D, Lemma 1).

use crate::Instance;
use serde::{Deserialize, Serialize};
use uavnet_flow::{CapacitatedMatching, FlowNetwork};
use uavnet_geom::CellIndex;

/// An assignment of users to deployed UAVs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// For each user, the index into the deployment's placement list of
    /// the UAV serving it (`None` = unserved).
    pub user_placement: Vec<Option<usize>>,
    /// Number of served users.
    pub served: usize,
    /// Users served by each placement.
    pub loads: Vec<u32>,
}

/// Computes the **optimal** assignment of users to the deployed UAVs
/// `placements = [(uav, location), …]`: the maximum number of users
/// served subject to coverage admissibility and per-UAV capacities.
///
/// Uses the incremental capacitated-matching solver; the result equals
/// the integral max-flow of Lemma 1 (see
/// [`assign_users_max_flow`] and the cross-check tests).
///
/// # Panics
///
/// Panics if a placement references an out-of-range UAV or location.
///
/// # Examples
///
/// ```
/// # use uavnet_core::{Instance, assign_users};
/// # use uavnet_channel::UavRadio;
/// # use uavnet_geom::{AreaSpec, GridSpec, Point2};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let grid = GridSpec::new(AreaSpec::new(600.0, 600.0, 500.0)?, 300.0, 300.0)?.build();
/// # let mut b = Instance::builder(grid, 600.0);
/// # b.add_user(Point2::new(150.0, 150.0), 2_000.0);
/// # b.add_uav(5, UavRadio::new(30.0, 5.0, 500.0));
/// # let instance = b.build()?;
/// let assignment = assign_users(&instance, &[(0, 0)]);
/// assert_eq!(assignment.served, 1);
/// # Ok(())
/// # }
/// ```
pub fn assign_users(instance: &Instance, placements: &[(usize, CellIndex)]) -> Assignment {
    let mut matching = CapacitatedMatching::new(instance.num_users());
    for &(uav, loc) in placements {
        let st =
            matching.add_station_list(instance.uavs()[uav].capacity, instance.coverable(uav, loc));
        matching.saturate(st);
    }
    let user_placement = matching.assignment().to_vec();
    let loads = (0..placements.len())
        .map(|st| matching.station_load(st))
        .collect();
    Assignment {
        served: matching.matched_count(),
        user_placement,
        loads,
    }
}

/// Literal Lemma 1 implementation: builds the 4-layer flow network
/// `s → users → UAVs → t` and runs Dinic's algorithm. Semantically
/// identical to [`assign_users`]; exposed for verification and for the
/// doc-faithful construction.
pub fn assign_users_max_flow(instance: &Instance, placements: &[(usize, CellIndex)]) -> Assignment {
    let n = instance.num_users();
    let k = placements.len();
    let source = 0;
    let sink = 1 + n + k;
    let mut net = FlowNetwork::new(sink + 1);
    let mut user_arcs = Vec::with_capacity(n);
    for u in 0..n {
        user_arcs.push(net.add_arc(source, 1 + u, 1));
    }
    // Remember the coverage arcs so the assignment can be read back.
    let mut cover_arcs: Vec<(usize, usize, usize)> = Vec::new(); // (arc, user, placement)
    for (pi, &(uav, loc)) in placements.iter().enumerate() {
        let st_node = 1 + n + pi;
        for u in instance.coverable(uav, loc).iter() {
            let arc = net.add_arc(1 + u as usize, st_node, 1);
            cover_arcs.push((arc, u as usize, pi));
        }
        net.add_arc(st_node, sink, i64::from(instance.uavs()[uav].capacity));
    }
    let served = net.max_flow(source, sink) as usize;
    let mut user_placement = vec![None; n];
    let mut loads = vec![0u32; k];
    for &(arc, user, pi) in &cover_arcs {
        if net.flow_on(arc) == 1 {
            debug_assert!(user_placement[user].is_none());
            user_placement[user] = Some(pi);
            loads[pi] += 1;
        }
    }
    debug_assert_eq!(
        user_placement.iter().filter(|p| p.is_some()).count(),
        served
    );
    Assignment {
        user_placement,
        served,
        loads,
    }
}

/// A rate-aware assignment: maximum served users first, maximum total
/// data rate among those.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputAssignment {
    /// The underlying user→placement assignment.
    pub assignment: Assignment,
    /// Total downlink rate of all served users, in bit/s (rounded per
    /// serving arc) — the resolution the min-cost objective optimizes.
    pub total_rate_bps: u64,
}

impl ThroughputAssignment {
    /// Total downlink rate in kbit/s (derived from
    /// [`total_rate_bps`](Self::total_rate_bps)).
    pub fn total_rate_kbps(&self) -> u64 {
        self.total_rate_bps / 1_000
    }
}

/// Computes an assignment that serves the **maximum** number of users
/// and, among all such assignments, **maximizes the total data rate**
/// (the objective of the `maxThroughput` comparison paper, solved
/// exactly here via min-cost max-flow: each user→UAV arc costs
/// `R_max − rate`).
///
/// # Panics
///
/// Panics if a placement references an out-of-range UAV or location.
pub fn assign_users_max_rate(
    instance: &Instance,
    placements: &[(usize, CellIndex)],
) -> ThroughputAssignment {
    use uavnet_flow::MinCostFlow;
    let n = instance.num_users();
    let k = placements.len();
    let source = 0;
    let sink = 1 + n + k;
    let mut net = MinCostFlow::new(sink + 1);
    for u in 0..n {
        net.add_arc(source, 1 + u, 1, 0);
    }
    // Rates in **bit/s** (rounded, not truncated) per coverage arc;
    // R_max normalizes to ≥ 0 costs. Full-resolution costs keep
    // sub-kbps rate differences decisive — truncating to whole kbit/s
    // used to collapse close users into arbitrary ties and zeroed any
    // rate below 1 kbit/s.
    let mut rated_arcs: Vec<(usize, usize, usize, i64)> = Vec::new(); // (arc, user, placement, rate)
    let atg = instance.atg();
    let mut r_max = 0i64;
    let mut pending: Vec<(usize, usize, i64)> = Vec::new();
    for (pi, &(uav, loc)) in placements.iter().enumerate() {
        let hover = instance.grid().hover_position(loc);
        let radio = &instance.uavs()[uav].radio;
        for u in instance.coverable(uav, loc).iter() {
            let rate = atg
                .data_rate_bps(radio, hover, instance.users()[u as usize].pos)
                .round() as i64;
            r_max = r_max.max(rate);
            pending.push((u as usize, pi, rate));
        }
    }
    for (user, pi, rate) in pending {
        let arc = net.add_arc(1 + user, 1 + n + pi, 1, r_max - rate);
        rated_arcs.push((arc, user, pi, rate));
    }
    for (pi, &(uav, _)) in placements.iter().enumerate() {
        net.add_arc(
            1 + n + pi,
            sink,
            i64::from(instance.uavs()[uav].capacity),
            0,
        );
    }
    let (served, _) = net.run(source, sink);
    let mut user_placement = vec![None; n];
    let mut loads = vec![0u32; k];
    let mut total_rate = 0u64;
    for &(arc, user, pi, rate) in &rated_arcs {
        if net.flow_on(arc) == 1 {
            user_placement[user] = Some(pi);
            loads[pi] += 1;
            total_rate += rate as u64;
        }
    }
    ThroughputAssignment {
        assignment: Assignment {
            user_placement,
            served: served as usize,
            loads,
        },
        total_rate_bps: total_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn instance_with(
        users: &[(f64, f64)],
        uavs: &[(u32, f64)], // (capacity, user range)
    ) -> Instance {
        let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), 300.0, 300.0)
            .unwrap()
            .build();
        let mut b = Instance::builder(grid, 600.0);
        for &(x, y) in users {
            b.add_user(Point2::new(x, y), 2_000.0);
        }
        for &(cap, range) in uavs {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, range));
        }
        b.build().unwrap()
    }

    #[test]
    fn single_uav_capacity_binds() {
        // 4 users around cell 4's center; capacity 2.
        let inst = instance_with(
            &[
                (440.0, 450.0),
                (460.0, 450.0),
                (450.0, 440.0),
                (450.0, 460.0),
            ],
            &[(2, 500.0)],
        );
        let a = assign_users(&inst, &[(0, 4)]);
        assert_eq!(a.served, 2);
        assert_eq!(a.loads, vec![2]);
        assert_eq!(a.user_placement.iter().filter(|p| p.is_some()).count(), 2);
    }

    #[test]
    fn two_uavs_split_users() {
        // Users near opposite corners; one UAV each.
        let inst = instance_with(
            &[(150.0, 150.0), (160.0, 150.0), (750.0, 750.0)],
            &[(2, 300.0), (2, 300.0)],
        );
        let a = assign_users(&inst, &[(0, 0), (1, 8)]);
        assert_eq!(a.served, 3);
        assert_eq!(a.loads, vec![2, 1]);
    }

    #[test]
    fn max_flow_agrees_with_matching() {
        let inst = instance_with(
            &[
                (150.0, 150.0),
                (160.0, 160.0),
                (450.0, 450.0),
                (460.0, 450.0),
                (750.0, 750.0),
                (740.0, 760.0),
                (150.0, 750.0),
            ],
            &[(2, 400.0), (3, 500.0), (1, 300.0)],
        );
        for placements in [
            vec![(0usize, 0usize)],
            vec![(0, 0), (1, 4)],
            vec![(0, 0), (1, 4), (2, 8)],
            vec![(2, 4), (1, 0), (0, 8)],
        ] {
            let a = assign_users(&inst, &placements);
            let b = assign_users_max_flow(&inst, &placements);
            assert_eq!(a.served, b.served, "{placements:?}");
            assert_eq!(a.loads.iter().sum::<u32>() as usize, a.served);
            assert_eq!(b.loads.iter().sum::<u32>() as usize, b.served);
        }
    }

    #[test]
    fn assignment_only_uses_coverable_pairs() {
        let inst = instance_with(
            &[(150.0, 150.0), (750.0, 750.0)],
            &[(5, 250.0)], // short range: covers at most one corner
        );
        let a = assign_users(&inst, &[(0, 0)]);
        assert_eq!(a.served, 1);
        assert_eq!(a.user_placement[1], None);
        let b = assign_users_max_flow(&inst, &[(0, 0)]);
        assert_eq!(b.user_placement[1], None);
    }

    #[test]
    fn empty_deployment_serves_nobody() {
        let inst = instance_with(&[(150.0, 150.0)], &[(5, 500.0)]);
        let a = assign_users(&inst, &[]);
        assert_eq!(a.served, 0);
        assert!(a.loads.is_empty());
        assert_eq!(a.user_placement, vec![None]);
    }

    #[test]
    fn max_rate_serves_as_many_as_plain_assignment() {
        let inst = instance_with(
            &[
                (150.0, 150.0),
                (160.0, 160.0),
                (450.0, 450.0),
                (460.0, 450.0),
                (750.0, 750.0),
            ],
            &[(2, 400.0), (2, 500.0)],
        );
        let placements = vec![(0usize, 0usize), (1usize, 4usize)];
        let plain = assign_users(&inst, &placements);
        let rated = assign_users_max_rate(&inst, &placements);
        assert_eq!(rated.assignment.served, plain.served);
        assert!(rated.total_rate_bps > 0);
        assert_eq!(rated.total_rate_kbps(), rated.total_rate_bps / 1_000);
        // The rate-aware assignment validates the same invariants.
        let sum: u32 = rated.assignment.loads.iter().sum();
        assert_eq!(sum as usize, rated.assignment.served);
    }

    #[test]
    fn max_rate_prefers_close_users_when_capacity_binds() {
        // One UAV, capacity 1, two users: one underneath, one at the
        // coverage edge. The rate-optimal choice is the close one.
        let inst = instance_with(&[(450.0, 450.0), (750.0, 450.0)], &[(1, 400.0)]);
        let rated = assign_users_max_rate(&inst, &[(0, 4)]); // cell 4 center (450,450)
        assert_eq!(rated.assignment.served, 1);
        assert_eq!(rated.assignment.user_placement[0], Some(0));
        assert_eq!(rated.assignment.user_placement[1], None);
    }

    #[test]
    fn sub_kbps_rate_differences_are_decisive() {
        // Regression: costs used to be truncated to whole kbit/s, which
        // made two users whose rates differ by < 1 kbps an arbitrary
        // tie. Place them a hair apart so their bit/s rates differ by
        // less than 1000 but the truncated kbit/s values coincide, give
        // the UAV capacity 1, and demand the strictly-better user wins.
        // Scan for a second position whose rate sits in the same
        // truncated-kbit/s bucket as the first (bucket edges shift with
        // the channel model, so a fixed offset would be brittle).
        let mut setup = None;
        let mut x = 451.0;
        while x < 600.0 {
            let inst = instance_with(&[(450.0, 450.0), (x, 450.0)], &[(1, 400.0)]);
            let atg = inst.atg();
            let radio = &inst.uavs()[0].radio;
            let hover = inst.grid().hover_position(4);
            let r0 = atg.data_rate_bps(radio, hover, inst.users()[0].pos);
            let r1 = atg.data_rate_bps(radio, hover, inst.users()[1].pos);
            let diff = (r0 - r1).abs();
            if diff > 0.0 && diff < 1_000.0 && (r0 / 1_000.0) as u64 == (r1 / 1_000.0) as u64 {
                setup = Some((inst, r0, r1));
                break;
            }
            x += 0.5;
        }
        let (inst, r0, r1) = setup.expect("some offset yields a same-bucket sub-kbps gap");
        let rated = assign_users_max_rate(&inst, &[(0, 4)]);
        assert_eq!(rated.assignment.served, 1);
        let winner = if r0 > r1 { 0 } else { 1 };
        let loser = 1 - winner;
        assert_eq!(rated.assignment.user_placement[winner], Some(0));
        assert_eq!(rated.assignment.user_placement[loser], None);
        assert_eq!(rated.total_rate_bps, r0.max(r1).round() as u64);
    }

    #[test]
    fn max_rate_beats_arbitrary_assignment_in_rate() {
        // Two users, two UAVs at different distances; the rate-optimal
        // matching must not be worse than the crosswise one.
        let inst = instance_with(&[(150.0, 150.0), (450.0, 450.0)], &[(1, 600.0), (1, 600.0)]);
        let placements = vec![(0usize, 0usize), (1usize, 4usize)];
        let rated = assign_users_max_rate(&inst, &placements);
        assert_eq!(rated.assignment.served, 2);
        // Straight matching (user 0 → cell 0's UAV, user 1 → cell 4's)
        // dominates the crosswise one in rate.
        assert_eq!(rated.assignment.user_placement[0], Some(0));
        assert_eq!(rated.assignment.user_placement[1], Some(1));
    }

    #[test]
    fn reassignment_beats_greedy_order() {
        // One central cluster coverable by both UAVs, one far user only
        // coverable by the second: optimal must route around greed.
        let inst = instance_with(
            &[(450.0, 450.0), (460.0, 460.0), (150.0, 450.0)],
            &[(1, 600.0), (2, 600.0)],
        );
        // UAV 1 (cap 2) at cell 4 reaches all three; UAV 0 (cap 1) at
        // cell 4 too would waste overlap — place UAV 0 at cell 3 (west).
        let a = assign_users(&inst, &[(1, 4), (0, 3)]);
        assert_eq!(a.served, 3);
    }
}
