//! The coverage marginal-gain oracle driving the greedy of Algorithm 2.

use crate::shard::TileView;
use crate::Instance;
use uavnet_flow::{CapacitatedMatching, UserList};
use uavnet_geom::CellIndex;
use uavnet_matroid::MarginalOracle;

/// The coverable-user list the matching should see: the instance's
/// global table, or — when a tile view is active — the view's local-id
/// remap of the same list. A free function (not a method) so the
/// returned borrow ties to the instance/view lifetimes rather than
/// `&self`, leaving `self.matching` free to be borrowed mutably.
fn coverable_list<'a>(
    instance: &'a Instance,
    view: Option<&'a TileView>,
    uav: usize,
    loc: CellIndex,
) -> UserList<'a> {
    match view {
        Some(view) => UserList::Ids(view.list(instance.radio_class(uav), loc)),
        None => instance.coverable(uav, loc),
    }
}

/// A [`MarginalOracle`] over candidate locations: the `k`-th committed
/// location receives the `k`-th UAV of the capacity-sorted fleet, and
/// the marginal gain of a location is the *exact* increase of the
/// optimal assignment (`n_{k,l} − n_{k−1}` in Algorithm 2), computed by
/// trial insertion into the incremental matching.
///
/// Because the fleet is processed in non-increasing capacity order and
/// the assignment value is submodular in the station set, earlier gain
/// evaluations upper-bound later ones — exactly the contract the lazy
/// greedy requires.
///
/// The oracle is designed for *workspace reuse*: [`reset`]
/// (CoverageOracle::reset) rolls it back to the no-UAV state while
/// keeping the matching's internal buffers allocated, so a sweep that
/// evaluates thousands of seed subsets against the same instance pays
/// for its scratch memory once. Gain queries themselves are
/// allocation-free trial insertions into the incremental matching.
///
/// # Examples
///
/// ```
/// # use uavnet_core::{CoverageOracle, Instance};
/// # use uavnet_channel::UavRadio;
/// # use uavnet_geom::{AreaSpec, GridSpec, Point2};
/// # use uavnet_matroid::MarginalOracle;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let grid = GridSpec::new(AreaSpec::new(600.0, 600.0, 500.0)?, 300.0, 300.0)?.build();
/// # let mut b = Instance::builder(grid, 600.0);
/// # b.add_user(Point2::new(150.0, 150.0), 2_000.0);
/// # b.add_uav(5, UavRadio::new(30.0, 5.0, 500.0));
/// # let instance = b.build()?;
/// let mut oracle = CoverageOracle::new(&instance);
/// assert_eq!(oracle.gain(0), 1); // the first UAV would serve the user
/// oracle.commit(0);
/// assert_eq!(oracle.served(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CoverageOracle<'a> {
    instance: &'a Instance,
    /// When set, coverable lists come from the view's local user remap
    /// and the matching is sized to the view's users.
    view: Option<&'a TileView>,
    matching: CapacitatedMatching,
    placements: Vec<(usize, CellIndex)>,
    gain_queries: u64,
}

impl<'a> CoverageOracle<'a> {
    /// Creates an oracle with no UAV committed yet.
    pub fn new(instance: &'a Instance) -> Self {
        CoverageOracle {
            instance,
            view: None,
            matching: CapacitatedMatching::new(instance.num_users()),
            placements: Vec::new(),
            gain_queries: 0,
        }
    }

    /// An oracle whose matching runs over a tile view's local user ids.
    /// The remap is a bijection on the users the view can reach, so
    /// gains and served counts equal the global oracle's for any
    /// deployment inside the view, while the matching arrays shrink
    /// from `O(instance users)` to `O(view users)`.
    pub(crate) fn with_view(instance: &'a Instance, view: &'a TileView) -> Self {
        CoverageOracle {
            instance,
            view: Some(view),
            matching: CapacitatedMatching::new(view.num_local_users()),
            placements: Vec::new(),
            gain_queries: 0,
        }
    }

    /// Rolls the oracle back to the no-UAV state, keeping the
    /// matching's scratch buffers (and the cumulative query counter) so
    /// the next run allocates nothing.
    pub fn reset(&mut self) {
        self.matching.reset();
        self.placements.clear();
    }

    /// Cumulative number of [`gain`](MarginalOracle::gain) queries
    /// served over the oracle's lifetime (*not* cleared by
    /// [`reset`](Self::reset)) — the sweep's throughput denominator.
    pub fn gain_queries(&self) -> u64 {
        self.gain_queries
    }

    /// The UAV that the next commit will deploy, or `None` when the
    /// whole fleet is placed.
    pub fn next_uav(&self) -> Option<usize> {
        self.instance
            .uavs_by_capacity()
            .get(self.placements.len())
            .copied()
    }

    /// `(uav, location)` pairs committed so far, in commit order.
    pub fn placements(&self) -> &[(usize, CellIndex)] {
        &self.placements
    }

    /// Users served by the committed placements (kept maximum after
    /// every commit).
    pub fn served(&self) -> usize {
        self.matching.matched_count()
    }

    /// [`commit`](MarginalOracle::commit) behind a `Result` boundary:
    /// deploys the next UAV of the capacity order at `loc` and returns
    /// its index, or a typed error when the fleet is exhausted or the
    /// location does not exist — the precondition panics of the
    /// [`MarginalOracle`] trait methods turned into recoverable errors
    /// for callers (fault repair, external drivers) that may over-ask.
    ///
    /// # Errors
    ///
    /// [`crate::CoreError::InvalidParameters`] on either precondition.
    pub fn try_commit(&mut self, loc: CellIndex) -> Result<usize, crate::CoreError> {
        if loc >= self.instance.num_locations() {
            return Err(crate::CoreError::InvalidParameters(format!(
                "location {loc} outside the {} candidate cells",
                self.instance.num_locations()
            )));
        }
        let Some(uav) = self.next_uav() else {
            return Err(crate::CoreError::InvalidParameters(
                "the whole fleet is already placed".into(),
            ));
        };
        let cap = self.instance.uavs()[uav].capacity;
        let users = coverable_list(self.instance, self.view, uav, loc);
        let st = self.matching.add_station_list(cap, users);
        self.matching.saturate(st);
        self.placements.push((uav, loc));
        Ok(uav)
    }
}

impl MarginalOracle for CoverageOracle<'_> {
    fn gain(&mut self, loc: usize) -> u64 {
        let uav = self
            .next_uav()
            .expect("gain queried with the whole fleet already placed");
        self.gain_queries += 1;
        let cap = self.instance.uavs()[uav].capacity;
        let users = coverable_list(self.instance, self.view, uav, loc);
        u64::from(self.matching.evaluate_station_list(cap, users))
    }

    fn commit(&mut self, loc: usize) {
        let uav = self
            .next_uav()
            .expect("commit called with the whole fleet already placed");
        let cap = self.instance.uavs()[uav].capacity;
        let users = coverable_list(self.instance, self.view, uav, loc);
        let st = self.matching.add_station_list(cap, users);
        self.matching.saturate(st);
        self.placements.push((uav, loc));
    }

    fn gain_upper_bound(&self, loc: usize) -> u64 {
        // Admissible for any matching state: a station can serve at
        // most its capacity and at most the users it can reach. Exact
        // on an empty matching, so the first pick of every subset costs
        // only the top-tie evaluations instead of a full ground scan.
        match self.next_uav() {
            Some(uav) => {
                let cap = u64::from(self.instance.uavs()[uav].capacity);
                cap.min(self.instance.coverage_count(uav, loc) as u64)
            }
            None => 0,
        }
    }

    fn bounds_carry_over(&self, prev: usize, next: usize) -> bool {
        // Capacities are non-increasing along `uavs_by_capacity`, so
        // bounds carry exactly when the radio (hence the coverable-user
        // sets) stays the same.
        let order = self.instance.uavs_by_capacity();
        match (order.get(prev), order.get(next)) {
            (Some(&a), Some(&b)) => self.instance.radio_class(a) == self.instance.radio_class(b),
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign_users;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn instance() -> Instance {
        let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), 300.0, 300.0)
            .unwrap()
            .build();
        let mut b = Instance::builder(grid, 600.0);
        // Cluster of 3 users near cell 0 and 2 near cell 8.
        b.add_user(Point2::new(140.0, 150.0), 2_000.0);
        b.add_user(Point2::new(150.0, 140.0), 2_000.0);
        b.add_user(Point2::new(160.0, 150.0), 2_000.0);
        b.add_user(Point2::new(750.0, 740.0), 2_000.0);
        b.add_user(Point2::new(740.0, 750.0), 2_000.0);
        b.add_uav(2, UavRadio::new(30.0, 5.0, 300.0));
        b.add_uav(4, UavRadio::new(30.0, 5.0, 300.0));
        b.build().unwrap()
    }

    #[test]
    fn capacity_order_drives_commits() {
        let inst = instance();
        let mut o = CoverageOracle::new(&inst);
        // First commit uses UAV 1 (capacity 4).
        assert_eq!(o.next_uav(), Some(1));
        o.commit(0);
        assert_eq!(o.next_uav(), Some(0));
        assert_eq!(o.placements(), &[(1, 0)]);
        assert_eq!(o.served(), 3);
        o.commit(8);
        assert_eq!(o.served(), 5);
        assert_eq!(o.next_uav(), None);
    }

    #[test]
    fn gain_matches_commit_effect() {
        let inst = instance();
        let mut o = CoverageOracle::new(&inst);
        let g0 = o.gain(0);
        let before = o.served();
        o.commit(0);
        assert_eq!(o.served() - before, g0 as usize);
        let g8 = o.gain(8);
        let before = o.served();
        o.commit(8);
        assert_eq!(o.served() - before, g8 as usize);
    }

    #[test]
    fn gain_is_capped_by_capacity() {
        let inst = instance();
        let mut o = CoverageOracle::new(&inst);
        // First UAV has capacity 4 ≥ 3 users near cell 0.
        assert_eq!(o.gain(0), 3);
        o.commit(0);
        // Second UAV (capacity 2) at cell 8 serves the 2 remaining.
        assert_eq!(o.gain(8), 2);
        // Re-placing at cell 0 gains nothing (all covered there).
        assert_eq!(o.gain(0), 0);
    }

    #[test]
    fn served_agrees_with_fresh_optimal_assignment() {
        let inst = instance();
        let mut o = CoverageOracle::new(&inst);
        o.commit(4); // center: big UAV covers some of both clusters?
        o.commit(0);
        let fresh = assign_users(&inst, o.placements());
        assert_eq!(o.served(), fresh.served);
    }

    #[test]
    fn try_commit_degrades_gracefully() {
        let inst = instance();
        let mut o = CoverageOracle::new(&inst);
        assert!(matches!(
            o.try_commit(999),
            Err(crate::CoreError::InvalidParameters(_))
        ));
        assert_eq!(o.try_commit(0).unwrap(), 1); // capacity order: UAV 1 first
        assert_eq!(o.try_commit(8).unwrap(), 0);
        // Fleet exhausted: typed error, not a panic.
        assert!(matches!(
            o.try_commit(1),
            Err(crate::CoreError::InvalidParameters(_))
        ));
        assert_eq!(o.served(), 5);
    }

    #[test]
    #[should_panic(expected = "fleet already placed")]
    fn commit_beyond_fleet_panics() {
        let inst = instance();
        let mut o = CoverageOracle::new(&inst);
        o.commit(0);
        o.commit(1);
        o.commit(2);
    }
}
