//! Re-deployment after user movement (§II-C).
//!
//! "The users in the disaster zone may move around… an optimal
//! deployment of the UAVs may become sub-optimal sometime later. We
//! thus need to re-deploy the UAVs… and invoke the proposed algorithm"
//! — this module provides both halves of that loop:
//!
//! * [`rescore`] — keep the fleet where it is and recompute the
//!   optimal assignment against the *new* user positions (the cheap
//!   "do nothing" option a dispatcher compares against);
//! * [`redeploy`] — run Algorithm 2 on the new instance and report the
//!   fleet movement the new plan requires.
//!
//! Both are *batch* operations: they rebuild the assignment (and, for
//! [`redeploy`], the whole plan) from scratch on every call. When user
//! movement arrives as a stream of small deltas rather than a fresh
//! snapshot, [`crate::SolverLoop`] amortizes this work by repairing
//! only the stations whose coverage tiles were dirtied.

use crate::approx::{approx_alg, ApproxConfig};
use crate::solution::{score_deployment, Solution};
use crate::{CoreError, Instance};

/// Fleet-movement summary of a re-deployment.
///
/// Launch-site convention: UAVs entering or leaving the air are **not**
/// `moved_uavs` — they are counted separately as [`launched`]
/// (RedeployStats::launched) / [`grounded`](RedeployStats::grounded),
/// because no launch site is modeled and their flight distance is
/// unknown. This keeps `moved_uavs` and `total_move_m` consistent: a
/// UAV contributes to `moved_uavs` exactly when its (possibly zero-m)
/// cell-to-cell flight is part of `total_move_m`, so
/// `moved_uavs == 0 ⇔ total_move_m == 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct RedeployStats {
    /// UAVs deployed in *both* plans whose hovering cell changed; each
    /// contributes its cell-center distance to [`total_move_m`]
    /// (RedeployStats::total_move_m).
    pub moved_uavs: usize,
    /// UAVs deployed in the new plan but not the old one (flight from
    /// the unmodeled launch site, 0 m by convention).
    pub launched: usize,
    /// UAVs deployed in the old plan but not the new one.
    pub grounded: usize,
    /// Total horizontal flight distance (m) of UAVs deployed in both
    /// plans.
    pub total_move_m: f64,
    /// Users served if the fleet had stayed put ([`rescore`] value).
    pub stay_served: usize,
}

/// Re-scores a previous deployment against a new instance: the fleet
/// stays put, only the user assignment is recomputed (optimally).
///
/// # Errors
///
/// [`CoreError::InvalidParameters`] if the previous deployment does
/// not fit the new instance (different fleet size or grid).
pub fn rescore(instance: &Instance, previous: &Solution) -> Result<Solution, CoreError> {
    let placements = previous.deployment().placements().to_vec();
    for &(uav, loc) in &placements {
        if uav >= instance.num_uavs() || loc >= instance.num_locations() {
            return Err(CoreError::InvalidParameters(format!(
                "previous placement (UAV {uav}, cell {loc}) does not fit the new instance"
            )));
        }
    }
    Ok(score_deployment(instance, placements))
}

/// Runs Algorithm 2 on the updated instance and reports how far the
/// fleet must fly relative to `previous`.
///
/// # Errors
///
/// Propagates [`approx_alg`] and [`rescore`] errors.
pub fn redeploy(
    instance: &Instance,
    previous: &Solution,
    config: &ApproxConfig,
) -> Result<(Solution, RedeployStats), CoreError> {
    let stay = rescore(instance, previous)?;
    let solution = approx_alg(instance, config)?;
    let grid = instance.grid();
    let old: std::collections::HashMap<usize, usize> = previous
        .deployment()
        .placements()
        .iter()
        .map(|&(uav, loc)| (uav, loc))
        .collect();
    let new: std::collections::HashMap<usize, usize> = solution
        .deployment()
        .placements()
        .iter()
        .map(|&(uav, loc)| (uav, loc))
        .collect();
    let mut moved = 0usize;
    let mut launched = 0usize;
    let mut grounded = 0usize;
    let mut total_m = 0.0f64;
    for uav in 0..instance.num_uavs() {
        match (old.get(&uav), new.get(&uav)) {
            (Some(&a), Some(&b)) if a != b => {
                moved += 1;
                total_m += grid.cell_center(a).distance(grid.cell_center(b));
            }
            (Some(_), None) => grounded += 1,
            (None, Some(_)) => launched += 1,
            _ => {}
        }
    }
    Ok((
        solution,
        RedeployStats {
            moved_uavs: moved,
            launched,
            grounded,
            total_move_m: total_m,
            stay_served: stay.served_users(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn grid() -> uavnet_geom::Grid {
        GridSpec::new(
            AreaSpec::new(1_500.0, 1_500.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build()
    }

    fn instance_with_users(users: &[Point2]) -> Instance {
        let mut b = Instance::builder(grid(), 450.0);
        for &p in users {
            b.add_user(p, 2_000.0);
        }
        b.add_uav(4, UavRadio::new(30.0, 5.0, 350.0));
        b.add_uav(3, UavRadio::new(30.0, 5.0, 350.0));
        b.build().unwrap()
    }

    fn cluster(at: Point2, n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| Point2::new(at.x + 8.0 * i as f64, at.y))
            .collect()
    }

    #[test]
    fn rescore_keeps_the_fleet_put() {
        let before = instance_with_users(&cluster(Point2::new(120.0, 150.0), 5));
        let sol = approx_alg(&before, &ApproxConfig::with_s(1)).unwrap();
        // Users wander to the opposite corner.
        let after = instance_with_users(&cluster(Point2::new(1_320.0, 1_350.0), 5));
        let stay = rescore(&after, &sol).unwrap();
        assert_eq!(
            stay.deployment().placements(),
            sol.deployment().placements()
        );
        // The old spot serves nobody anymore.
        assert_eq!(stay.served_users(), 0);
    }

    #[test]
    fn redeploy_chases_the_users() {
        let before = instance_with_users(&cluster(Point2::new(120.0, 150.0), 5));
        let sol = approx_alg(&before, &ApproxConfig::with_s(1)).unwrap();
        assert_eq!(sol.served_users(), 5);
        let after = instance_with_users(&cluster(Point2::new(1_320.0, 1_350.0), 5));
        let (new_sol, stats) = redeploy(&after, &sol, &ApproxConfig::with_s(1)).unwrap();
        new_sol.validate(&after).unwrap();
        assert_eq!(new_sol.served_users(), 5);
        assert_eq!(stats.stay_served, 0);
        assert!(stats.moved_uavs >= 1);
        assert!(stats.total_move_m > 1_000.0, "moved {}", stats.total_move_m);
    }

    #[test]
    fn redeploy_reports_no_movement_when_users_stay() {
        let users = cluster(Point2::new(120.0, 150.0), 5);
        let before = instance_with_users(&users);
        let sol = approx_alg(&before, &ApproxConfig::with_s(1)).unwrap();
        let (new_sol, stats) = redeploy(&before, &sol, &ApproxConfig::with_s(1)).unwrap();
        assert_eq!(new_sol.served_users(), sol.served_users());
        assert_eq!(stats.stay_served, sol.served_users());
        // The algorithm is deterministic, so the same instance yields
        // the same deployment — zero movement, zero fleet churn.
        assert_eq!(stats.moved_uavs, 0);
        assert_eq!(stats.launched, 0);
        assert_eq!(stats.grounded, 0);
        assert_eq!(stats.total_move_m, 0.0);
    }

    #[test]
    fn launched_and_grounded_do_not_inflate_moved_uavs() {
        // Old plan: both UAVs airborne. New users need only one, so
        // the new plan grounds the other — that must show up as
        // `grounded`, not as a phantom zero-distance move.
        // Two clusters one diagonal cell apart, so a connected pair of
        // UAVs can serve both (424 m between cell centers < 450 m).
        let before = instance_with_users(
            &[
                cluster(Point2::new(120.0, 150.0), 4),
                cluster(Point2::new(420.0, 450.0), 3),
            ]
            .concat(),
        );
        let sol = approx_alg(&before, &ApproxConfig::with_s(1)).unwrap();
        let airborne_before = sol.deployment().placements().len();
        assert_eq!(airborne_before, 2, "both UAVs should fly at first");
        // A single tight cluster of 4 users fits the capacity-4 UAV.
        let after = instance_with_users(&cluster(Point2::new(720.0, 750.0), 4));
        let (new_sol, stats) = redeploy(&after, &sol, &ApproxConfig::with_s(1)).unwrap();
        let airborne_after = new_sol.deployment().placements().len();
        // Fleet-churn bookkeeping must balance exactly.
        assert_eq!(
            airborne_before + stats.launched - stats.grounded,
            airborne_after
        );
        // The consistency contract: movement distance comes only from
        // UAVs counted in `moved_uavs`.
        if stats.moved_uavs == 0 {
            assert_eq!(stats.total_move_m, 0.0);
        } else {
            assert!(stats.total_move_m > 0.0);
        }
        if airborne_after < airborne_before {
            assert!(stats.grounded >= airborne_before - airborne_after);
        }
    }

    #[test]
    fn rescore_rejects_mismatched_instance() {
        let before = instance_with_users(&cluster(Point2::new(120.0, 150.0), 5));
        let sol = approx_alg(&before, &ApproxConfig::with_s(1)).unwrap();
        // A new instance with a single-UAV fleet cannot host UAV 1.
        let mut b = Instance::builder(grid(), 450.0);
        b.add_user(Point2::new(120.0, 150.0), 2_000.0);
        b.add_uav(4, UavRadio::new(30.0, 5.0, 350.0));
        let small = b.build().unwrap();
        if sol.deployment().placements().iter().any(|&(u, _)| u >= 1) {
            assert!(rescore(&small, &sol).is_err());
        }
    }
}
