//! Sharded, tile-parallel variant of the Algorithm 2 subset sweep.
//!
//! The monolithic sweep hands every worker arbitrary enumeration
//! chunks, so each worker's matching buffers are sized to the whole
//! instance — at a million users that is the working set. The sharded
//! sweep instead decomposes the hovering grid into square spatial
//! tiles (reusing the grid geometry behind
//! [`TilePartition`](uavnet_geom::TilePartition)), assigns every seed
//! subset to the tile holding its lexicographically first pool member,
//! and solves whole tiles in parallel against *tile views*: the
//! locations reachable from the tile's pool members within a hop
//! bound, plus a dense remap of just the users those locations can
//! cover. Matching then runs over `O(tile users)` ids instead of
//! `O(instance users)`.
//!
//! Stitching stays globally exact because nothing global is
//! approximated:
//!
//! * the [`ConnectivitySubstrate`] is built once over the full
//!   location graph, and every per-tile matroid, MST connection and
//!   gateway extension reads it with **global** location ids — tile
//!   boundaries never truncate relay routing;
//! * the local user remap is a bijection on the users a view can
//!   reach, and a maximum matching's value is invariant under
//!   relabeling, so served counts (and the lazy greedy's pick
//!   sequence, which only compares gains) are bit-identical to the
//!   monolithic sweep's;
//! * any subset whose ground set or relay paths still leave its view
//!   (possible via gateway extension, or with chain pruning off)
//!   reports [`SubsetOutcome::EscapedView`] *before* its first gain
//!   query against the truncated view and is re-solved against a
//!   lazily created global workspace.
//!
//! The per-tile reduce uses (served desc, combo lex asc), which equals
//! the monolithic (served desc, enumeration rank asc) order, so
//! [`approx_alg_sharded`] returns the same solution and the same
//! deterministic statistics as [`approx_alg_with_stats`] for any tile
//! size and thread count — `crate::verify::check_sharded_sweep` pins
//! exactly that.
//!
//! [`approx_alg_with_stats`]: crate::approx_alg_with_stats
//! [`SubsetOutcome::EscapedView`]: crate::approx::SubsetOutcome::EscapedView

use crate::approx::{
    approx_alg_with_stats, binomial, chain_feasible, deploy_leftovers, fallback_single_uav,
    next_combination, panic_payload_message, pool_distances, seed_pool, ApproxConfig, ApproxStats,
    PhaseNanos, SubsetOutcome, SweepProfile, SweepWorkspace,
};
use crate::solution::{score_deployment, Solution};
use crate::strategy::{chain_survivors_capped, SeedStrategyKind};
use crate::{CoreError, Instance, SegmentPlan};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use uavnet_geom::{CellIndex, TilePartition};
use uavnet_graph::{ConnectivitySubstrate, UNREACHABLE_HOPS};

/// Configuration of [`approx_alg_sharded`].
///
/// # Examples
///
/// ```
/// use uavnet_core::ShardConfig;
/// let shard = ShardConfig::new().tile_cells(4);
/// assert_eq!(shard.tile_cells_per_side(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ShardConfig {
    tile_cells: usize,
}

impl ShardConfig {
    /// The default sharding: 8×8-cell tiles.
    pub fn new() -> Self {
        ShardConfig { tile_cells: 8 }
    }

    /// Sets the tile side in grid cells; `0` collapses to a single
    /// tile covering the whole grid.
    pub fn tile_cells(mut self, cells: usize) -> Self {
        self.tile_cells = cells;
        self
    }

    /// The configured tile side in grid cells.
    pub fn tile_cells_per_side(&self) -> usize {
        self.tile_cells
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::new()
    }
}

/// A tile's restricted solving context: the locations reachable from
/// the tile's pool members within the sweep's hop bound, and a dense
/// remap of the users those locations can cover. Location ids stay
/// global everywhere; only the *user* axis is remapped, so the
/// matching kernel works on arrays sized to the tile.
#[derive(Debug)]
pub(crate) struct TileView {
    /// Global location ids in the view, ascending.
    locs: Vec<CellIndex>,
    /// Global location → dense slot in `locs`; `u32::MAX` marks a
    /// location outside the view.
    loc_slot: Vec<u32>,
    /// Users appearing in any of the view's coverage lists.
    num_local_users: usize,
    /// CSR offsets over `(class, loc slot)` entries, class-major.
    start: Vec<usize>,
    /// Local user ids of every list, ascending within each list (the
    /// global → local remap is monotone).
    lists: Vec<u32>,
}

impl TileView {
    /// Whether the global location `loc` is inside the view.
    pub(crate) fn contains_loc(&self, loc: CellIndex) -> bool {
        self.loc_slot[loc] != u32::MAX
    }

    /// The local-id coverable list for (`class`, global `loc`).
    ///
    /// # Panics
    ///
    /// Panics (in debug) if `loc` is outside the view — callers must
    /// check [`contains_loc`](Self::contains_loc) via the escape
    /// protocol first.
    pub(crate) fn list(&self, class: usize, loc: CellIndex) -> &[u32] {
        let slot = self.loc_slot[loc];
        debug_assert_ne!(slot, u32::MAX, "location {loc} outside the tile view");
        let idx = class * self.locs.len() + slot as usize;
        &self.lists[self.start[idx]..self.start[idx + 1]]
    }

    /// Number of distinct users the view's lists mention — the size of
    /// the local matching.
    pub(crate) fn num_local_users(&self) -> usize {
        self.num_local_users
    }
}

/// Per-worker reusable buffers for view construction; the epoch stamp
/// makes "have I seen this user in this tile?" an O(1) check without
/// clearing a million-entry array between tiles.
struct ViewScratch {
    stamp: Vec<u32>,
    slot: Vec<u32>,
    epoch: u32,
    users: Vec<u32>,
}

impl ViewScratch {
    fn new(num_users: usize) -> Self {
        ViewScratch {
            stamp: vec![0; num_users],
            slot: vec![0; num_users],
            epoch: 0,
            users: Vec::new(),
        }
    }
}

/// Builds the view for one tile: the reach set is every location
/// within `reach` hops of any of the tile's pool member locations
/// (per the shared substrate), and the user remap densely renumbers —
/// in ascending global order, so remapped lists stay sorted — the
/// users coverable from those locations.
fn build_view(
    instance: &Instance,
    sub: &ConnectivitySubstrate,
    members: &[CellIndex],
    reach: usize,
    scratch: &mut ViewScratch,
) -> TileView {
    let m = instance.num_locations();
    let classes = instance.num_radio_classes();
    let mut loc_slot = vec![u32::MAX; m];
    for &member in members {
        for (v, &d) in sub.hop_row(member).iter().enumerate() {
            if d != UNREACHABLE_HOPS && d as usize <= reach {
                loc_slot[v] = 0;
            }
        }
    }
    let locs: Vec<CellIndex> = (0..m).filter(|&v| loc_slot[v] == 0).collect();
    for (slot, &v) in locs.iter().enumerate() {
        loc_slot[v] = slot as u32;
    }

    scratch.epoch = scratch.epoch.checked_add(1).unwrap_or_else(|| {
        scratch.stamp.fill(0);
        1
    });
    let epoch = scratch.epoch;
    scratch.users.clear();
    let mut total_len = 0usize;
    for class in 0..classes {
        for &v in &locs {
            let list = instance.coverable_class(class, v);
            total_len += list.count();
            list.for_each_while(|u| {
                if scratch.stamp[u as usize] != epoch {
                    scratch.stamp[u as usize] = epoch;
                    scratch.users.push(u);
                }
                true
            });
        }
    }
    scratch.users.sort_unstable();
    for (i, &u) in scratch.users.iter().enumerate() {
        scratch.slot[u as usize] = i as u32;
    }

    let mut start = Vec::with_capacity(classes * locs.len() + 1);
    let mut lists = Vec::with_capacity(total_len);
    for class in 0..classes {
        for &v in &locs {
            start.push(lists.len());
            instance.coverable_class(class, v).for_each_while(|u| {
                lists.push(scratch.slot[u as usize]);
                true
            });
        }
    }
    start.push(lists.len());

    TileView {
        locs,
        loc_slot,
        num_local_users: scratch.users.len(),
        start,
        lists,
    }
}

/// [`approx_alg_with_stats`](crate::approx_alg_with_stats) over
/// spatial tiles: bit-identical solution and deterministic statistics,
/// with per-tile matchings sized to the tile's users instead of the
/// whole instance.
///
/// The fault-injection hook
/// [`ApproxConfig::inject_worker_panic_at`] keys on enumeration ranks
/// of the monolithic chunking and is ignored here.
///
/// # Errors
///
/// Same contract as [`approx_alg_with_stats`](crate::approx_alg_with_stats):
/// [`CoreError::InvalidParameters`] on a bad `s` or a tripped
/// `max_subsets` limit, [`CoreError::Substrate`] when the location
/// graph exceeds the hop matrix's node limit, [`CoreError::Sweep`]
/// when a worker panics.
///
/// # Examples
///
/// ```
/// # use uavnet_core::{approx_alg_sharded, approx_alg_with_stats, ApproxConfig, Instance, ShardConfig};
/// # use uavnet_channel::UavRadio;
/// # use uavnet_geom::{AreaSpec, GridSpec, Point2};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0)?, 300.0, 300.0)?.build();
/// # let mut b = Instance::builder(grid, 600.0);
/// # b.add_user(Point2::new(150.0, 150.0), 2_000.0);
/// # b.add_user(Point2::new(750.0, 750.0), 2_000.0);
/// # b.add_uav(5, UavRadio::new(30.0, 5.0, 400.0));
/// # b.add_uav(5, UavRadio::new(30.0, 5.0, 400.0));
/// # let instance = b.build()?;
/// let config = ApproxConfig::with_s(1).threads(2);
/// let (sharded, _) = approx_alg_sharded(&instance, &config, &ShardConfig::new().tile_cells(1))?;
/// let (monolithic, _) = approx_alg_with_stats(&instance, &config)?;
/// assert_eq!(sharded.served_users(), monolithic.served_users());
/// # Ok(())
/// # }
/// ```
pub fn approx_alg_sharded(
    instance: &Instance,
    config: &ApproxConfig,
    shard: &ShardConfig,
) -> Result<(Solution, ApproxStats), CoreError> {
    // Guided strategies evaluate orders of magnitude fewer subsets than
    // the per-tile view construction amortizes, so the sharded path is
    // a pure loss for them; delegate to the monolithic dispatch, which
    // is bit-identical by definition (it is the same strategy).
    if config.strategy() != SeedStrategyKind::Exhaustive {
        return approx_alg_with_stats(instance, config);
    }
    let s = config.s();
    let m = instance.num_locations();
    if s > m {
        return Err(CoreError::InvalidParameters(format!(
            "s = {s} exceeds the {m} candidate locations"
        )));
    }
    let plan = SegmentPlan::optimal(instance.num_uavs(), s)?;
    if crate::approx::gateway_unsatisfiable(instance) {
        return Ok(crate::approx::infeasible_gateway_result(
            instance, config, plan,
        ));
    }
    let _sweep_span = uavnet_obs::phases::SWEEP_TOTAL.span();

    let t_substrate = Instant::now();
    let substrate = ConnectivitySubstrate::build(instance.location_graph())?;
    let substrate_build_ns = t_substrate.elapsed().as_nanos() as u64;

    let pool = seed_pool(instance, config, &substrate);
    let chain_budgets: Vec<usize> = plan.p()[1..s].iter().map(|&p| p + 1).collect();
    let pool_dists = pool_distances(config, &pool, &substrate);

    // Subsets go to the tile of their lexicographically first pool
    // member; a tile's work item is the sorted list of pool *indices*
    // it owns, so per-member enumeration below walks exactly the
    // monolithic combination order restricted to first elements in the
    // tile.
    let grid = instance.grid();
    let partition = TilePartition::build(grid.cols(), grid.rows(), shard.tile_cells);
    let mut tile_members: Vec<Vec<usize>> = vec![Vec::new(); partition.num_tiles()];
    for (i, &v) in pool.iter().enumerate() {
        tile_members[partition.tile_of(v)].push(i);
    }
    let tiles: Vec<Vec<usize>> = tile_members.into_iter().filter(|t| !t.is_empty()).collect();

    // Everything a subset can touch sits within `chain_span + h_max`
    // hops of its first seed (consecutive seeds within their chain
    // budgets, ground cells within h_max of a seed), and a shortest
    // relay path between two such cells strays at most one more
    // diameter out — 3× covers it. Without chain pruning, later seeds
    // roam freely, so the view degenerates to the whole grid (the
    // escape protocol would catch violations anyway; this just avoids
    // guaranteed escapes).
    let chain_span: usize = chain_budgets.iter().sum();
    let reach = if s >= 2 && !config.is_chain_pruning() {
        usize::MAX
    } else {
        3 * (chain_span + plan.h_max())
    };

    // Pre-spawn `max_subsets` guard, counted against the same
    // chain-pruned survivor total the monolithic dispatch reports — the
    // typed error fires before any worker thread exists.
    if let Some(limit) = config.subset_limit() {
        let planned =
            chain_survivors_capped(pool.len(), s, pool_dists.as_deref(), &chain_budgets, limit);
        if planned > limit {
            return Err(CoreError::InvalidParameters(format!(
                "strategy exhaustive plans more than {limit} subset evaluations \
                 ({planned}+ survive pruning); coarsen the grid, raise \
                 max_subsets or pick a bounded strategy"
            )));
        }
    }

    let total = binomial(pool.len(), s);
    let cursor = AtomicUsize::new(0);
    let survivors = AtomicUsize::new(0);
    let chain_pruned = AtomicUsize::new(0);
    let unconnectable = AtomicUsize::new(0);
    let gain_queries = AtomicU64::new(0);
    let tiles_solved = AtomicUsize::new(0);
    let view_escapes = AtomicUsize::new(0);
    let enumeration_ns = AtomicU64::new(0);
    let greedy_ns = AtomicU64::new(0);
    let connection_ns = AtomicU64::new(0);
    let scoring_ns = AtomicU64::new(0);
    let substrate_query_ns = AtomicU64::new(0);
    let tile_view_ns = AtomicU64::new(0);
    let threads = config.num_threads().min(tiles.len().max(1));

    // (served, combo pool indices, placements, seeds) of a worker's
    // best. Combos compare lexicographically — identical to comparing
    // monolithic enumeration ranks.
    type Best = Option<(usize, Vec<usize>, Vec<(usize, CellIndex)>, Vec<CellIndex>)>;

    let worker = || -> Best {
        let mut scratch = ViewScratch::new(instance.num_users());
        let mut global_ws: Option<SweepWorkspace<'_>> = None;
        let mut profile = PhaseNanos::default();
        let mut combo: Vec<usize> = Vec::with_capacity(s);
        let mut seeds: Vec<CellIndex> = Vec::with_capacity(s);
        let mut local_best: Best = None;
        let mut queries = 0u64;
        let mut escapes = 0usize;
        let mut solved = 0usize;
        loop {
            let t = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(members) = tiles.get(t) else { break };
            let t_tile = Instant::now();
            let t_view = Instant::now();
            let member_cells: Vec<CellIndex> = members.iter().map(|&i| pool[i]).collect();
            let view = build_view(instance, &substrate, &member_cells, reach, &mut scratch);
            profile.tile_view += t_view.elapsed().as_nanos() as u64;
            let mut ws = SweepWorkspace::with_view(instance, &substrate, &view);
            for &i0 in members {
                if pool.len() - i0 < s {
                    continue;
                }
                combo.clear();
                combo.extend(i0..i0 + s);
                loop {
                    let t_enum = Instant::now();
                    let keep = match &pool_dists {
                        Some(d) => chain_feasible(d, &combo, &chain_budgets),
                        None => true,
                    };
                    profile.enumeration += t_enum.elapsed().as_nanos() as u64;
                    if keep {
                        survivors.fetch_add(1, Ordering::Relaxed);
                        seeds.clear();
                        seeds.extend(combo.iter().map(|&i| pool[i]));
                        let before = ws.gain_queries();
                        let mut outcome = ws.solve_subset(&plan, &seeds, &mut profile);
                        let mut winner: &SweepWorkspace<'_> = &ws;
                        if outcome == SubsetOutcome::EscapedView {
                            // The tile view cannot score this subset;
                            // any queries it burnt before noticing are
                            // discarded so totals match the monolithic
                            // sweep, where only the deciding (global)
                            // evaluation exists.
                            escapes += 1;
                            let gws = global_ws.get_or_insert_with(|| {
                                SweepWorkspace::with_substrate(instance, &substrate)
                            });
                            let gbefore = gws.gain_queries();
                            outcome = gws.solve_subset(&plan, &seeds, &mut profile);
                            queries += gws.gain_queries() - gbefore;
                            winner = &*gws;
                        } else {
                            queries += ws.gain_queries() - before;
                        }
                        match outcome {
                            SubsetOutcome::Served(served) => {
                                let better = match &local_best {
                                    None => true,
                                    Some((bs, bc, _, _)) => {
                                        served > *bs || (served == *bs && combo < *bc)
                                    }
                                };
                                if better {
                                    local_best = Some((
                                        served,
                                        combo.clone(),
                                        winner.placements().to_vec(),
                                        seeds.clone(),
                                    ));
                                }
                            }
                            SubsetOutcome::Unconnectable => {
                                unconnectable.fetch_add(1, Ordering::Relaxed);
                            }
                            SubsetOutcome::EscapedView => {
                                unreachable!("a global workspace has no view to escape")
                            }
                        }
                    } else {
                        chain_pruned.fetch_add(1, Ordering::Relaxed);
                    }
                    if !next_combination(&mut combo, pool.len()) || combo[0] != i0 {
                        break;
                    }
                }
            }
            solved += 1;
            uavnet_obs::hists::TILE_SOLVE.record_ns(t_tile.elapsed().as_nanos() as u64);
        }
        gain_queries.fetch_add(queries, Ordering::Relaxed);
        tiles_solved.fetch_add(solved, Ordering::Relaxed);
        view_escapes.fetch_add(escapes, Ordering::Relaxed);
        enumeration_ns.fetch_add(profile.enumeration, Ordering::Relaxed);
        greedy_ns.fetch_add(profile.greedy, Ordering::Relaxed);
        connection_ns.fetch_add(profile.connection, Ordering::Relaxed);
        scoring_ns.fetch_add(profile.scoring, Ordering::Relaxed);
        substrate_query_ns.fetch_add(profile.substrate_query, Ordering::Relaxed);
        tile_view_ns.fetch_add(profile.tile_view, Ordering::Relaxed);
        local_best
    };

    let joined: Vec<Result<Best, Box<dyn std::any::Any + Send>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut bests: Vec<Best> = Vec::with_capacity(joined.len());
    let mut worker_panic: Option<String> = None;
    for result in joined {
        match result {
            Ok(best) => bests.push(best),
            Err(payload) => {
                worker_panic.get_or_insert_with(|| panic_payload_message(&*payload));
            }
        }
    }
    if let Some(message) = worker_panic {
        return Err(CoreError::Sweep(message));
    }

    let mut best: Best = None;
    for cand in bests.into_iter().flatten() {
        let better = match &best {
            None => true,
            Some((bs, bc, _, _)) => cand.0 > *bs || (cand.0 == *bs && cand.1 < *bc),
        };
        if better {
            best = Some(cand);
        }
    }

    let stats = ApproxStats {
        plan,
        seed_pool_size: pool.len(),
        subsets_enumerated: total as usize,
        subsets_chain_pruned: chain_pruned.load(Ordering::Relaxed),
        subsets_bound_pruned: 0,
        subsets_evaluated: survivors.load(Ordering::Relaxed),
        subsets_unconnectable: unconnectable.load(Ordering::Relaxed),
        best_seeds: best.as_ref().map(|(_, _, _, seeds)| seeds.clone()),
        gain_queries: gain_queries.load(Ordering::Relaxed),
        tiles_solved: tiles_solved.load(Ordering::Relaxed),
        view_escapes: view_escapes.load(Ordering::Relaxed),
        strategy: "exhaustive",
        profile: SweepProfile {
            enumeration_ns: enumeration_ns.load(Ordering::Relaxed),
            greedy_ns: greedy_ns.load(Ordering::Relaxed),
            connection_ns: connection_ns.load(Ordering::Relaxed),
            scoring_ns: scoring_ns.load(Ordering::Relaxed),
            subset_buffer_peak_bytes: threads * s * 2 * std::mem::size_of::<usize>(),
            substrate_build_ns,
            substrate_query_ns: substrate_query_ns.load(Ordering::Relaxed),
            tile_view_ns: tile_view_ns.load(Ordering::Relaxed),
        },
    };

    let mut placements = match best {
        Some((_, _, placements, _)) => placements,
        None => fallback_single_uav(instance),
    };
    if config.is_leftover_deployment() {
        deploy_leftovers(instance, &mut placements);
    }
    let solution = score_deployment(instance, placements);
    #[cfg(feature = "debug-validate")]
    solution
        .validate(instance)
        .expect("debug-validate: sharded sweep produced a solution its own validator rejects");
    crate::obs::record_sweep(config, &stats, &solution);
    Ok((solution, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_alg_with_stats;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn clustered_instance() -> Instance {
        let grid = GridSpec::new(
            AreaSpec::new(2_400.0, 2_400.0, 500.0).unwrap(),
            300.0,
            300.0,
        )
        .unwrap()
        .build();
        let mut b = Instance::builder(grid, 450.0);
        for i in 0..8 {
            b.add_user(Point2::new(150.0 + 20.0 * i as f64, 180.0), 2_000.0);
        }
        for i in 0..7 {
            b.add_user(Point2::new(2_150.0 + 10.0 * i as f64, 2_250.0), 2_000.0);
        }
        for i in 0..5 {
            b.add_user(Point2::new(1_250.0, 400.0 + 30.0 * i as f64), 2_000.0);
        }
        for cap in [5u32, 4, 3, 3, 2, 2] {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, 400.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn sharded_matches_monolithic_across_tile_sizes() {
        let inst = clustered_instance();
        for s in [1usize, 2] {
            let config = ApproxConfig::with_s(s).threads(3);
            let (mono, mono_stats) = approx_alg_with_stats(&inst, &config).unwrap();
            for tile_cells in [1usize, 2, 3, 8, 0] {
                let shard = ShardConfig::new().tile_cells(tile_cells);
                let (sol, stats) = approx_alg_sharded(&inst, &config, &shard).unwrap();
                assert_eq!(sol.served_users(), mono.served_users(), "tile {tile_cells}");
                assert_eq!(sol.deployment(), mono.deployment(), "tile {tile_cells}");
                assert_eq!(stats.best_seeds, mono_stats.best_seeds);
                assert_eq!(stats.gain_queries, mono_stats.gain_queries);
                assert_eq!(stats.subsets_enumerated, mono_stats.subsets_enumerated);
                assert_eq!(stats.subsets_chain_pruned, mono_stats.subsets_chain_pruned);
                assert_eq!(stats.subsets_evaluated, mono_stats.subsets_evaluated);
                assert_eq!(
                    stats.subsets_unconnectable,
                    mono_stats.subsets_unconnectable
                );
                assert!(stats.tiles_solved >= 1);
            }
        }
    }

    #[test]
    fn sharded_matches_monolithic_without_chain_pruning() {
        let inst = clustered_instance();
        let config = ApproxConfig::with_s(2).threads(2).prune_chain(false);
        let (mono, mono_stats) = approx_alg_with_stats(&inst, &config).unwrap();
        let (sol, stats) =
            approx_alg_sharded(&inst, &config, &ShardConfig::new().tile_cells(2)).unwrap();
        assert_eq!(sol.served_users(), mono.served_users());
        assert_eq!(sol.deployment(), mono.deployment());
        assert_eq!(stats.gain_queries, mono_stats.gain_queries);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let inst = clustered_instance();
        let shard = ShardConfig::new().tile_cells(2);
        let base = approx_alg_sharded(&inst, &ApproxConfig::with_s(1).threads(1), &shard).unwrap();
        for threads in [2usize, 5] {
            let other =
                approx_alg_sharded(&inst, &ApproxConfig::with_s(1).threads(threads), &shard)
                    .unwrap();
            assert_eq!(other.0.deployment(), base.0.deployment());
            assert_eq!(other.1.gain_queries, base.1.gain_queries);
        }
    }

    #[test]
    fn max_subsets_limit_still_trips() {
        let inst = clustered_instance();
        let config = ApproxConfig::with_s(1).max_subsets(2);
        let err = approx_alg_sharded(&inst, &config, &ShardConfig::new()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameters(_)));
    }
}
