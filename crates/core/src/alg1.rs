//! Algorithm 1: the optimal segment budget `(L_max, p*_1 … p*_{s+1})`.
//!
//! Given `K` UAVs and the seed count `s`, Algorithm 1 finds the largest
//! subpath length `L ≤ K` such that the relay bound
//! `g(L, p_1 … p_{s+1})` (Eq. 2) stays within the fleet, choosing the
//! segment sizes that minimize `g`. The paper shows the minimizing
//! sizes are balanced: middle segments differ by at most one, and the
//! two outer segments differ by at most one, which reduces the search
//! to `O(s·L)` combinations per guess of `L`.

use crate::segments::{g_upper_bound, h_max, q_budgets};
use crate::CoreError;
use serde::{Deserialize, Serialize};

/// The output of Algorithm 1, consumed by Algorithm 2.
///
/// # Examples
///
/// ```
/// use uavnet_core::SegmentPlan;
/// # fn main() -> Result<(), uavnet_core::CoreError> {
/// let plan = SegmentPlan::optimal(20, 3)?;
/// assert!(plan.l_max() >= 3 && plan.l_max() <= 20);
/// assert!(plan.g() <= 20);
/// assert_eq!(plan.p().len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentPlan {
    k: usize,
    s: usize,
    l_max: usize,
    p: Vec<usize>,
    g: usize,
}

impl SegmentPlan {
    /// Runs Algorithm 1 for `k` UAVs and seed count `s`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameters`] if `s == 0` or `s > k`.
    pub fn optimal(k: usize, s: usize) -> Result<Self, CoreError> {
        if s == 0 {
            return Err(CoreError::InvalidParameters("s must be positive".into()));
        }
        if s > k {
            return Err(CoreError::InvalidParameters(format!(
                "s = {s} exceeds the fleet size K = {k}"
            )));
        }
        uavnet_obs::counters::ALG1_PLANS.add(1);
        let _span = uavnet_obs::phases::ALG1_PLAN.span();
        // Binary search the largest feasible L in [s, k]: the minimal
        // relay bound is non-decreasing in L, and L = s is always
        // feasible (g = s ≤ k).
        let (mut lo, mut hi) = (s, k + 1); // invariant: lo feasible, hi infeasible
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            let (g, _) = Self::min_g_for(mid, s);
            if g <= k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (g, p) = Self::min_g_for(lo, s);
        debug_assert!(g <= k);
        #[cfg(feature = "debug-validate")]
        crate::verify::check_relay_bound(&p)
            .expect("debug-validate: Lemma 2 closed form diverged from its Q-sum derivation");
        Ok(SegmentPlan {
            k,
            s,
            l_max: lo,
            p,
            g,
        })
    }

    /// The minimal relay bound over balanced segment assignments for a
    /// fixed subpath length `l`, with the minimizing sizes.
    ///
    /// # Panics
    ///
    /// Panics if `l < s` or `s == 0`.
    pub fn min_g_for(l: usize, s: usize) -> (usize, Vec<usize>) {
        assert!(s >= 1, "s must be positive");
        assert!(l >= s, "L = {l} must be at least s = {s}");
        let d = l - s; // nodes to distribute over s + 1 segments
        let mut best: Option<(usize, Vec<usize>)> = None;
        if s == 1 {
            // No middle segments: split D between the two outer ones.
            let p = vec![d / 2, d.div_ceil(2)];
            return (g_upper_bound(&p), p);
        }
        // Middle segments take value `p` or `p + 1` (j of them larger).
        for p_base in 0..=d {
            for j in 0..=(s - 2) {
                let middle_total = (s - 1) * p_base + j;
                if middle_total > d {
                    continue;
                }
                let rest = d - middle_total;
                let mut p = Vec::with_capacity(s + 1);
                p.push(rest / 2);
                for i in 0..s - 1 {
                    p.push(if i < j { p_base + 1 } else { p_base });
                }
                p.push(rest.div_ceil(2));
                let g = g_upper_bound(&p);
                if best.as_ref().is_none_or(|(bg, _)| g < *bg) {
                    best = Some((g, p));
                }
            }
        }
        // INVARIANT (unwrap audit): the loop always visits p_base = 0,
        // j = 0, whose middle_total = (s − 1)·0 + 0 = 0 ≤ d for every
        // d ≥ 0, so `best` is set on that iteration at the latest. Not
        // reachable from any caller input: `s ≥ 1` and `l ≥ s` are
        // asserted above (documented preconditions), and the pipeline
        // only calls this through `optimal`, which validates both.
        best.expect("p_base = 0, j = 0 is always admissible")
    }

    /// The fleet size `K` this plan was computed for.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The seed count `s`.
    #[inline]
    pub fn s(&self) -> usize {
        self.s
    }

    /// The maximal feasible subpath length `L_max`.
    #[inline]
    pub fn l_max(&self) -> usize {
        self.l_max
    }

    /// The optimal segment sizes `p*_1 … p*_{s+1}`.
    #[inline]
    pub fn p(&self) -> &[usize] {
        &self.p
    }

    /// The relay bound `g(L_max, p*)` — number of UAVs that suffice to
    /// connect any `M2`-independent set (≤ K by construction).
    #[inline]
    pub fn g(&self) -> usize {
        self.g
    }

    /// The hop budgets `Q_0 … Q_{h_max}` of Eq. 1 for this plan.
    pub fn budgets(&self) -> Vec<usize> {
        q_budgets(self.l_max, &self.p)
    }

    /// The deepest admissible hop distance `h_max`.
    pub fn h_max(&self) -> usize {
        h_max(&self.p)
    }

    /// The split count `Δ = ⌈(2K − 2) / L_max⌉` from the analysis.
    pub fn delta(&self) -> usize {
        if self.k <= 1 {
            return 1;
        }
        (2 * self.k - 2).div_ceil(self.l_max).max(1)
    }

    /// The proven approximation ratio `1 / (3Δ)` (Theorem 1).
    pub fn approx_ratio(&self) -> f64 {
        1.0 / (3.0 * self.delta() as f64)
    }

    /// Theorem 1's closed-form lower bound on `L_max`:
    /// `L_1 = ⌊√(4sK + 4s² − 8.5s)⌋ − 2s + 2`.
    pub fn theoretical_l1(k: usize, s: usize) -> isize {
        let inner = 4.0 * s as f64 * k as f64 + 4.0 * (s * s) as f64 - 8.5 * s as f64;
        inner.max(0.0).sqrt().floor() as isize - 2 * s as isize + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: minimal g over *all* compositions of
    /// `l − s` into `s + 1` parts.
    fn min_g_bruteforce(l: usize, s: usize) -> usize {
        fn rec(remaining: usize, parts_left: usize, current: &mut Vec<usize>, best: &mut usize) {
            if parts_left == 1 {
                current.push(remaining);
                *best = (*best).min(g_upper_bound(current));
                current.pop();
                return;
            }
            for x in 0..=remaining {
                current.push(x);
                rec(remaining - x, parts_left - 1, current, best);
                current.pop();
            }
        }
        let mut best = usize::MAX;
        rec(l - s, s + 1, &mut Vec::new(), &mut best);
        best
    }

    #[test]
    fn balanced_search_matches_bruteforce() {
        for s in 1..=4usize {
            for l in s..=s + 8 {
                let (g, p) = SegmentPlan::min_g_for(l, s);
                assert_eq!(p.len(), s + 1);
                assert_eq!(p.iter().sum::<usize>(), l - s, "s={s} l={l}");
                assert_eq!(g, min_g_bruteforce(l, s), "s={s} l={l}");
            }
        }
    }

    #[test]
    fn min_g_monotone_in_l() {
        for s in 1..=4usize {
            let mut last = 0;
            for l in s..=s + 20 {
                let (g, _) = SegmentPlan::min_g_for(l, s);
                assert!(g >= last, "s={s} l={l}");
                last = g;
            }
        }
    }

    #[test]
    fn optimal_is_maximal_feasible() {
        for s in 1..=4usize {
            for k in s..=30 {
                let plan = SegmentPlan::optimal(k, s).unwrap();
                assert!(plan.g() <= k, "s={s} k={k}");
                // The next larger L must be infeasible (or L = K).
                if plan.l_max() < k {
                    let (g_next, _) = SegmentPlan::min_g_for(plan.l_max() + 1, s);
                    assert!(g_next > k, "s={s} k={k}: L_max not maximal");
                }
                // Linear-scan cross-check of the binary search.
                let linear = (s..=k)
                    .take_while(|&l| SegmentPlan::min_g_for(l, s).0 <= k)
                    .last()
                    .unwrap();
                assert_eq!(plan.l_max(), linear, "s={s} k={k}");
            }
        }
    }

    #[test]
    fn degenerate_k_equals_s() {
        let plan = SegmentPlan::optimal(3, 3).unwrap();
        assert_eq!(plan.l_max(), 3);
        assert_eq!(plan.p(), &[0, 0, 0, 0]);
        assert_eq!(plan.g(), 3);
        assert_eq!(plan.budgets(), vec![3]);
        assert_eq!(plan.h_max(), 0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(SegmentPlan::optimal(5, 0).is_err());
        assert!(SegmentPlan::optimal(2, 3).is_err());
    }

    #[test]
    fn paper_scale_k20_s3() {
        let plan = SegmentPlan::optimal(20, 3).unwrap();
        // With K = 20, s = 3 the plan must hold a two-digit subpath.
        assert!(plan.l_max() >= 9, "L_max = {}", plan.l_max());
        assert!(plan.g() <= 20);
        assert_eq!(plan.s(), 3);
        assert_eq!(plan.k(), 20);
        let q = plan.budgets();
        assert_eq!(q[0], plan.l_max());
        // Δ and the ratio are consistent.
        assert_eq!(plan.delta(), (2 * 20 - 2usize).div_ceil(plan.l_max()));
        assert!((plan.approx_ratio() - 1.0 / (3.0 * plan.delta() as f64)).abs() < 1e-12);
    }

    #[test]
    fn l_max_grows_with_s_and_k() {
        // Larger s ⇒ more seeds ⇒ longer feasible subpaths; larger K
        // likewise.
        let l = |k, s| SegmentPlan::optimal(k, s).unwrap().l_max();
        assert!(l(20, 2) >= l(20, 1));
        assert!(l(20, 3) >= l(20, 2));
        assert!(l(40, 3) >= l(20, 3));
    }

    #[test]
    fn theoretical_l1_is_a_lower_bound() {
        for s in 1..=4usize {
            for k in (s.max(2))..=60 {
                let plan = SegmentPlan::optimal(k, s).unwrap();
                let l1 = SegmentPlan::theoretical_l1(k, s);
                assert!(
                    plan.l_max() as isize >= l1,
                    "s={s} k={k}: L_max={} < L1={l1}",
                    plan.l_max()
                );
            }
        }
    }

    #[test]
    fn ratio_improves_with_s() {
        let r = |s| SegmentPlan::optimal(20, s).unwrap().approx_ratio();
        assert!(r(3) >= r(1));
        assert!(r(4) >= r(2));
    }

    #[test]
    fn serde_roundtrip_shape() {
        fn check<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        check::<SegmentPlan>();
    }
}
