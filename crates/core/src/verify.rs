//! Differential verification & fault-injection harness.
//!
//! The repo carries several *pairs* of independent implementations of
//! the same quantity — the incremental matching vs the literal Lemma 1
//! max-flow, the streaming vs the materialized subset sweep, the
//! closed-form relay bound vs its `Σ Q_h` derivation, and the
//! approximation vs the brute-force optimum. This module turns each
//! pair into an executable **differential oracle**: run both sides,
//! compare, and report any divergence as a typed [`VerifyError`]
//! instead of silently trusting one implementation.
//!
//! The second half is a **fault-injection** harness
//! ([`inject_and_repair`]): take a solved [`Solution`], kill UAVs,
//! sever inter-UAV links or surge the user population, then drive the
//! repair path (largest surviving component → relay reconnection via
//! [`connect_via_mst`] → gateway re-extension → re-assignment) and
//! report how gracefully coverage degraded as a
//! [`DegradationReport`]. Every failure mode is a typed
//! [`CoreError`] — repair never panics on a representable fault.
//!
//! The cheap oracle checks are additionally wired into the hot paths
//! behind the `debug-validate` cargo feature (see
//! [`crate::solution::score_deployment`], [`connect_via_mst`] and the
//! solver crates), so any CI run with that feature cross-checks every
//! deployment the algorithms score.

use crate::approx::{approx_alg, approx_alg_materialized, approx_alg_with_stats, ApproxConfig};
use crate::assign::{assign_users, assign_users_max_flow};
use crate::connecting::{
    connect_via_mst, connect_via_substrate, extend_to_gateway, extend_to_gateway_substrate,
};
use crate::exact::exact_optimum;
use crate::incremental::{plan_repair, Delta, LoopConfig, SolverLoop};
use crate::model::User;
use crate::solution::{try_score_deployment, Solution};
use crate::strategy::{SeedStrategyKind, DEFAULT_BEAM_WIDTH};
use crate::{CoreError, Instance, SegmentPlan};
use std::error::Error;
use std::fmt;
use uavnet_geom::CellIndex;
use uavnet_graph::{bfs_hops, ConnectivitySubstrate, UNREACHABLE_HOPS};

/// A divergence found by one of the differential oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The incremental matching and the Lemma 1 max-flow disagree on
    /// the optimal served-user count for the same deployment.
    AssignmentMismatch {
        /// Served count from [`assign_users`].
        matching: usize,
        /// Served count from [`assign_users_max_flow`].
        max_flow: usize,
    },
    /// An assignment's per-station loads do not sum to its served
    /// count (an internally inconsistent result).
    LoadSumMismatch {
        /// Which oracle produced it (`"matching"` / `"max-flow"`).
        oracle: &'static str,
        /// Sum of the per-placement loads.
        load_sum: usize,
        /// Claimed served count.
        served: usize,
    },
    /// The streaming and the materialized subset sweep disagree.
    SweepMismatch {
        /// Which deterministic field diverged.
        field: &'static str,
        /// Value from the streaming sweep.
        streaming: String,
        /// Value from the materialized reference.
        materialized: String,
    },
    /// The closed-form relay bound `g` (Eq. 2) disagrees with its
    /// unsimplified `Σ Q_h` derivation (Lemma 2, inequality 4).
    RelayBoundMismatch {
        /// The segment sizes `p_1 … p_{s+1}`.
        p: Vec<usize>,
        /// [`crate::g_upper_bound`] value.
        closed_form: usize,
        /// [`crate::g_via_q_sums`] value.
        q_sum: usize,
    },
    /// The substrate-backed connection path (precomputed hop rows for
    /// every distance decision) diverged from the brute-force per-call
    /// BFS on the same node set.
    ConnectionMismatch {
        /// Which stage diverged (`"hops"`, `"connection"`,
        /// `"gateway_extension"`).
        stage: &'static str,
        /// The node set the two implementations were given.
        nodes: Vec<usize>,
        /// Result from the substrate-backed implementation.
        substrate: String,
        /// Result from the brute-force BFS implementation.
        brute_force: String,
    },
    /// The connectivity substrate could not be built for the
    /// instance's location graph, so the substrate-vs-BFS oracle has
    /// nothing to compare against.
    Substrate(uavnet_graph::SubstrateError),
    /// The tile-sharded sweep diverged from the monolithic one on a
    /// deterministic field.
    ShardMismatch {
        /// Which deterministic field diverged.
        field: &'static str,
        /// Tile side (grid cells) of the sharded run.
        tile_cells: usize,
        /// Value from the sharded sweep.
        sharded: String,
        /// Value from the monolithic sweep.
        monolithic: String,
    },
    /// The incremental solver loop diverged from a cold rescore of
    /// the same placements on the mutated instance (oracle 7).
    IncrementalMismatch {
        /// Which quantity diverged (`"served_users"`).
        field: &'static str,
        /// Value maintained incrementally by the solver loop.
        incremental: String,
        /// Value from the cold rescore.
        cold: String,
    },
    /// The approximation fell below the proven Theorem 1 floor
    /// `served · 3Δ ≥ OPT` (or exceeded the optimum).
    RatioViolated {
        /// Users served by the approximation.
        served: usize,
        /// The brute-force optimum.
        opt: usize,
        /// The plan's `Δ`.
        delta: usize,
    },
    /// A value-preserving guided seed strategy diverged from exhaustive
    /// enumeration on a field the two must agree on bit-for-bit
    /// (oracle 8).
    StrategyMismatch {
        /// Which deterministic field diverged.
        field: &'static str,
        /// The guided strategy's stable name.
        strategy: &'static str,
        /// Value from the guided strategy.
        guided: String,
        /// Value from exhaustive enumeration.
        exhaustive: String,
    },
    /// A non-value-preserving seed strategy's served count fell below
    /// the committed quality floor relative to full enumeration
    /// (oracle 8).
    StrategyQualityViolated {
        /// The guided strategy's stable name.
        strategy: &'static str,
        /// Users served by the guided strategy.
        served: usize,
        /// Users served by exhaustive enumeration.
        exhaustive: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::AssignmentMismatch { matching, max_flow } => write!(
                f,
                "matching served {matching} users but max-flow served {max_flow}"
            ),
            VerifyError::LoadSumMismatch {
                oracle,
                load_sum,
                served,
            } => write!(
                f,
                "{oracle} assignment loads sum to {load_sum} but claims {served} served"
            ),
            VerifyError::SweepMismatch {
                field,
                streaming,
                materialized,
            } => write!(
                f,
                "subset sweep diverged on {field}: streaming {streaming} vs materialized {materialized}"
            ),
            VerifyError::RelayBoundMismatch { p, closed_form, q_sum } => write!(
                f,
                "relay bound for p={p:?}: closed form {closed_form} vs Q-sum {q_sum}"
            ),
            VerifyError::ConnectionMismatch {
                stage,
                nodes,
                substrate,
                brute_force,
            } => write!(
                f,
                "substrate connection diverged at {stage} for nodes {nodes:?}: \
                 substrate {substrate} vs brute-force {brute_force}"
            ),
            VerifyError::Substrate(e) => {
                write!(f, "connection oracle could not build its substrate: {e}")
            }
            VerifyError::ShardMismatch {
                field,
                tile_cells,
                sharded,
                monolithic,
            } => write!(
                f,
                "sharded sweep ({tile_cells}-cell tiles) diverged on {field}: \
                 sharded {sharded} vs monolithic {monolithic}"
            ),
            VerifyError::IncrementalMismatch {
                field,
                incremental,
                cold,
            } => write!(
                f,
                "incremental solver diverged on {field}: incremental {incremental} vs cold {cold}"
            ),
            VerifyError::RatioViolated { served, opt, delta } => write!(
                f,
                "served {served} violates the 1/(3Δ) guarantee against opt {opt} (Δ = {delta})"
            ),
            VerifyError::StrategyMismatch {
                field,
                strategy,
                guided,
                exhaustive,
            } => write!(
                f,
                "{strategy} strategy diverged on {field}: \
                 guided {guided} vs exhaustive {exhaustive}"
            ),
            VerifyError::StrategyQualityViolated {
                strategy,
                served,
                exhaustive,
            } => write!(
                f,
                "{strategy} strategy served {served} users, below the committed \
                 {STRATEGY_QUALITY_NUM}·(served+1) ≥ {STRATEGY_QUALITY_DEN}·exhaustive \
                 floor against exhaustive's {exhaustive}"
            ),
        }
    }
}

impl Error for VerifyError {}

/// Differential oracle 1 — Lemma 1: the incremental capacitated
/// matching ([`assign_users`]) and the literal max-flow construction
/// ([`assign_users_max_flow`]) must agree on the optimal served count,
/// and each must be internally consistent (loads summing to the
/// served count).
///
/// Individual user→UAV arcs may legitimately differ (multiple optima);
/// only the optimum value and the bookkeeping invariants are compared.
///
/// # Errors
///
/// [`VerifyError::AssignmentMismatch`] / [`VerifyError::LoadSumMismatch`].
///
/// # Panics
///
/// Panics if a placement references an out-of-range UAV or location
/// (same contract as the two assignment functions).
pub fn check_assignment_oracles(
    instance: &Instance,
    placements: &[(usize, CellIndex)],
) -> Result<(), VerifyError> {
    let a = assign_users(instance, placements);
    let b = assign_users_max_flow(instance, placements);
    let sum_a: usize = a.loads.iter().map(|&l| l as usize).sum();
    let sum_b: usize = b.loads.iter().map(|&l| l as usize).sum();
    if sum_a != a.served {
        return Err(VerifyError::LoadSumMismatch {
            oracle: "matching",
            load_sum: sum_a,
            served: a.served,
        });
    }
    if sum_b != b.served {
        return Err(VerifyError::LoadSumMismatch {
            oracle: "max-flow",
            load_sum: sum_b,
            served: b.served,
        });
    }
    if a.served != b.served {
        return Err(VerifyError::AssignmentMismatch {
            matching: a.served,
            max_flow: b.served,
        });
    }
    Ok(())
}

/// Differential oracle 2 — the streaming subset sweep against the
/// materialized sequential reference: solutions and every
/// timing-independent statistic must be bit-for-bit identical.
///
/// # Errors
///
/// [`VerifyError::SweepMismatch`] naming the first diverging field;
/// propagates solver errors ([`CoreError`]) unchanged.
pub fn check_sweep_oracles(instance: &Instance, config: &ApproxConfig) -> Result<(), CoreError> {
    let (sol, stats) = approx_alg_with_stats(instance, config)?;
    let (ref_sol, ref_stats) = approx_alg_materialized(instance, config)?;
    let mismatch = |field: &'static str, s: String, m: String| {
        Err(CoreError::Verification(VerifyError::SweepMismatch {
            field,
            streaming: s,
            materialized: m,
        }))
    };
    if sol.deployment().placements() != ref_sol.deployment().placements() {
        return mismatch(
            "placements",
            format!("{:?}", sol.deployment().placements()),
            format!("{:?}", ref_sol.deployment().placements()),
        );
    }
    if sol.served_users() != ref_sol.served_users() {
        return mismatch(
            "served",
            sol.served_users().to_string(),
            ref_sol.served_users().to_string(),
        );
    }
    for (field, s, m) in [
        (
            "subsets_enumerated",
            stats.subsets_enumerated,
            ref_stats.subsets_enumerated,
        ),
        (
            "subsets_chain_pruned",
            stats.subsets_chain_pruned,
            ref_stats.subsets_chain_pruned,
        ),
        (
            "subsets_evaluated",
            stats.subsets_evaluated,
            ref_stats.subsets_evaluated,
        ),
        (
            "subsets_unconnectable",
            stats.subsets_unconnectable,
            ref_stats.subsets_unconnectable,
        ),
        (
            "gain_queries",
            stats.gain_queries as usize,
            ref_stats.gain_queries as usize,
        ),
    ] {
        if s != m {
            return mismatch(field, s.to_string(), m.to_string());
        }
    }
    if stats.best_seeds != ref_stats.best_seeds {
        return mismatch(
            "best_seeds",
            format!("{:?}", stats.best_seeds),
            format!("{:?}", ref_stats.best_seeds),
        );
    }
    Ok(())
}

/// Differential oracle 6 — the tile-sharded sweep
/// ([`crate::approx_alg_sharded`]) against the monolithic one, across
/// several tile geometries and a single-threaded run: deployment,
/// served users and every deterministic statistic must be bit-for-bit
/// identical regardless of how the grid is sharded.
///
/// # Errors
///
/// [`VerifyError::ShardMismatch`] naming the first diverging field;
/// propagates solver errors ([`CoreError`]) unchanged.
pub fn check_sharded_sweep(instance: &Instance, config: &ApproxConfig) -> Result<(), CoreError> {
    let (mono, mono_stats) = approx_alg_with_stats(instance, config)?;
    let mut runs: Vec<(usize, ApproxConfig)> = [1usize, 4, 0]
        .iter()
        .map(|&tc| (tc, config.clone()))
        .collect();
    runs.push((4, config.clone().threads(1)));
    for (tile_cells, run_config) in runs {
        let shard = crate::shard::ShardConfig::new().tile_cells(tile_cells);
        let (sol, stats) = crate::shard::approx_alg_sharded(instance, &run_config, &shard)?;
        let mismatch = |field: &'static str, s: String, m: String| {
            Err(CoreError::Verification(VerifyError::ShardMismatch {
                field,
                tile_cells,
                sharded: s,
                monolithic: m,
            }))
        };
        if sol.deployment().placements() != mono.deployment().placements() {
            return mismatch(
                "placements",
                format!("{:?}", sol.deployment().placements()),
                format!("{:?}", mono.deployment().placements()),
            );
        }
        if sol.served_users() != mono.served_users() {
            return mismatch(
                "served",
                sol.served_users().to_string(),
                mono.served_users().to_string(),
            );
        }
        for (field, s, m) in [
            (
                "subsets_enumerated",
                stats.subsets_enumerated,
                mono_stats.subsets_enumerated,
            ),
            (
                "subsets_chain_pruned",
                stats.subsets_chain_pruned,
                mono_stats.subsets_chain_pruned,
            ),
            (
                "subsets_evaluated",
                stats.subsets_evaluated,
                mono_stats.subsets_evaluated,
            ),
            (
                "subsets_unconnectable",
                stats.subsets_unconnectable,
                mono_stats.subsets_unconnectable,
            ),
            (
                "gain_queries",
                stats.gain_queries as usize,
                mono_stats.gain_queries as usize,
            ),
        ] {
            if s != m {
                return mismatch(field, s.to_string(), m.to_string());
            }
        }
        if stats.best_seeds != mono_stats.best_seeds {
            return mismatch(
                "best_seeds",
                format!("{:?}", stats.best_seeds),
                format!("{:?}", mono_stats.best_seeds),
            );
        }
    }
    Ok(())
}

/// Numerator of the committed quality floor for non-value-preserving
/// seed strategies: `NUM · (served + 1) ≥ DEN · served_exhaustive`.
/// The `+1` absorbs rounding on tiny instances where a single user is
/// a large fraction of the optimum; the ratio itself (3/4) was chosen
/// against measured quick-scale beam results, which sit at parity with
/// exhaustive enumeration (see EXPERIMENTS.md).
pub const STRATEGY_QUALITY_NUM: usize = 4;
/// Denominator of the committed quality floor; see
/// [`STRATEGY_QUALITY_NUM`].
pub const STRATEGY_QUALITY_DEN: usize = 3;

/// Differential oracle 8 — guided seed strategies against exhaustive
/// enumeration, on the same instance and configuration:
///
/// * **bound-pruned** must be bit-identical (placements, served count,
///   winning seeds) — the bound is admissible, so pruning is
///   value-preserving by construction and this oracle catches any
///   regression in that argument;
/// * **beam** (at [`DEFAULT_BEAM_WIDTH`]) must serve at least the
///   committed quality fraction of the exhaustive count
///   (`4·(served+1) ≥ 3·exhaustive`);
/// * on instances small enough for [`exact_optimum`], every guided
///   strategy must additionally clear the integer Theorem 1 floor
///   `served · 3Δ ≥ OPT`.
///
/// The incoming `config`'s own strategy setting is ignored — each side
/// of every comparison pins its strategy explicitly.
///
/// # Errors
///
/// [`VerifyError::StrategyMismatch`] /
/// [`VerifyError::StrategyQualityViolated`] /
/// [`VerifyError::RatioViolated`] wrapped in [`CoreError`]; solver
/// errors propagate unchanged.
pub fn check_strategy_quality(instance: &Instance, config: &ApproxConfig) -> Result<(), CoreError> {
    let base = config.clone().seed_strategy(SeedStrategyKind::Exhaustive);
    let (exh, exh_stats) = approx_alg_with_stats(instance, &base)?;

    let pruned_config = base.clone().seed_strategy(SeedStrategyKind::BoundPruned);
    let (pruned, pruned_stats) = approx_alg_with_stats(instance, &pruned_config)?;
    let mismatch = |field: &'static str, guided: String, exhaustive: String| {
        Err(CoreError::Verification(VerifyError::StrategyMismatch {
            field,
            strategy: "bound-pruned",
            guided,
            exhaustive,
        }))
    };
    if pruned.deployment().placements() != exh.deployment().placements() {
        return mismatch(
            "placements",
            format!("{:?}", pruned.deployment().placements()),
            format!("{:?}", exh.deployment().placements()),
        );
    }
    if pruned.served_users() != exh.served_users() {
        return mismatch(
            "served",
            pruned.served_users().to_string(),
            exh.served_users().to_string(),
        );
    }
    if pruned_stats.best_seeds != exh_stats.best_seeds {
        return mismatch(
            "best_seeds",
            format!("{:?}", pruned_stats.best_seeds),
            format!("{:?}", exh_stats.best_seeds),
        );
    }

    let beam_config = base.clone().seed_strategy(SeedStrategyKind::Beam {
        width: DEFAULT_BEAM_WIDTH,
    });
    let (beam, _) = approx_alg_with_stats(instance, &beam_config)?;
    if STRATEGY_QUALITY_NUM * (beam.served_users() + 1) < STRATEGY_QUALITY_DEN * exh.served_users()
    {
        return Err(CoreError::Verification(
            VerifyError::StrategyQualityViolated {
                strategy: "beam",
                served: beam.served_users(),
                exhaustive: exh.served_users(),
            },
        ));
    }

    if instance.num_locations() <= 16 && instance.num_uavs() <= 4 {
        let opt = exact_optimum(instance)?;
        let delta = exh_stats.plan.delta();
        for sol in [&pruned, &beam] {
            if !theorem1_ratio_holds(sol.served_users(), opt.served_users(), delta) {
                return Err(CoreError::Verification(VerifyError::RatioViolated {
                    served: sol.served_users(),
                    opt: opt.served_users(),
                    delta,
                }));
            }
        }
    }
    Ok(())
}

/// Differential oracle 3 — Lemma 2's algebra: the closed-form relay
/// bound [`crate::g_upper_bound`] must equal the direct
/// `s + Σ middle + Σ_{h≥1} Q_h` evaluation
/// ([`crate::g_via_q_sums`]) for the given segment sizes.
///
/// # Errors
///
/// [`VerifyError::RelayBoundMismatch`].
///
/// # Panics
///
/// Panics if `p` has fewer than two entries (same contract as the
/// bound functions themselves).
pub fn check_relay_bound(p: &[usize]) -> Result<(), VerifyError> {
    let s = p.len() - 1;
    let l = p.iter().sum::<usize>() + s;
    let closed_form = crate::g_upper_bound(p);
    let q_sum = crate::g_via_q_sums(l, p);
    if closed_form != q_sum {
        return Err(VerifyError::RelayBoundMismatch {
            p: p.to_vec(),
            closed_form,
            q_sum,
        });
    }
    Ok(())
}

/// Theorem 1's guarantee `served ≥ OPT / (3Δ)`, checked in pure
/// integer arithmetic as `served · 3 · Δ ≥ OPT` (saturating, so huge
/// inputs err on the accepting side rather than overflowing). The
/// float-floor formulation this replaces could demand one user too
/// many when `OPT` is an exact multiple of `3Δ`.
pub fn theorem1_ratio_holds(served: usize, opt: usize, delta: usize) -> bool {
    served.saturating_mul(3).saturating_mul(delta) >= opt
}

/// Differential oracle 4 — the approximation against the brute-force
/// optimum on a small instance: `approx ≤ OPT` and the Theorem 1
/// floor `approx · 3Δ ≥ OPT` must both hold.
///
/// Returns the `(approx, optimum)` pair on success so callers can
/// report the realized ratio.
///
/// # Errors
///
/// [`VerifyError::RatioViolated`] (wrapped in [`CoreError`]) on a
/// violated guarantee; [`CoreError::InvalidParameters`] when the
/// instance exceeds the exact solver's guards (`m > 16` or `K > 4`).
pub fn check_against_exact(
    instance: &Instance,
    config: &ApproxConfig,
) -> Result<(Solution, Solution), CoreError> {
    let opt = exact_optimum(instance)?;
    let apx = approx_alg(instance, config)?;
    let plan = SegmentPlan::optimal(instance.num_uavs(), config.s())?;
    let delta = plan.delta();
    if apx.served_users() > opt.served_users()
        || !theorem1_ratio_holds(apx.served_users(), opt.served_users(), delta)
    {
        return Err(VerifyError::RatioViolated {
            served: apx.served_users(),
            opt: opt.served_users(),
            delta,
        }
        .into());
    }
    Ok((apx, opt))
}

/// Differential oracle 5 — the connectivity substrate against fresh
/// BFS, on concrete node sets: for every node mentioned in
/// `node_sets`, the substrate's precomputed hop row must equal a fresh
/// [`bfs_hops`] run, and for every set the substrate-backed relay
/// connection ([`connect_via_substrate`]) and gateway extension
/// ([`extend_to_gateway_substrate`]) must reproduce the brute-force
/// results ([`connect_via_mst`] / [`extend_to_gateway`]) bit-for-bit —
/// same relay cells in the same order, or the same typed error.
///
/// Exact equality — not just equal cost — is the contract: every
/// distance decision reads values that are identical by construction,
/// and the few actual path extractions go through the shared
/// [`uavnet_graph::shortest_path`] BFS on both sides.
///
/// # Errors
///
/// [`VerifyError::ConnectionMismatch`] naming the first diverging
/// stage (`"hops"`, `"connection"`, or `"gateway_extension"`);
/// [`VerifyError::Substrate`] if the location graph exceeds the
/// substrate's node limit.
///
/// # Panics
///
/// Panics if a node set mentions a cell outside the instance's grid.
pub fn check_connection_substrate(
    instance: &Instance,
    node_sets: &[Vec<CellIndex>],
) -> Result<(), VerifyError> {
    let graph = instance.location_graph();
    let sub = ConnectivitySubstrate::build(graph).map_err(VerifyError::Substrate)?;
    let mut gateway_cells = instance.gateway_cells();
    gateway_cells.sort_unstable();
    for nodes in node_sets {
        for &v in nodes {
            let fresh = bfs_hops(graph, v);
            let row = sub.hop_row(v);
            let diverged = fresh.iter().zip(row.iter()).position(|(f, &r)| {
                let r = (r != UNREACHABLE_HOPS).then_some(u32::from(r));
                *f != r
            });
            if let Some(w) = diverged {
                return Err(VerifyError::ConnectionMismatch {
                    stage: "hops",
                    nodes: nodes.clone(),
                    substrate: format!("row[{v}][{w}] = {:?}", row[w]),
                    brute_force: format!("bfs_hops[{v}][{w}] = {:?}", fresh[w]),
                });
            }
        }
        let via_sub = connect_via_substrate(graph, &sub, nodes);
        let via_bfs = connect_via_mst(graph, nodes);
        if via_sub != via_bfs {
            return Err(VerifyError::ConnectionMismatch {
                stage: "connection",
                nodes: nodes.clone(),
                substrate: format!("{via_sub:?}"),
                brute_force: format!("{via_bfs:?}"),
            });
        }
        // Exercise the gateway extension on whatever the connection
        // produced (union of endpoints and relays), mirroring how the
        // sweep chains the two calls.
        if let Ok(relays) = via_bfs {
            let mut all: Vec<usize> = nodes.iter().copied().chain(relays).collect();
            all.sort_unstable();
            all.dedup();
            let ext_sub = extend_to_gateway_substrate(graph, &sub, &all, &gateway_cells);
            let ext_bfs =
                extend_to_gateway(graph, &all, |v| gateway_cells.binary_search(&v).is_ok());
            if ext_sub != ext_bfs {
                return Err(VerifyError::ConnectionMismatch {
                    stage: "gateway_extension",
                    nodes: nodes.clone(),
                    substrate: format!("{ext_sub:?}"),
                    brute_force: format!("{ext_bfs:?}"),
                });
            }
        }
    }
    Ok(())
}

/// Runs the full differential battery appropriate for `instance` in
/// one call: the sweep oracle pair, the sharded-vs-monolithic sweep
/// oracle, the relay-bound algebra for the plan's segment sizes, the
/// assignment oracle pair on the winning deployment, the
/// substrate-vs-BFS connection oracle on the winning
/// locations, and independent [`Solution::validate`]. Small
/// instances (within the exact solver's guards) additionally get the
/// exact-vs-approx ratio check.
///
/// Returns the verified solution.
///
/// # Errors
///
/// The first failing oracle as a [`CoreError`].
pub fn verify_pipeline(instance: &Instance, config: &ApproxConfig) -> Result<Solution, CoreError> {
    let _span = uavnet_obs::phases::VERIFY.span();
    tally(check_sweep_oracles(instance, config))?;
    tally(check_sharded_sweep(instance, config))?;
    let (sol, stats) = approx_alg_with_stats(instance, config)?;
    tally(check_relay_bound(stats.plan.p()).map_err(CoreError::from))?;
    tally(
        check_assignment_oracles(instance, sol.deployment().placements()).map_err(CoreError::from),
    )?;
    let mut winning_locs: Vec<CellIndex> = sol
        .deployment()
        .placements()
        .iter()
        .map(|&(_, loc)| loc)
        .collect();
    winning_locs.sort_unstable();
    winning_locs.dedup();
    tally(check_connection_substrate(instance, &[winning_locs]).map_err(CoreError::from))?;
    tally(sol.validate(instance).map_err(CoreError::from))?;
    if instance.num_locations() <= 16 && instance.num_uavs() <= 4 {
        tally(check_against_exact(instance, config).map(|_| ()))?;
    }
    Ok(sol)
}

/// Counts one oracle check (and its failure, if any) into the active
/// obs session, passing the result through unchanged.
fn tally<T>(result: Result<T, CoreError>) -> Result<T, CoreError> {
    uavnet_obs::counters::VERIFY_CHECKS.add(1);
    if result.is_err() {
        uavnet_obs::counters::VERIFY_FAILURES.add(1);
    }
    result
}

/// A fault injected into a solved scenario.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Fault {
    /// The listed UAVs (fleet indices) crash or are withdrawn; their
    /// placements disappear and they are unavailable as relays.
    KillUavs(Vec<usize>),
    /// The listed inter-UAV links (unordered cell pairs of the
    /// location graph) are jammed or shadowed.
    SeverLinks(Vec<(CellIndex, CellIndex)>),
    /// Extra users appear (a demand surge into the disaster zone).
    UserSurge(Vec<User>),
}

/// The outcome of [`inject_and_repair`]: how far coverage degraded at
/// each stage, what the repair spent, and the repaired solution
/// together with the degraded instance it is valid against.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DegradationReport {
    /// Users served before any fault.
    pub served_before: usize,
    /// Users served by the surviving placements immediately after the
    /// fault, before any repair (re-assigned optimally, but possibly
    /// on a disconnected or gateway-less network).
    pub served_after_fault: usize,
    /// Users served by the repaired, validate-clean solution.
    pub served_after_repair: usize,
    /// Killed UAV indices (deduplicated).
    pub killed_uavs: Vec<usize>,
    /// Number of severed links applied.
    pub severed_links: usize,
    /// Number of surged users appended.
    pub surged_users: usize,
    /// Spare (undeployed, surviving) UAVs spent as relays or gateway
    /// bridges during the repair.
    pub relays_spent: usize,
    /// Surviving placements the repair had to abandon (disconnected
    /// fragments or relay-budget shortfalls).
    pub dropped_placements: usize,
    /// The repaired solution; `validate` passes against [`instance`]
    /// (DegradationReport::instance).
    pub solution: Solution,
    /// The degraded instance (severed links and surged users applied)
    /// the repaired solution lives on.
    pub instance: Instance,
}

/// Injects `faults` into a solved scenario and drives the repair path:
///
/// 1. apply link/user faults to a copy of the instance and drop the
///    killed UAVs' placements;
/// 2. if the survivors' network fell apart, keep the connected
///    component serving the most users (ties: larger component, then
///    smaller placement index);
/// 3. reconnect through [`connect_via_mst`] and re-extend to the
///    gateway, spending spare (surviving, undeployed) UAVs as relays —
///    largest spares on the most coverable relay cells; when the spare
///    budget is short, abandon the least-coverable survivor and retry;
/// 4. re-run the optimal assignment and independently validate.
///
/// The repair is deterministic and total over representable faults:
/// any unrepairable situation (e.g. the gateway cut off from every
/// survivor) is a typed [`CoreError`], never a panic.
///
/// # Errors
///
/// * [`CoreError::InvalidParameters`] for out-of-range UAV ids or
///   link endpoints, or invalid surge users;
/// * [`CoreError::Connect`] when no relay chain can restore the
///   gateway link;
/// * [`CoreError::Validation`] if the repaired solution fails its own
///   independent validation (a genuine harness bug — surfaced, not
///   masked).
pub fn inject_and_repair(
    instance: &Instance,
    solution: &Solution,
    faults: &[Fault],
) -> Result<DegradationReport, CoreError> {
    inject_and_repair_from(instance, solution, faults, &[])
}

/// [`inject_and_repair`] with a set of *previously* killed UAVs
/// threaded through: `prior_dead` UAVs are neither survivors nor
/// spares, even though they no longer appear among the placements.
/// This is what makes repair-after-repair sound — without it, a second
/// pass counted first-pass casualties as fresh spare relays.
fn inject_and_repair_from(
    instance: &Instance,
    solution: &Solution,
    faults: &[Fault],
    prior_dead: &[usize],
) -> Result<DegradationReport, CoreError> {
    let mut killed: Vec<usize> = Vec::new();
    let mut severed: Vec<(CellIndex, CellIndex)> = Vec::new();
    let mut extra: Vec<User> = Vec::new();
    for fault in faults {
        match fault {
            Fault::KillUavs(ids) => killed.extend(ids.iter().copied()),
            Fault::SeverLinks(links) => severed.extend(links.iter().copied()),
            Fault::UserSurge(users) => extra.extend(users.iter().copied()),
        }
    }
    killed.extend(prior_dead.iter().copied());
    killed.sort_unstable();
    killed.dedup();
    if let Some(&bad) = killed.iter().find(|&&u| u >= instance.num_uavs()) {
        return Err(CoreError::InvalidParameters(format!(
            "killed UAV {bad} outside the fleet of {}",
            instance.num_uavs()
        )));
    }
    let mut dead = vec![false; instance.num_uavs()];
    for &u in &killed {
        dead[u] = true;
    }

    let mut degraded = instance.clone();
    if !severed.is_empty() {
        degraded = degraded.with_severed_links(&severed)?;
    }
    if !extra.is_empty() {
        degraded = degraded.with_extra_users(&extra)?;
    }

    let served_before = solution.served_users();
    let survivors: Vec<(usize, CellIndex)> = solution
        .deployment()
        .placements()
        .iter()
        .copied()
        .filter(|&(uav, _)| !dead[uav])
        .collect();
    let served_after_fault = assign_users(&degraded, &survivors).served;

    // Steps 2–3 (component triage, MST re-bridging, gateway
    // re-extension, spare budgeting) live in the incremental engine
    // now — the solver loop and this harness share one planner.
    let plan = plan_repair(&degraded, None, survivors, &dead)?;

    // Step 4: typed-error scoring plus independent validation.
    let repaired = try_score_deployment(&degraded, plan.placements)?;
    repaired.validate(&degraded)?;
    Ok(DegradationReport {
        served_before,
        served_after_fault,
        served_after_repair: repaired.served_users(),
        killed_uavs: killed,
        severed_links: severed.len(),
        surged_users: extra.len(),
        relays_spent: plan.relays_spent,
        dropped_placements: plan.dropped,
        solution: repaired,
        instance: degraded,
    })
}

impl DegradationReport {
    /// Injects further faults into this report's repaired scenario,
    /// remembering every UAV already lost: [`killed_uavs`]
    /// (DegradationReport::killed_uavs) are excluded from the spare
    /// pool, so chained repairs can never re-deploy a casualty (the
    /// repair-after-repair staleness bug). The returned report's
    /// `killed_uavs` is the running union.
    ///
    /// Calling with no faults is idempotent: the repair re-plans the
    /// same placements and serves the same users.
    ///
    /// # Errors
    ///
    /// Same contract as [`inject_and_repair`].
    pub fn reinject(&self, faults: &[Fault]) -> Result<DegradationReport, CoreError> {
        inject_and_repair_from(&self.instance, &self.solution, faults, &self.killed_uavs)
    }
}

/// Verify oracle 7: drives a [`SolverLoop`] from a cold solve through
/// `deltas`, and after **every** delta checks the incremental state
/// against a cold rescore of the same placements on the mutated
/// instance — served counts must be equal (the maximum matching value
/// is unique) and the materialized incremental solution must pass
/// independent validation.
///
/// # Errors
///
/// * [`VerifyError::IncrementalMismatch`] (as
///   [`CoreError::Verification`]) on a served-count divergence;
/// * [`CoreError::Validation`] if the incremental solution fails
///   validation;
/// * any typed error of the loop itself (e.g. [`CoreError::Connect`]
///   for an unrepairable delta) — propagated, never a panic.
pub fn check_incremental(
    instance: &Instance,
    config: &ApproxConfig,
    deltas: &[Delta],
) -> Result<(), CoreError> {
    tally(check_incremental_inner(instance, config, deltas))
}

fn check_incremental_inner(
    instance: &Instance,
    config: &ApproxConfig,
    deltas: &[Delta],
) -> Result<(), CoreError> {
    let mut solver = SolverLoop::new(instance.clone(), LoopConfig::new(config.clone()))?;
    for delta in deltas {
        solver.apply(delta.clone())?;
        let cold = solver.cold_rescore()?;
        if solver.served_users() != cold.served_users() {
            return Err(CoreError::from(VerifyError::IncrementalMismatch {
                field: "served_users",
                incremental: solver.served_users().to_string(),
                cold: cold.served_users().to_string(),
            }));
        }
        solver.solution().validate(solver.instance())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn instance_3x3(uav_range: f64, caps: &[u32]) -> Instance {
        let grid = GridSpec::new(AreaSpec::new(900.0, 900.0, 500.0).unwrap(), 300.0, 300.0)
            .unwrap()
            .build();
        let mut b = Instance::builder(grid, uav_range);
        b.add_user(Point2::new(150.0, 150.0), 2_000.0);
        b.add_user(Point2::new(160.0, 150.0), 2_000.0);
        b.add_user(Point2::new(450.0, 450.0), 2_000.0);
        b.add_user(Point2::new(750.0, 750.0), 2_000.0);
        for &c in caps {
            b.add_uav(c, UavRadio::new(30.0, 5.0, 350.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn assignment_oracles_agree_on_varied_deployments() {
        let inst = instance_3x3(450.0, &[2, 2, 1]);
        for placements in [
            vec![],
            vec![(0usize, 0usize)],
            vec![(0, 0), (1, 4)],
            vec![(2, 8), (0, 0), (1, 4)],
        ] {
            check_assignment_oracles(&inst, &placements).unwrap();
        }
    }

    #[test]
    fn relay_bound_oracle_accepts_lemma2_algebra() {
        for p in [
            vec![0usize, 0],
            vec![1, 2, 2, 2],
            vec![5, 3],
            vec![0, 4, 4, 0],
            vec![3, 3, 3, 3, 3],
        ] {
            check_relay_bound(&p).unwrap();
        }
    }

    #[test]
    fn ratio_check_is_integer_exact() {
        // served = 2, opt = 6, Δ = 1: 2·3·1 = 6 ≥ 6 — exactly on the
        // floor must PASS (the float-floor version rejected this).
        assert!(theorem1_ratio_holds(2, 6, 1));
        assert!(!theorem1_ratio_holds(1, 6, 1)); // 3 < 6
        assert!(theorem1_ratio_holds(0, 0, 3)); // degenerate: no users
        assert!(theorem1_ratio_holds(usize::MAX / 2, usize::MAX, 7)); // saturates
    }

    #[test]
    fn sweep_and_exact_oracles_pass_on_a_small_instance() {
        let inst = instance_3x3(450.0, &[2, 1]);
        let config = ApproxConfig::with_s(1).threads(2);
        check_sweep_oracles(&inst, &config).unwrap();
        let (apx, opt) = check_against_exact(&inst, &config).unwrap();
        assert!(apx.served_users() <= opt.served_users());
        let sol = verify_pipeline(&inst, &config).unwrap();
        assert_eq!(sol.served_users(), apx.served_users());
    }

    #[test]
    fn connection_substrate_oracle_passes_on_varied_node_sets() {
        let inst = instance_3x3(450.0, &[2, 2, 1]);
        // Singletons, adjacent pairs, a spread triple needing relays,
        // and the full diagonal; all must agree with brute-force BFS
        // on hops, relay selection and gateway extension.
        check_connection_substrate(
            &inst,
            &[
                vec![0],
                vec![0, 1],
                vec![0, 8],
                vec![0, 4, 8],
                vec![2, 6],
                vec![0, 2, 6, 8],
            ],
        )
        .unwrap();
        // A short UAV range disconnects the location graph; the two
        // implementations must agree on the typed error too.
        let sparse = instance_3x3(250.0, &[2, 1]);
        check_connection_substrate(&sparse, &[vec![0, 8], vec![0], vec![3, 5]]).unwrap();
    }

    #[test]
    fn connection_mismatch_display_names_the_stage() {
        let err = VerifyError::ConnectionMismatch {
            stage: "connection",
            nodes: vec![0, 4],
            substrate: "Ok([0, 4, 2])".into(),
            brute_force: "Ok([0, 4, 1])".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("connection"), "{msg}");
        assert!(msg.contains("[0, 4]"), "{msg}");
    }

    #[test]
    fn kill_fault_repairs_to_a_valid_solution() {
        let inst = instance_3x3(450.0, &[2, 2, 1]);
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1).threads(1)).unwrap();
        sol.validate(&inst).unwrap();
        for &(uav, _) in sol.deployment().placements() {
            let report = inject_and_repair(&inst, &sol, &[Fault::KillUavs(vec![uav])]).unwrap();
            report.solution.validate(&report.instance).unwrap();
            assert!(report
                .solution
                .deployment()
                .placements()
                .iter()
                .all(|&(u, _)| u != uav));
            assert!(report.served_after_repair <= report.served_before);
            assert_eq!(report.killed_uavs, vec![uav]);
        }
    }

    #[test]
    fn severed_link_fault_triages_the_best_component() {
        // Chain deployment across the diagonal; cutting a middle link
        // must keep the component serving more users.
        let inst = instance_3x3(450.0, &[2, 2, 1]);
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1).threads(1)).unwrap();
        let links: Vec<(usize, usize)> = inst.location_graph().edges().collect();
        for &link in links.iter().take(6) {
            let report = inject_and_repair(&inst, &sol, &[Fault::SeverLinks(vec![link])]).unwrap();
            report.solution.validate(&report.instance).unwrap();
        }
    }

    #[test]
    fn user_surge_fault_reassigns() {
        let inst = instance_3x3(450.0, &[2, 2, 1]);
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1).threads(1)).unwrap();
        let surge: Vec<User> = (0..3)
            .map(|i| User {
                pos: Point2::new(150.0 + 5.0 * i as f64, 160.0),
                min_rate_bps: 2_000.0,
            })
            .collect();
        let report = inject_and_repair(&inst, &sol, &[Fault::UserSurge(surge)]).unwrap();
        assert_eq!(report.surged_users, 3);
        assert_eq!(report.instance.num_users(), inst.num_users() + 3);
        report.solution.validate(&report.instance).unwrap();
        // More demand can only help the served count.
        assert!(report.served_after_repair >= report.served_before.min(1));
    }

    #[test]
    fn combined_faults_and_whole_fleet_loss_degrade_gracefully() {
        let inst = instance_3x3(450.0, &[2, 2, 1]);
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1).threads(1)).unwrap();
        // Everything at once.
        let report = inject_and_repair(
            &inst,
            &sol,
            &[
                Fault::KillUavs(vec![0]),
                Fault::SeverLinks(vec![(0, 1)]),
                Fault::UserSurge(vec![User {
                    pos: Point2::new(450.0, 460.0),
                    min_rate_bps: 2_000.0,
                }]),
            ],
        )
        .unwrap();
        report.solution.validate(&report.instance).unwrap();
        // The whole fleet gone: empty but valid.
        let report = inject_and_repair(&inst, &sol, &[Fault::KillUavs(vec![0, 1, 2])]).unwrap();
        assert_eq!(report.served_after_repair, 0);
        assert!(report.solution.deployment().is_empty());
        report.solution.validate(&report.instance).unwrap();
    }

    #[test]
    fn malformed_faults_are_typed_errors() {
        let inst = instance_3x3(450.0, &[2, 1]);
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1).threads(1)).unwrap();
        assert!(matches!(
            inject_and_repair(&inst, &sol, &[Fault::KillUavs(vec![99])]),
            Err(CoreError::InvalidParameters(_))
        ));
        assert!(matches!(
            inject_and_repair(&inst, &sol, &[Fault::SeverLinks(vec![(0, 99)])]),
            Err(CoreError::InvalidParameters(_))
        ));
        assert!(matches!(
            inject_and_repair(
                &inst,
                &sol,
                &[Fault::UserSurge(vec![User {
                    pos: Point2::new(-10.0, 0.0),
                    min_rate_bps: 2_000.0,
                }])]
            ),
            Err(CoreError::InvalidInstance(_))
        ));
    }
}
