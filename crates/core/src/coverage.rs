//! Compressed, SoA-layout coverage tables.
//!
//! The naive representation — `coverage[class][location]` as a
//! `Vec<Vec<Vec<u32>>>` — costs one heap allocation per (class,
//! location) pair plus 4 bytes per covered user, which is
//! O(users × locations) in dense zones and the memory wall that kept
//! `--scale` below a million users. [`CoverageTables`] stores the same
//! logical lists in three shared arenas with a per-list encoding chosen
//! by size:
//!
//! * **Ids** — the sorted ids verbatim (4 bytes/user); wins for short
//!   scattered lists;
//! * **Runs** — maximal `[start, start + len)` spans (8 bytes/run);
//!   wins when cluster sampling makes ids consecutive;
//! * **Bits** — a packed bitset window from the first to the last id
//!   (8 bytes per 64 ids of span); wins for dense discs.
//!
//! Reads come back as a borrowed [`UserList`], which the matching
//! kernel walks without decoding, so gain queries stay allocation-free.
//! Under `debug-validate` every encoded list is decoded and checked
//! bit-identical against the uncompressed input at build time.

use serde::{Deserialize, Serialize};
use uavnet_flow::{UserList, UserRun};

/// Per-list encoding tag; the builder picks the smallest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Enc {
    Ids,
    Runs,
    Bits,
}

/// Memory accounting for one instance's coverage tables, in bytes.
///
/// `uncompressed_bytes` is what the former `Vec<Vec<u32>>`-per-list
/// layout would occupy (one `Vec` header plus 4 bytes per id per
/// list); `compressed_bytes` is the arena + per-list metadata cost of
/// this store. Emitted per scale in `BENCH_sweep.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageMemory {
    /// Bytes held by the compressed store (arenas + per-list metadata).
    pub compressed_bytes: usize,
    /// Bytes the uncompressed `Vec<Vec<u32>>` layout would hold.
    pub uncompressed_bytes: usize,
    /// Total number of (class, location) lists.
    pub lists: usize,
    /// Lists stored as explicit ids.
    pub ids_lists: usize,
    /// Lists stored as run-length spans.
    pub run_lists: usize,
    /// Lists stored as packed bitset windows.
    pub bitset_lists: usize,
}

/// Coverage lists for every (radio class, location) pair, compressed
/// per list and stored structure-of-arrays.
///
/// Lists are pushed in row-major order (`class * locations + loc`) by
/// the instance builder and are immutable afterwards. [`list`]
/// (CoverageTables::list) returns a borrowed view; [`count`]
/// (CoverageTables::count) is an O(1) table lookup (the decoded length
/// is cached), which is what the CELF upper bound reads.
#[derive(Debug, Clone)]
pub struct CoverageTables {
    classes: usize,
    locations: usize,
    // Per-list metadata, indexed by `class * locations + loc`.
    enc: Vec<Enc>,
    start: Vec<usize>,
    len: Vec<u32>,
    count: Vec<u32>,
    base: Vec<u32>,
    // Shared arenas, one per encoding.
    ids: Vec<u32>,
    runs: Vec<UserRun>,
    words: Vec<u64>,
    uncompressed_bytes: usize,
}

impl CoverageTables {
    /// Starts an empty store expecting `classes × locations` lists.
    pub(crate) fn with_shape(classes: usize, locations: usize) -> Self {
        let entries = classes * locations;
        CoverageTables {
            classes,
            locations,
            enc: Vec::with_capacity(entries),
            start: Vec::with_capacity(entries),
            len: Vec::with_capacity(entries),
            count: Vec::with_capacity(entries),
            base: Vec::with_capacity(entries),
            ids: Vec::new(),
            runs: Vec::new(),
            words: Vec::new(),
            uncompressed_bytes: 0,
        }
    }

    /// Appends the next list in row-major (class-major) order. `list`
    /// must be sorted ascending without duplicates.
    pub(crate) fn push_list(&mut self, list: &[u32]) {
        debug_assert!(
            list.windows(2).all(|w| w[0] < w[1]),
            "coverage list must be sorted and deduplicated"
        );
        debug_assert!(
            self.enc.len() < self.classes * self.locations,
            "more lists than classes × locations"
        );
        self.count.push(list.len() as u32);
        self.uncompressed_bytes += std::mem::size_of::<Vec<u32>>() + 4 * list.len();
        let (Some(&first), Some(&last)) = (list.first(), list.last()) else {
            self.enc.push(Enc::Ids);
            self.start.push(self.ids.len());
            self.len.push(0);
            self.base.push(0);
            return;
        };
        // Bitset windows start at a multiple of 64 (≤ 8 extra bytes)
        // so the matching kernel can intersect list words directly
        // with its word-aligned free-user bitset.
        let bits_base = first & !63;
        let span = (last - bits_base) as usize + 1;
        let num_runs = 1 + list.windows(2).filter(|w| w[1] != w[0] + 1).count();
        let num_words = span.div_ceil(64);
        let ids_bytes = 4 * list.len();
        let runs_bytes = 8 * num_runs;
        let bits_bytes = 8 * num_words;
        if ids_bytes <= runs_bytes && ids_bytes <= bits_bytes {
            self.enc.push(Enc::Ids);
            self.start.push(self.ids.len());
            self.len.push(list.len() as u32);
            self.base.push(0);
            self.ids.extend_from_slice(list);
        } else if runs_bytes <= bits_bytes {
            self.enc.push(Enc::Runs);
            self.start.push(self.runs.len());
            self.len.push(num_runs as u32);
            self.base.push(0);
            let mut run = UserRun {
                start: first,
                len: 1,
            };
            for &u in &list[1..] {
                if u == run.start + run.len {
                    run.len += 1;
                } else {
                    self.runs.push(run);
                    run = UserRun { start: u, len: 1 };
                }
            }
            self.runs.push(run);
        } else {
            self.enc.push(Enc::Bits);
            self.start.push(self.words.len());
            self.len.push(num_words as u32);
            self.base.push(bits_base);
            self.words.resize(self.words.len() + num_words, 0);
            let at = self.words.len() - num_words;
            for &u in list {
                let off = (u - bits_base) as usize;
                self.words[at + off / 64] |= 1 << (off % 64);
            }
        }
        #[cfg(feature = "debug-validate")]
        {
            let i = self.enc.len() - 1;
            let decoded = self.list(i / self.locations, i % self.locations).to_vec();
            assert_eq!(
                decoded, list,
                "debug-validate: compressed coverage list diverges at entry {i}"
            );
        }
    }

    /// Seals the store; panics if the number of pushed lists does not
    /// match the declared shape.
    pub(crate) fn finish(self) -> Self {
        assert_eq!(
            self.enc.len(),
            self.classes * self.locations,
            "coverage table shape mismatch"
        );
        self
    }

    /// Number of radio classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Number of candidate locations.
    #[inline]
    pub fn num_locations(&self) -> usize {
        self.locations
    }

    /// The coverage list for `(class, loc)` as a borrowed view.
    ///
    /// # Panics
    ///
    /// Panics if `class` or `loc` is out of range.
    #[inline]
    pub fn list(&self, class: usize, loc: usize) -> UserList<'_> {
        assert!(class < self.classes && loc < self.locations);
        let i = class * self.locations + loc;
        let s = self.start[i];
        let l = self.len[i] as usize;
        match self.enc[i] {
            Enc::Ids => UserList::Ids(&self.ids[s..s + l]),
            Enc::Runs => UserList::Runs(&self.runs[s..s + l]),
            Enc::Bits => UserList::Bits {
                base: self.base[i],
                words: &self.words[s..s + l],
            },
        }
    }

    /// Number of users in the `(class, loc)` list — O(1), the decoded
    /// length is cached at build time.
    ///
    /// # Panics
    ///
    /// Panics if `class` or `loc` is out of range.
    #[inline]
    pub fn count(&self, class: usize, loc: usize) -> usize {
        assert!(class < self.classes && loc < self.locations);
        self.count[class * self.locations + loc] as usize
    }

    /// Decodes every list into the legacy `[class][location]` layout
    /// (tests and the differential oracle only).
    pub fn decode_all(&self) -> Vec<Vec<Vec<u32>>> {
        (0..self.classes)
            .map(|c| {
                (0..self.locations)
                    .map(|l| self.list(c, l).to_vec())
                    .collect()
            })
            .collect()
    }

    /// Memory accounting for this store; see [`CoverageMemory`].
    pub fn memory(&self) -> CoverageMemory {
        let entries = self.enc.len();
        let metadata = entries
            * (std::mem::size_of::<Enc>()
                + std::mem::size_of::<usize>()
                + 2 * std::mem::size_of::<u32>()
                + std::mem::size_of::<u32>());
        let arenas = 4 * self.ids.len()
            + std::mem::size_of::<UserRun>() * self.runs.len()
            + 8 * self.words.len();
        CoverageMemory {
            compressed_bytes: metadata + arenas,
            uncompressed_bytes: self.uncompressed_bytes,
            lists: entries,
            ids_lists: self.enc.iter().filter(|&&e| e == Enc::Ids).count(),
            run_lists: self.enc.iter().filter(|&&e| e == Enc::Runs).count(),
            bitset_lists: self.enc.iter().filter(|&&e| e == Enc::Bits).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_of(lists: &[&[u32]]) -> CoverageTables {
        let mut t = CoverageTables::with_shape(1, lists.len());
        for l in lists {
            t.push_list(l);
        }
        t.finish()
    }

    #[test]
    fn roundtrips_every_encoding() {
        let dense: Vec<u32> = (10..200).collect(); // contiguous → runs
        let mostly_dense: Vec<u32> = (0..200).filter(|v| v % 7 != 0).collect(); // bits
        let sparse = vec![5u32, 900, 40_000]; // ids
        let lists: Vec<&[u32]> = vec![&dense, &mostly_dense, &sparse, &[]];
        let t = store_of(&lists);
        for (i, l) in lists.iter().enumerate() {
            assert_eq!(t.list(0, i).to_vec(), *l, "list {i}");
            assert_eq!(t.count(0, i), l.len());
        }
        let mem = t.memory();
        assert_eq!(mem.lists, 4);
        assert!(mem.run_lists >= 1, "contiguous list should pick runs");
        assert!(mem.bitset_lists >= 1, "dense-with-holes should pick bits");
        assert!(mem.ids_lists >= 2, "sparse + empty should pick ids");
        assert!(mem.compressed_bytes < mem.uncompressed_bytes);
    }

    #[test]
    fn encoding_picks_minimal_bytes() {
        // 3 ids spanning 3 runs: ids = 12 B, runs = 24 B, bits ≥ 8 B
        // but the span is tiny → bits wins only if span ≤ 64... here
        // span is 11 so bits = 8 B < ids: bits should win.
        let t = store_of(&[&[0, 5, 10]]);
        assert_eq!(t.memory().bitset_lists, 1);
        // 2 ids far apart: ids = 8 B, runs = 16 B, bits huge → ids.
        let t = store_of(&[&[0, 1_000_000]]);
        assert_eq!(t.memory().ids_lists, 1);
        // one long run: runs = 8 B beats ids = 400 B and ties bits
        // (span 100 → 16 B); runs wins.
        let run: Vec<u32> = (7..107).collect();
        let t = store_of(&[&run]);
        assert_eq!(t.memory().run_lists, 1);
    }

    #[test]
    fn decode_all_matches_inputs() {
        let lists: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![], vec![0, 64, 128]];
        let mut t = CoverageTables::with_shape(3, 1);
        for l in &lists {
            t.push_list(l);
        }
        let t = t.finish();
        let decoded = t.decode_all();
        for (c, l) in lists.iter().enumerate() {
            assert_eq!(&decoded[c][0], l);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn finish_checks_shape() {
        let t = CoverageTables::with_shape(2, 3);
        t.finish();
    }
}
