//! Algorithm 2 — `approAlg`, the `O(√(s/K))`-approximation for the
//! maximum connected coverage problem (§III-E).
//!
//! For every `s`-subset of candidate locations (the *seeds*
//! `{v*_1 … v*_s}`):
//!
//! 1. run the two-matroid lazy greedy: deploy UAVs in non-increasing
//!    capacity order, each at the feasible location (w.r.t. the
//!    hop-budget matroid `M2`) with the largest exact marginal gain of
//!    the optimal assignment;
//! 2. connect the chosen locations with an MST over hop distances,
//!    expanding tree edges to shortest relay paths (Fig. 3);
//! 3. discard the subset if the connected set needs more than `K`
//!    UAVs; otherwise deploy the remaining (smaller) UAVs on the relay
//!    locations and score the deployment with the optimal assignment.
//!
//! The best subset wins. Two prunings keep the `C(m, s)` enumeration
//! tractable (both on by default; disable both to run the *literal*
//! paper algorithm with its full `O(K² n² m^{s+1})` enumeration):
//!
//! * **empty-seed pruning** — drops locations covering zero users from
//!   the seed pool (they can still appear as greedy picks or relays);
//! * **chain pruning** — the ratio analysis positions its witness
//!   seeds along a path split, so consecutive witness seeds sit at
//!   most `p*_i + 1` hops apart; subsets admitting no such ordering
//!   are skipped.
//!
//! Both prunings are heuristics: they retain the analysis' witness
//! subsets in the common case but may skip a subset that would have
//! scored higher (the relay bound `g` is only an upper bound on the
//! true connection cost). The test-suite checks that pruned runs never
//! *exceed* unpruned runs and stay competitive; EXPERIMENTS.md
//! quantifies the gap at evaluation scale.
//!
//! A third engineering default, the **leftover pass**, re-deploys the
//! `K − q_j` UAVs the paper's listing leaves grounded: each round it
//! spends `d` leftover UAVs to reach the unoccupied cell `d` hops from
//! the network with the best gain-per-UAV, relays included — a strict
//! improvement that preserves connectivity (and the gateway link).
//! `ApproxConfig::leftover_deployment(false)` restores the literal
//! behavior.
//!
//! `approx_alg` is the *cold* solver: it considers every candidate
//! location and every UAV from a blank slate. The incremental engine
//! ([`crate::SolverLoop`]) holds a standing deployment and falls back
//! to this function only when a delta drops too large a fraction of
//! the fleet to be worth repairing in place.

use crate::connecting::{connect_via_mst, connect_via_substrate};
use crate::oracle::CoverageOracle;
use crate::seed_matroid::{seed_matroid, seed_matroid_substrate};
use crate::solution::{score_deployment, Solution};
use crate::strategy::{SearchContext, SeedStrategyKind};
use crate::{CoreError, Instance, SegmentPlan};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;
use uavnet_geom::CellIndex;
use uavnet_graph::{ConnectivitySubstrate, UNREACHABLE_HOPS};
use uavnet_matroid::{
    lazy_greedy_with, GreedyOptions, LazyGreedyWorkspace, MarginalOracle as _, Matroid as _,
};

/// Configuration of [`approx_alg`].
///
/// # Examples
///
/// ```
/// use uavnet_core::ApproxConfig;
/// let config = ApproxConfig::with_s(3).threads(4).prune_chain(false);
/// assert_eq!(config.s(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ApproxConfig {
    s: usize,
    prune_chain: bool,
    prune_empty_seeds: bool,
    threads: usize,
    max_subsets: Option<usize>,
    deploy_leftovers: bool,
    panic_at_rank: Option<u64>,
    strategy: SeedStrategyKind,
}

impl ApproxConfig {
    /// A configuration with seed count `s` and default pruning
    /// (both prunings on, one worker thread per available core).
    pub fn with_s(s: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ApproxConfig {
            s,
            prune_chain: true,
            prune_empty_seeds: true,
            threads,
            max_subsets: None,
            deploy_leftovers: true,
            panic_at_rank: None,
            strategy: SeedStrategyKind::Exhaustive,
        }
    }

    /// Selects the seed-search strategy of the subset sweep (default
    /// [`SeedStrategyKind::Exhaustive`]). `BoundPruned` is
    /// value-preserving — bit-identical winner, fewer evaluations —
    /// while `Beam` trades a verified quality factor for a
    /// non-combinatorial evaluation count.
    pub fn seed_strategy(mut self, strategy: SeedStrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Fault injection for the panic-containment tests: the worker
    /// holding enumeration rank `rank` panics right before evaluating
    /// it, simulating an oracle blowing up mid-sweep. Always compiled
    /// (integration tests cannot see `cfg(test)` items) but hidden —
    /// not part of the public API surface.
    #[doc(hidden)]
    pub fn inject_worker_panic_at(mut self, rank: u64) -> Self {
        self.panic_at_rank = Some(rank);
        self
    }

    /// Enables/disables the leftover pass: after the winning subset is
    /// connected, UAVs that Algorithm 2 would leave grounded
    /// (`q_j < K`) are deployed greedily on cells adjacent to the
    /// network while their marginal gain is positive. A strict
    /// improvement that preserves connectivity; disable for the
    /// literal paper algorithm.
    pub fn leftover_deployment(mut self, on: bool) -> Self {
        self.deploy_leftovers = on;
        self
    }

    /// Sets the number of worker threads for the subset sweep. The
    /// result is deterministic regardless of this value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables/disables the consecutive-seed hop-distance pruning.
    pub fn prune_chain(mut self, on: bool) -> Self {
        self.prune_chain = on;
        self
    }

    /// Enables/disables dropping zero-coverage locations from the seed
    /// pool.
    pub fn prune_empty_seeds(mut self, on: bool) -> Self {
        self.prune_empty_seeds = on;
        self
    }

    /// Aborts with an error if more than `limit` subsets survive
    /// pruning — a guard against accidentally huge enumerations.
    pub fn max_subsets(mut self, limit: usize) -> Self {
        self.max_subsets = Some(limit);
        self
    }

    /// The seed count `s`.
    pub fn s(&self) -> usize {
        self.s
    }

    /// Whether chain pruning is enabled.
    pub fn is_chain_pruning(&self) -> bool {
        self.prune_chain
    }

    /// Whether empty-seed pruning is enabled.
    pub fn is_empty_seed_pruning(&self) -> bool {
        self.prune_empty_seeds
    }

    /// Whether the leftover-deployment pass is enabled.
    pub fn is_leftover_deployment(&self) -> bool {
        self.deploy_leftovers
    }

    /// Worker threads for the subset sweep.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// The configured seed-search strategy.
    pub fn strategy(&self) -> SeedStrategyKind {
        self.strategy
    }

    /// The configured subset-survivor limit, if any.
    pub(crate) fn subset_limit(&self) -> Option<usize> {
        self.max_subsets
    }

    /// The injected-panic enumeration rank, if any (test hook).
    pub(crate) fn panic_rank(&self) -> Option<u64> {
        self.panic_at_rank
    }
}

/// Run statistics of [`approx_alg_with_stats`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ApproxStats {
    /// The segment plan from Algorithm 1.
    pub plan: SegmentPlan,
    /// Locations admitted to the seed pool.
    pub seed_pool_size: usize,
    /// `s`-subsets enumerated before chain pruning. The enumerative
    /// strategies report `C(pool, s)`; the beam reports generated
    /// states, so the `enumerated = evaluated + pruned` identity holds
    /// only for the enumerative strategies (truncation drops the rest).
    pub subsets_enumerated: usize,
    /// Subsets dropped by the chain pruning.
    pub subsets_chain_pruned: usize,
    /// Subsets skipped because their admissible served-count upper
    /// bound could not beat the incumbent (bound-pruned strategy only;
    /// zero elsewhere).
    pub subsets_bound_pruned: usize,
    /// Subsets fully evaluated (greedy + connection + scoring).
    pub subsets_evaluated: usize,
    /// Evaluated subsets whose connected set exceeded `K` UAVs or
    /// could not be connected at all.
    pub subsets_unconnectable: usize,
    /// The winning seed subset, if any subset produced a deployment.
    pub best_seeds: Option<Vec<CellIndex>>,
    /// Marginal-gain (trial-insertion) queries issued across the whole
    /// sweep. Deterministic for a given instance and configuration,
    /// independent of the thread count.
    pub gain_queries: u64,
    /// Spatial tiles solved by the sharded sweep (zero for the
    /// monolithic paths).
    pub tiles_solved: usize,
    /// Subsets that escaped their tile view (ground set or relays
    /// outside the reach bound) and were re-solved against the global
    /// workspace. Zero for the monolithic paths; always zero when the
    /// reach bound holds (it can be exceeded only via gateway
    /// extension or with chain pruning off).
    pub view_escapes: usize,
    /// Stable name of the seed-search strategy that ran
    /// ([`SeedStrategyKind::name`]).
    pub strategy: &'static str,
    /// Wall-clock and memory profile of the sweep (not deterministic;
    /// excluded from equivalence comparisons).
    pub profile: SweepProfile,
}

/// Per-phase wall-clock profile of the subset sweep, summed across
/// worker threads — phase totals therefore exceed elapsed time when
/// several workers run in parallel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SweepProfile {
    /// Nanoseconds spent generating combinations and chain-pruning.
    pub enumeration_ns: u64,
    /// Nanoseconds in the lazy greedy (matroid build, gain queries,
    /// commits).
    pub greedy_ns: u64,
    /// Nanoseconds connecting picks via MST / gateway extension.
    pub connection_ns: u64,
    /// Nanoseconds deploying relay UAVs and scoring the deployment.
    pub scoring_ns: u64,
    /// Peak bytes held in subset-combination buffers across all
    /// workers: the streaming sweep keeps `O(s · threads)` indices in
    /// flight instead of materializing all `C(m, s)` subsets.
    pub subset_buffer_peak_bytes: usize,
    /// Nanoseconds building the per-sweep [`ConnectivitySubstrate`]
    /// (all-pairs hop matrix + component bitsets). Paid once; every
    /// subset afterwards reads rows instead of re-running BFS.
    pub substrate_build_ns: u64,
    /// Nanoseconds answering hop-structure queries from the substrate
    /// (matroid depths, MST weights, path descent, gateway extension),
    /// summed across workers. Also included in `greedy_ns` /
    /// `connection_ns`; reported separately so the build-once-query-
    /// often trade is visible in `sweep_report`.
    pub substrate_query_ns: u64,
    /// Nanoseconds building per-tile views (reach sets + local user
    /// remaps + local coverage lists), summed across workers. Zero for
    /// the monolithic paths.
    pub tile_view_ns: u64,
}

/// Runs Algorithm 2 and returns the best solution found.
///
/// Always returns a valid, connected deployment: if every seed subset
/// fails the relay budget, it falls back to the single best location
/// for the largest UAV (a one-node network is trivially connected).
///
/// # Errors
///
/// * [`CoreError::InvalidParameters`] if `s` is zero, exceeds the
///   fleet size or the number of candidate locations, or the surviving
///   enumeration exceeds the configured `max_subsets`.
/// * [`CoreError::Substrate`] if the location graph exceeds the
///   connectivity substrate's `u16` hop-matrix node limit.
/// * [`CoreError::Sweep`] if a worker thread panicked; every other
///   worker is joined before the error is returned, so no thread
///   outlives the call.
///
/// See the [crate-level example](crate) for usage.
pub fn approx_alg(instance: &Instance, config: &ApproxConfig) -> Result<Solution, CoreError> {
    approx_alg_with_stats(instance, config).map(|(sol, _)| sol)
}

/// [`approx_alg`] plus run statistics.
pub fn approx_alg_with_stats(
    instance: &Instance,
    config: &ApproxConfig,
) -> Result<(Solution, ApproxStats), CoreError> {
    let k = instance.num_uavs();
    let s = config.s;
    let m = instance.num_locations();
    if s > m {
        return Err(CoreError::InvalidParameters(format!(
            "s = {s} exceeds the {m} candidate locations"
        )));
    }
    let plan = SegmentPlan::optimal(k, s)?;
    if gateway_unsatisfiable(instance) {
        return Ok(infeasible_gateway_result(instance, config, plan));
    }
    let _sweep_span = uavnet_obs::phases::SWEEP_TOTAL.span();

    // Build the shared connectivity substrate once: every worker then
    // reads precomputed hop rows for matroid depths, MST weights and
    // relay paths instead of re-running BFS per subset.
    let t_substrate = Instant::now();
    let substrate = ConnectivitySubstrate::build(instance.location_graph())?;
    let substrate_build_ns = t_substrate.elapsed().as_nanos() as u64;

    // Strategy dispatch: the seed pool, chain tables and substrate are
    // prepared once in a SearchContext, the configured SeedStrategy
    // searches it, and the stats below report whatever honest work the
    // strategy did. The exhaustive engine lives in strategy.rs as one
    // implementation among several.
    let ctx = SearchContext::new(instance, config, &plan, &substrate);
    let strategy = config.strategy.build();
    if let Some(limit) = config.subset_limit() {
        // Pre-spawn guard against accidentally huge enumerations,
        // checked against the *strategy-adjusted* plan (a beam of
        // width 3 plans 3 evaluations no matter how large C(pool, s)
        // is), and before any worker thread exists.
        let planned = strategy.planned_evaluations(&ctx, limit);
        if planned > limit {
            return Err(CoreError::InvalidParameters(format!(
                "strategy {} plans more than {limit} subset evaluations \
                 ({planned}+ survive pruning); coarsen the grid, raise \
                 max_subsets or pick a bounded strategy",
                strategy.name()
            )));
        }
    }
    let result = strategy.search(&ctx)?;
    let pool_len = ctx.pool().len();
    drop(ctx);

    let mut profile = result.profile;
    profile.substrate_build_ns = substrate_build_ns;
    let stats = ApproxStats {
        plan,
        seed_pool_size: pool_len,
        subsets_enumerated: result.subsets_enumerated,
        subsets_chain_pruned: result.subsets_chain_pruned,
        subsets_bound_pruned: result.subsets_bound_pruned,
        subsets_evaluated: result.subsets_evaluated,
        subsets_unconnectable: result.subsets_unconnectable,
        best_seeds: result.best.as_ref().map(|b| b.seeds.clone()),
        gain_queries: result.gain_queries,
        tiles_solved: 0,
        view_escapes: 0,
        strategy: config.strategy.name(),
        profile,
    };

    let mut placements = match result.best {
        Some(best) => best.placements,
        None => fallback_single_uav(instance),
    };
    if config.deploy_leftovers {
        deploy_leftovers(instance, &mut placements);
    }
    let solution = score_deployment(instance, placements);
    #[cfg(feature = "debug-validate")]
    solution
        .validate(instance)
        .expect("debug-validate: sweep produced a solution its own validator rejects");
    crate::obs::record_sweep(config, &stats, &solution);
    Ok((solution, stats))
}

/// The seed pool: locations admitted as enumeration candidates, in
/// the canonical greedy max-marginal-coverage order.
///
/// Under empty-seed pruning, zero-coverage locations are dropped, and
/// so is every location whose substrate component holds fewer than `s`
/// surviving pool members: any `s`-subset containing such a location
/// either spans components (unconnectable) or cannot be formed at all,
/// so `next_combination` / `unrank_combination` never have to
/// enumerate it. The filter is value-preserving — it only removes
/// subsets the connection step would reject.
///
/// The surviving pool is then put in greedy max-marginal-coverage
/// order via [`marginal_coverage_order`]: position 0 is the cell
/// covering the most users, position 1 the cell covering the most
/// *additional* users, and so on (ties by cell index). This CELF-style
/// canonical order defines the enumeration ranks every strategy
/// shares, and it makes the low ranks *complementary* — one cell per
/// user hotspot — instead of packing them with overlapping cells from
/// the densest cluster. Two things follow. First, the sweep's
/// tie-break (lowest rank among equally-served maxima) prefers the
/// deployment built from maximally complementary dense cells, a
/// meaningful canonical representative. Second, a maximum-serving
/// subset appears at a *low* rank, which is what lets the bound-pruned
/// strategy retire nearly every equal-bound successor instead of
/// evaluating each survivor ranked before a late winner. The order
/// changes only which of several equally-served subsets wins; the
/// served count, the subset universe, and all subset counters are
/// order-invariant.
pub(crate) fn seed_pool(
    instance: &Instance,
    config: &ApproxConfig,
    sub: &ConnectivitySubstrate,
) -> Vec<usize> {
    let m = instance.num_locations();
    let s = config.s;
    let mut pool: Vec<usize> = (0..m)
        .filter(|&v| !config.prune_empty_seeds || instance.best_coverage_count(v) > 0)
        .collect();
    if config.prune_empty_seeds && s >= 2 {
        let mut members_per_component = vec![0usize; sub.num_components()];
        for &v in &pool {
            members_per_component[sub.component_of(v)] += 1;
        }
        pool.retain(|&v| members_per_component[sub.component_of(v)] >= s);
    }
    if pool.len() < s {
        // Degenerate coverage: refill so that the enumeration exists.
        pool = (0..m).collect();
    }
    marginal_coverage_order(instance, &mut pool);
    pool
}

/// Reorders `pool` into greedy max-marginal-coverage order with the
/// classic lazy (CELF) evaluation: each cell's cached gain is an upper
/// bound on its current marginal coverage (marginals only shrink as
/// users get claimed), so a popped entry whose cache is stale is
/// re-counted and re-queued rather than rescanning every candidate per
/// step. Coverage is the union over all radio classes, deduplicated
/// with an epoch stamp. Deterministic: the heap orders by
/// `(gain, Reverse(cell))`, so equal gains resolve to the smallest
/// cell index, and exhausted cells (gain 0) fall out in cell order.
fn marginal_coverage_order(instance: &Instance, pool: &mut [usize]) {
    if pool.len() <= 1 {
        return;
    }
    let classes = instance.num_radio_classes();
    let n = instance.num_users();
    let mut claimed = vec![false; n];
    let mut seen: Vec<u32> = vec![0; n];
    let mut epoch = 0u32;
    let mut marginal = |v: usize, claimed: &[bool], seen: &mut [u32]| -> u64 {
        epoch += 1;
        let mut count = 0u64;
        for class in 0..classes {
            instance.coverable_class(class, v).for_each_while(|u| {
                let u = u as usize;
                if seen[u] != epoch && !claimed[u] {
                    seen[u] = epoch;
                    count += 1;
                }
                true
            });
        }
        count
    };
    // (cached gain, Reverse(cell), commit round the cache was taken in).
    let mut heap: BinaryHeap<(u64, Reverse<usize>, usize)> = pool
        .iter()
        .map(|&v| (marginal(v, &claimed, &mut seen), Reverse(v), 0))
        .collect();
    let mut round = 0usize;
    let mut order = Vec::with_capacity(pool.len());
    while let Some((gain, Reverse(v), cached_round)) = heap.pop() {
        if cached_round == round || gain == 0 {
            // Fresh (or unimprovably empty): commit and claim.
            for class in 0..classes {
                instance.coverable_class(class, v).for_each_while(|u| {
                    claimed[u as usize] = true;
                    true
                });
            }
            order.push(v);
            round += 1;
        } else {
            heap.push((marginal(v, &claimed, &mut seen), Reverse(v), round));
        }
    }
    pool.copy_from_slice(&order);
}

/// Hop distances between pool members for the chain pruning (`None`
/// when the pruning is off or trivial), filled from the substrate's
/// precomputed rows — `O(pool²)` lookups, no BFS.
pub(crate) fn pool_distances(
    config: &ApproxConfig,
    pool: &[usize],
    sub: &ConnectivitySubstrate,
) -> Option<Vec<Vec<Option<u32>>>> {
    if !config.prune_chain || config.s < 2 {
        return None;
    }
    Some(
        pool.iter()
            .map(|&v| {
                let row = sub.hop_row(v);
                pool.iter()
                    .map(|&w| match row[w] {
                        UNREACHABLE_HOPS => None,
                        d => Some(u32::from(d)),
                    })
                    .collect()
            })
            .collect(),
    )
}

/// Reference implementation of the subset sweep kept for equivalence
/// testing: materializes every surviving subset up front and evaluates
/// them sequentially, each with a fresh workspace. Produces exactly the
/// same solution and (timing-independent) statistics as the streaming
/// sweep in [`approx_alg_with_stats`].
#[doc(hidden)]
pub fn approx_alg_materialized(
    instance: &Instance,
    config: &ApproxConfig,
) -> Result<(Solution, ApproxStats), CoreError> {
    let k = instance.num_uavs();
    let s = config.s;
    let m = instance.num_locations();
    if s > m {
        return Err(CoreError::InvalidParameters(format!(
            "s = {s} exceeds the {m} candidate locations"
        )));
    }
    let plan = SegmentPlan::optimal(k, s)?;
    // The substrate is still used for pool construction and chain
    // pruning (those must match the streaming sweep subset-for-subset),
    // but every per-subset computation below runs on the brute-force
    // BFS backend — this path is the differential oracle for the
    // substrate-backed one.
    let substrate = ConnectivitySubstrate::build(instance.location_graph())?;
    let pool = seed_pool(instance, config, &substrate);
    let chain_budgets: Vec<usize> = plan.p()[1..s].iter().map(|&p| p + 1).collect();
    let pool_dists = pool_distances(config, &pool, &substrate);

    let mut subsets: Vec<Vec<CellIndex>> = Vec::new();
    let mut enumerated = 0usize;
    let mut chain_pruned = 0usize;
    let mut combo = (0..s).collect::<Vec<usize>>();
    loop {
        enumerated += 1;
        let keep = match &pool_dists {
            Some(d) => chain_feasible(d, &combo, &chain_budgets),
            None => true,
        };
        if keep {
            subsets.push(combo.iter().map(|&i| pool[i]).collect());
            if let Some(limit) = config.max_subsets {
                if subsets.len() > limit {
                    return Err(CoreError::InvalidParameters(format!(
                        "more than {limit} seed subsets survive pruning; \
                         coarsen the grid or raise max_subsets"
                    )));
                }
            }
        } else {
            chain_pruned += 1;
        }
        if !next_combination(&mut combo, pool.len()) {
            break;
        }
    }

    let mut gain_queries = 0;
    let mut unconnectable = 0usize;
    type MaterializedBest = Option<(usize, usize, Vec<(usize, CellIndex)>, Vec<CellIndex>)>;
    let mut best: MaterializedBest = None;
    for (i, seeds) in subsets.iter().enumerate() {
        let mut ws = SweepWorkspace::new(instance);
        let mut profile = PhaseNanos::default();
        match ws.solve_subset(&plan, seeds, &mut profile) {
            SubsetOutcome::Served(served) => {
                let better = match &best {
                    None => true,
                    Some((bs, bi, _, _)) => served > *bs || (served == *bs && i < *bi),
                };
                if better {
                    best = Some((served, i, ws.placements().to_vec(), seeds.clone()));
                }
            }
            SubsetOutcome::Unconnectable => unconnectable += 1,
            SubsetOutcome::EscapedView => {
                unreachable!("the monolithic sweep runs without a tile view")
            }
        }
        gain_queries += ws.gain_queries();
    }

    let stats = ApproxStats {
        plan,
        seed_pool_size: pool.len(),
        subsets_enumerated: enumerated,
        subsets_chain_pruned: chain_pruned,
        subsets_bound_pruned: 0,
        subsets_evaluated: subsets.len(),
        subsets_unconnectable: unconnectable,
        best_seeds: best.as_ref().map(|(_, _, _, seeds)| seeds.clone()),
        gain_queries,
        tiles_solved: 0,
        view_escapes: 0,
        strategy: "exhaustive",
        profile: SweepProfile::default(),
    };
    let mut placements = match best {
        Some((_, _, placements, _)) => placements,
        None => fallback_single_uav(instance),
    };
    if config.deploy_leftovers {
        deploy_leftovers(instance, &mut placements);
    }
    let solution = score_deployment(instance, placements);
    #[cfg(feature = "debug-validate")]
    solution
        .validate(instance)
        .expect("debug-validate: sweep produced a solution its own validator rejects");
    Ok((solution, stats))
}

/// Greedily deploys the UAVs Algorithm 2 left grounded (`q_j < K`),
/// while the marginal gain of the optimal assignment stays positive.
///
/// Each round considers every *reachable* unoccupied cell: a cell `d`
/// hops from the network costs `d` leftover UAVs (`d − 1` zero-gain
/// relays along a shortest path, then the serving UAV). The round
/// deploys the chain maximizing gain per UAV spent, so the pass can
/// bridge toward a distant user pocket when enough fleet remains —
/// connectivity (and any gateway link) is preserved by construction.
pub(crate) fn deploy_leftovers(instance: &Instance, placements: &mut Vec<(usize, CellIndex)>) {
    use std::collections::VecDeque;
    use uavnet_flow::CapacitatedMatching;
    use uavnet_graph::{multi_source_hops, shortest_path};
    let graph = instance.location_graph();
    let m = instance.num_locations();
    // Undeployed UAVs, largest capacity first: servers pop from the
    // front, relay duty goes to the smallest leftovers at the back.
    let deployed: Vec<usize> = placements.iter().map(|&(u, _)| u).collect();
    let mut remaining: VecDeque<usize> = instance
        .uavs_by_capacity()
        .iter()
        .copied()
        .filter(|u| !deployed.contains(u))
        .collect();
    let mut matching = CapacitatedMatching::new(instance.num_users());
    let mut occupied = vec![false; m];
    for &(uav, loc) in placements.iter() {
        let st =
            matching.add_station_list(instance.uavs()[uav].capacity, instance.coverable(uav, loc));
        matching.saturate(st);
        occupied[loc] = true;
    }
    while let Some(&server) = remaining.front() {
        let budget = remaining.len();
        // Hop distance from the current network; with nothing deployed
        // yet, any single cell costs one UAV.
        let dist: Vec<Option<u32>> = if placements.is_empty() {
            vec![Some(1); m]
        } else {
            multi_source_hops(graph, placements.iter().map(|&(_, l)| l))
        };
        let cap = instance.uavs()[server].capacity;
        let mut best: Option<(f64, u32, usize)> = None; // (ratio, dist, cell)
        for c in 0..m {
            if occupied[c] {
                continue;
            }
            let Some(d) = dist[c] else { continue };
            let d = d.max(1);
            if d as usize > budget {
                continue;
            }
            let gain = matching.evaluate_station_list(cap, instance.coverable(server, c));
            if gain == 0 {
                continue;
            }
            let ratio = f64::from(gain) / f64::from(d);
            let better = match best {
                None => true,
                Some((br, bd, bc)) => {
                    ratio > br + 1e-12 || ((ratio - br).abs() <= 1e-12 && (d, c) < (bd, bc))
                }
            };
            if better {
                best = Some((ratio, d, c));
            }
        }
        let Some((_, d, target)) = best else { break };
        fn place(
            instance: &Instance,
            matching: &mut CapacitatedMatching,
            occupied: &mut [bool],
            placements: &mut Vec<(usize, CellIndex)>,
            uav: usize,
            loc: usize,
        ) {
            let st = matching
                .add_station_list(instance.uavs()[uav].capacity, instance.coverable(uav, loc));
            matching.saturate(st);
            occupied[loc] = true;
            placements.push((uav, loc));
        }
        if placements.is_empty() || d == 1 {
            let uav = remaining.pop_front().expect("checked front");
            place(
                instance,
                &mut matching,
                &mut occupied,
                placements,
                uav,
                target,
            );
            continue;
        }
        // Walk a shortest chain from the network to the target: relay
        // cells take the smallest leftovers, the target takes `server`.
        let start = placements
            .iter()
            .map(|&(_, l)| l)
            .min_by_key(|&l| uavnet_graph::hop_distance(graph, l, target).unwrap_or(u32::MAX))
            .expect("non-empty placements");
        let path = shortest_path(graph, start, target).expect("finite hop distance");
        for &cell in path.iter().skip(1) {
            if occupied[cell] {
                continue; // an existing network cell en route
            }
            let uav = if cell == target {
                remaining.pop_front().expect("budget checked")
            } else {
                remaining.pop_back().expect("budget checked")
            };
            place(
                instance,
                &mut matching,
                &mut occupied,
                placements,
                uav,
                cell,
            );
        }
    }
}

/// Best-effort fallback: the largest UAV alone at its best location
/// (restricted to gateway-capable cells when the scenario has an
/// uplink and any cell can reach it).
/// Whether the scenario has a gateway that no candidate cell can
/// reach. The uplink constraint is then unsatisfiable — every
/// non-empty deployment fails [`Solution::validate`]
/// (crate::Solution::validate) — so the sweeps short-circuit to the
/// empty deployment instead of "deploying" UAVs with no Internet path.
pub(crate) fn gateway_unsatisfiable(instance: &Instance) -> bool {
    instance.gateway().is_some() && instance.gateway_cells().is_empty()
}

/// The empty-deployment result both sweep variants return for an
/// unsatisfiable gateway, with zeroed statistics; shared so the
/// sharded path stays bit-identical to the monolithic one.
pub(crate) fn infeasible_gateway_result(
    instance: &Instance,
    config: &ApproxConfig,
    plan: SegmentPlan,
) -> (Solution, ApproxStats) {
    let stats = ApproxStats {
        plan,
        seed_pool_size: 0,
        subsets_enumerated: 0,
        subsets_chain_pruned: 0,
        subsets_bound_pruned: 0,
        subsets_evaluated: 0,
        subsets_unconnectable: 0,
        best_seeds: None,
        gain_queries: 0,
        tiles_solved: 0,
        view_escapes: 0,
        strategy: config.strategy.name(),
        profile: SweepProfile::default(),
    };
    let solution = score_deployment(instance, Vec::new());
    #[cfg(feature = "debug-validate")]
    solution
        .validate(instance)
        .expect("debug-validate: the empty deployment must always validate");
    crate::obs::record_sweep(config, &stats, &solution);
    (solution, stats)
}

pub(crate) fn fallback_single_uav(instance: &Instance) -> Vec<(usize, CellIndex)> {
    let uav = instance.uavs_by_capacity()[0];
    let gateway_cells = instance.gateway_cells();
    let candidates: Vec<usize> = if instance.gateway().is_some() && !gateway_cells.is_empty() {
        gateway_cells
    } else {
        (0..instance.num_locations()).collect()
    };
    let best_loc = candidates
        .into_iter()
        .max_by_key(|&loc| {
            (
                instance
                    .coverage_count(uav, loc)
                    .min(instance.uavs()[uav].capacity as usize),
                std::cmp::Reverse(loc),
            )
        })
        .expect("grids have at least one cell");
    vec![(uav, best_loc)]
}

/// Advances `combo` to the next size-`|combo|` combination of
/// `0..n` in lexicographic order; `false` when exhausted.
pub(crate) fn next_combination(combo: &mut [usize], n: usize) -> bool {
    let s = combo.len();
    let mut i = s;
    while i > 0 {
        i -= 1;
        if combo[i] < n - s + i {
            combo[i] += 1;
            for j in i + 1..s {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Does some ordering of `combo` respect consecutive hop budgets?
pub(crate) fn chain_feasible(
    pool_dists: &[Vec<Option<u32>>],
    combo: &[usize],
    budgets: &[usize],
) -> bool {
    debug_assert_eq!(budgets.len() + 1, combo.len());
    let mut perm: Vec<usize> = combo.to_vec();
    permute_check(&mut perm, 0, pool_dists, budgets)
}

fn permute_check(
    perm: &mut [usize],
    fixed: usize,
    d: &[Vec<Option<u32>>],
    budgets: &[usize],
) -> bool {
    let n = perm.len();
    if fixed == n {
        return true;
    }
    for i in fixed..n {
        perm.swap(fixed, i);
        let ok = fixed == 0
            || matches!(d[perm[fixed - 1]][perm[fixed]], Some(dist) if dist as usize <= budgets[fixed - 1]);
        if ok && permute_check(perm, fixed + 1, d, budgets) {
            perm.swap(fixed, i);
            return true;
        }
        perm.swap(fixed, i);
    }
    false
}

/// Per-worker accumulator for the sweep's phase timings; folded into
/// the shared atomics once per worker.
#[derive(Debug, Default)]
pub(crate) struct PhaseNanos {
    pub(crate) enumeration: u64,
    pub(crate) greedy: u64,
    pub(crate) connection: u64,
    pub(crate) scoring: u64,
    pub(crate) substrate_query: u64,
    pub(crate) tile_view: u64,
}

/// What [`SweepWorkspace::solve_subset`] decided about one seed subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubsetOutcome {
    /// The subset produced a connected deployment serving this many
    /// users; the placements are on the workspace.
    Served(usize),
    /// The connected set exceeded the fleet (or a component could not
    /// be connected at all).
    Unconnectable,
    /// The subset's ground set or relay paths left the workspace's tile
    /// view; the sharded sweep must re-solve it against a global
    /// workspace. Never returned without a view.
    EscapedView,
}

/// Per-worker reusable state for the subset sweep: the coverage oracle
/// (whose incremental-matching buffers persist across subsets via
/// [`CoverageOracle::reset`]), the lazy-greedy workspace, and the
/// ground/relay scratch vectors. One workspace evaluates thousands of
/// subsets without allocating on the oracle's query path.
pub(crate) struct SweepWorkspace<'a> {
    instance: &'a Instance,
    /// Precomputed hop structure; `None` runs the brute-force BFS
    /// backend (the materialized differential oracle).
    substrate: Option<&'a ConnectivitySubstrate>,
    /// Restricts the oracle to a tile view's local user remap; subsets
    /// whose structure leaves the view report [`SubsetOutcome::EscapedView`].
    view: Option<&'a crate::shard::TileView>,
    /// Sorted gateway-capable cells, for the substrate extension path.
    gateway_cells: Vec<CellIndex>,
    oracle: CoverageOracle<'a>,
    greedy: LazyGreedyWorkspace,
    ground: Vec<usize>,
    locs: Vec<usize>,
    relays: Vec<usize>,
}

impl<'a> SweepWorkspace<'a> {
    pub(crate) fn new(instance: &'a Instance) -> Self {
        SweepWorkspace {
            instance,
            substrate: None,
            view: None,
            gateway_cells: instance.gateway_cells(),
            oracle: CoverageOracle::new(instance),
            greedy: LazyGreedyWorkspace::new(),
            ground: Vec::new(),
            locs: Vec::new(),
            relays: Vec::new(),
        }
    }

    pub(crate) fn with_substrate(instance: &'a Instance, sub: &'a ConnectivitySubstrate) -> Self {
        let mut ws = SweepWorkspace::new(instance);
        ws.substrate = Some(sub);
        ws
    }

    /// A workspace whose oracle matches over the view's local user ids:
    /// the matching value is invariant under the remap, so served
    /// counts equal the global workspace's, while the matching arrays
    /// stay sized to the tile instead of the whole instance.
    pub(crate) fn with_view(
        instance: &'a Instance,
        sub: &'a ConnectivitySubstrate,
        view: &'a crate::shard::TileView,
    ) -> Self {
        let mut ws = SweepWorkspace::new(instance);
        ws.substrate = Some(sub);
        ws.view = Some(view);
        ws.oracle = CoverageOracle::with_view(instance, view);
        ws
    }

    /// The full deployment (greedy picks, forced seeds, then relays)
    /// of the last successful [`solve_subset`](Self::solve_subset).
    pub(crate) fn placements(&self) -> &[(usize, CellIndex)] {
        self.oracle.placements()
    }

    /// Cumulative gain queries across every subset this workspace
    /// evaluated.
    pub(crate) fn gain_queries(&self) -> u64 {
        self.oracle.gain_queries()
    }

    /// Greedy + connection + scoring for one seed subset; on
    /// [`SubsetOutcome::Served`] the deployment is
    /// [`placements`](Self::placements).
    pub(crate) fn solve_subset(
        &mut self,
        plan: &SegmentPlan,
        seeds: &[usize],
        profile: &mut PhaseNanos,
    ) -> SubsetOutcome {
        let instance = self.instance;
        let graph = instance.location_graph();
        let t = Instant::now();
        self.oracle.reset();
        let m2 = match self.substrate {
            Some(sub) => seed_matroid_substrate(sub, seeds, plan),
            None => seed_matroid(graph, seeds, plan),
        };
        if self.substrate.is_some() {
            profile.substrate_query += t.elapsed().as_nanos() as u64;
        }
        self.ground.clear();
        self.ground
            .extend((0..instance.num_locations()).filter(|&v| m2.depth_of(v).is_some()));
        // Escape before the first gain query: a ground cell outside the
        // view would be scored against a truncated user set, so the
        // subset must move to a global workspace instead.
        if let Some(view) = self.view {
            if self.ground.iter().any(|&v| !view.contains_loc(v)) {
                return SubsetOutcome::EscapedView;
            }
        }
        lazy_greedy_with(
            &mut self.greedy,
            &mut self.oracle,
            &self.ground,
            |set, e| m2.can_extend(set, e),
            GreedyOptions {
                max_picks: plan.l_max(),
                allow_zero_gain: false,
            },
        );
        // Seeds must end up in the chosen set (§III-E); commit any the
        // greedy skipped for lack of marginal value.
        for &seed in seeds {
            if !self.oracle.placements().iter().any(|&(_, l)| l == seed) {
                if self.oracle.next_uav().is_none() {
                    return SubsetOutcome::Unconnectable;
                }
                self.oracle.commit(seed);
            }
        }
        self.locs.clear();
        self.locs
            .extend(self.oracle.placements().iter().map(|&(_, l)| l));
        profile.greedy += t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let connected = match self.substrate {
            Some(sub) => connect_via_substrate(graph, sub, &self.locs),
            None => connect_via_mst(graph, &self.locs),
        };
        let Ok(mut all) = connected else {
            profile.connection += t.elapsed().as_nanos() as u64;
            return SubsetOutcome::Unconnectable;
        };
        if instance.gateway().is_some() {
            let extended = match self.substrate {
                Some(sub) => crate::connecting::extend_to_gateway_substrate(
                    graph,
                    sub,
                    &all,
                    &self.gateway_cells,
                ),
                None => crate::connecting::extend_to_gateway(graph, &all, |c| {
                    instance.is_gateway_cell(c)
                }),
            };
            let Ok(extra) = extended else {
                profile.connection += t.elapsed().as_nanos() as u64;
                return SubsetOutcome::Unconnectable;
            };
            all.extend(extra);
        }
        let connection = t.elapsed().as_nanos() as u64;
        profile.connection += connection;
        if self.substrate.is_some() {
            profile.substrate_query += connection;
        }
        // Relay paths (and any gateway extension) may route through
        // cells outside the view; check before the fleet bound so the
        // global re-solve is what decides unconnectability.
        if let Some(view) = self.view {
            if all.iter().any(|&v| !view.contains_loc(v)) {
                return SubsetOutcome::EscapedView;
            }
        }
        if all.len() > instance.num_uavs() {
            return SubsetOutcome::Unconnectable;
        }

        // Deploy the remaining (smaller) UAVs on the relays; give
        // larger leftovers to relays with more coverable users. Commits
        // continue down `uavs_by_capacity`, so scoring rides the same
        // incremental matching instead of re-solving the assignment
        // from scratch.
        let t = Instant::now();
        self.relays.clear();
        self.relays.extend_from_slice(&all[self.locs.len()..]);
        self.relays
            .sort_by_key(|&v| (Reverse(instance.best_coverage_count(v)), v));
        for i in 0..self.relays.len() {
            let relay = self.relays[i];
            debug_assert!(self.oracle.next_uav().is_some(), "fleet bound checked");
            self.oracle.commit(relay);
        }
        let served = self.oracle.served();
        profile.scoring += t.elapsed().as_nanos() as u64;
        SubsetOutcome::Served(served)
    }
}

/// Extracts a human-readable message from a joined thread's panic
/// payload. `panic!` with a format string yields a `String`, a literal
/// yields `&'static str`; anything else (a custom `panic_any` value)
/// gets a placeholder rather than being dropped silently.
pub(crate) fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// `C(n, k)`, saturating at `u64::MAX`. Exact for every value the sweep
/// can actually enumerate; a saturated total only means the cursor
/// never reaches the end, and `max_subsets` trips long before.
pub(crate) fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut r: u128 = 1;
    for i in 0..k {
        // Incrementally exact: after this step r = C(n - k + 1 + i, i + 1).
        r = r * (n - k + 1 + i) as u128 / (i + 1) as u128;
        if r > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    r as u64
}

/// Writes the `rank`-th (0-based, lexicographic) `s`-combination of
/// `0..n` into `combo` — combinadic unranking, the random-access
/// counterpart of [`next_combination`].
pub(crate) fn unrank_combination(mut rank: u64, n: usize, s: usize, combo: &mut Vec<usize>) {
    debug_assert!(rank < binomial(n, s));
    combo.clear();
    let mut next = 0usize;
    for remaining in (1..=s).rev() {
        loop {
            // Combinations starting with `next` among those left.
            let with_next = binomial(n - next - 1, remaining - 1);
            if rank < with_next {
                combo.push(next);
                next += 1;
                break;
            }
            rank -= with_next;
            next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn grid(cell: f64, side: f64) -> uavnet_geom::Grid {
        GridSpec::new(AreaSpec::new(side, side, 500.0).unwrap(), cell, 300.0)
            .unwrap()
            .build()
    }

    /// Two user clusters at opposite corners plus a sparse middle.
    fn two_cluster_instance() -> Instance {
        let mut b = Instance::builder(grid(300.0, 1500.0), 450.0);
        for i in 0..6 {
            b.add_user(Point2::new(100.0 + 10.0 * i as f64, 120.0), 2_000.0);
        }
        for i in 0..6 {
            b.add_user(Point2::new(1_350.0 + 10.0 * i as f64, 1_380.0), 2_000.0);
        }
        b.add_user(Point2::new(750.0, 750.0), 2_000.0);
        for cap in [4u32, 3, 3, 2, 2, 2] {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, 400.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn solves_and_validates_two_clusters() {
        let inst = two_cluster_instance();
        let (sol, stats) =
            approx_alg_with_stats(&inst, &ApproxConfig::with_s(1).threads(2)).unwrap();
        sol.validate(&inst).unwrap();
        assert!(sol.served_users() >= 6, "served {}", sol.served_users());
        assert!(stats.subsets_evaluated > 0);
        assert!(stats.best_seeds.is_some());
    }

    #[test]
    fn s2_stays_close_to_s1_on_clusters() {
        // Only the *guarantee* is monotone in s, not every realized
        // value; on this instance the two must stay within a couple of
        // users of each other.
        let inst = two_cluster_instance();
        let s1 = approx_alg(&inst, &ApproxConfig::with_s(1).threads(2)).unwrap();
        let s2 = approx_alg(&inst, &ApproxConfig::with_s(2).threads(2)).unwrap();
        s1.validate(&inst).unwrap();
        s2.validate(&inst).unwrap();
        assert!(
            s2.served_users() + 2 >= s1.served_users(),
            "s=2 served {} far below s=1 served {}",
            s2.served_users(),
            s1.served_users()
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let inst = two_cluster_instance();
        let a = approx_alg(&inst, &ApproxConfig::with_s(2).threads(1)).unwrap();
        let b = approx_alg(&inst, &ApproxConfig::with_s(2).threads(4)).unwrap();
        assert_eq!(a.served_users(), b.served_users());
        assert_eq!(a.deployment().placements(), b.deployment().placements());
    }

    #[test]
    fn pruned_run_never_beats_unpruned() {
        let inst = two_cluster_instance();
        let pruned = approx_alg(&inst, &ApproxConfig::with_s(2).threads(2)).unwrap();
        let unpruned = approx_alg(
            &inst,
            &ApproxConfig::with_s(2)
                .threads(2)
                .prune_chain(false)
                .prune_empty_seeds(false),
        )
        .unwrap();
        pruned.validate(&inst).unwrap();
        unpruned.validate(&inst).unwrap();
        // The pruned sweep evaluates a subset of the full enumeration.
        assert!(pruned.served_users() <= unpruned.served_users());
        // …and still retains a competitive value on this instance.
        assert!(2 * pruned.served_users() >= unpruned.served_users());
    }

    #[test]
    fn respects_max_subsets_guard() {
        let inst = two_cluster_instance();
        let err = approx_alg(&inst, &ApproxConfig::with_s(2).max_subsets(1)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameters(_)));
    }

    #[test]
    fn rejects_oversized_s() {
        let inst = two_cluster_instance();
        assert!(approx_alg(&inst, &ApproxConfig::with_s(0)).is_err());
        assert!(approx_alg(&inst, &ApproxConfig::with_s(7)).is_err()); // K = 6
    }

    #[test]
    fn single_uav_fleet_still_works() {
        let mut b = Instance::builder(grid(300.0, 900.0), 600.0);
        b.add_user(Point2::new(450.0, 450.0), 2_000.0);
        b.add_user(Point2::new(460.0, 450.0), 2_000.0);
        b.add_uav(1, UavRadio::new(30.0, 5.0, 500.0));
        let inst = b.build().unwrap();
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1)).unwrap();
        sol.validate(&inst).unwrap();
        assert_eq!(sol.served_users(), 1);
        assert_eq!(sol.deployment().len(), 1);
    }

    #[test]
    fn no_coverable_users_falls_back_gracefully() {
        let mut b = Instance::builder(grid(300.0, 900.0), 600.0);
        b.add_user(Point2::new(450.0, 450.0), 1e15); // unservable rate
        b.add_uav(2, UavRadio::new(30.0, 5.0, 500.0));
        b.add_uav(2, UavRadio::new(30.0, 5.0, 500.0));
        let inst = b.build().unwrap();
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1)).unwrap();
        sol.validate(&inst).unwrap();
        assert_eq!(sol.served_users(), 0);
    }

    #[test]
    fn chain_feasibility_logic() {
        // Pool of 3 nodes on a line: distances 0-1: 1, 1-2: 1, 0-2: 2.
        let d = vec![
            vec![Some(0), Some(1), Some(2)],
            vec![Some(1), Some(0), Some(1)],
            vec![Some(2), Some(1), Some(0)],
        ];
        // Budget 1 between consecutive seeds: {0, 2} infeasible, but
        // {0, 1} and any ordering of {0, 1, 2} with budgets [1, 1]
        // feasible via the middle node.
        assert!(chain_feasible(&d, &[0, 1], &[1]));
        assert!(!chain_feasible(&d, &[0, 2], &[1]));
        assert!(chain_feasible(&d, &[0, 2], &[2]));
        assert!(chain_feasible(&d, &[0, 1, 2], &[1, 1]));
        assert!(chain_feasible(&d, &[2, 0, 1], &[1, 1])); // order-free
    }

    #[test]
    fn config_accessors_reflect_builders() {
        let c = ApproxConfig::with_s(3);
        assert_eq!(c.s(), 3);
        assert!(c.is_chain_pruning());
        assert!(c.is_empty_seed_pruning());
        assert!(c.is_leftover_deployment());
        assert!(c.num_threads() >= 1);
        let c = c
            .prune_chain(false)
            .prune_empty_seeds(false)
            .leftover_deployment(false)
            .threads(0); // clamped up to 1
        assert!(!c.is_chain_pruning());
        assert!(!c.is_empty_seed_pruning());
        assert!(!c.is_leftover_deployment());
        assert_eq!(c.num_threads(), 1);
    }

    #[test]
    fn more_uavs_than_cells_is_handled() {
        // K = 12 UAVs over a 3×3 grid (m = 9): at most 9 can deploy.
        let mut b = Instance::builder(grid(300.0, 900.0), 450.0);
        for i in 0..10 {
            b.add_user(Point2::new(80.0 + 75.0 * i as f64, 450.0), 2_000.0);
        }
        for _ in 0..12 {
            b.add_uav(1, UavRadio::new(30.0, 5.0, 400.0));
        }
        let inst = b.build().unwrap();
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1).threads(1)).unwrap();
        sol.validate(&inst).unwrap();
        assert!(sol.deployment().len() <= 9);
        assert!(sol.served_users() > 0);
    }

    #[test]
    fn gateway_constraint_is_honored() {
        // Same two-cluster zone, but the uplink vehicle parks at the
        // south-west corner; the winning deployment must reach it.
        let mut b = Instance::builder(grid(300.0, 1500.0), 450.0);
        for i in 0..6 {
            b.add_user(Point2::new(1_300.0 + 10.0 * i as f64, 1_380.0), 2_000.0);
        }
        b.gateway(Point2::new(0.0, 0.0));
        for cap in [4u32, 3, 3, 2, 2, 2, 2, 2] {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, 400.0));
        }
        let inst = b.build().unwrap();
        assert!(!inst.gateway_cells().is_empty());
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1).threads(2)).unwrap();
        sol.validate(&inst).unwrap();
        assert!(sol
            .deployment()
            .locations()
            .iter()
            .any(|&l| inst.is_gateway_cell(l)));
        assert!(sol.served_users() > 0);
    }

    #[test]
    fn stats_account_for_all_subsets() {
        let inst = two_cluster_instance();
        let (_, stats) = approx_alg_with_stats(&inst, &ApproxConfig::with_s(2).threads(2)).unwrap();
        assert_eq!(
            stats.subsets_enumerated,
            stats.subsets_evaluated + stats.subsets_chain_pruned
        );
        assert!(stats.subsets_unconnectable <= stats.subsets_evaluated);
        assert!(stats.gain_queries > 0);
    }

    #[test]
    fn binomial_matches_pascal_triangle() {
        for n in 0..20usize {
            for k in 0..=n {
                let expect = if k == 0 {
                    1
                } else {
                    binomial(n - 1, k - 1).saturating_add(binomial(n.saturating_sub(1), k))
                };
                assert_eq!(binomial(n, k), expect, "C({n}, {k})");
            }
        }
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(u32::MAX as usize, 20), u64::MAX); // saturates
    }

    #[test]
    fn unranking_agrees_with_lexicographic_enumeration() {
        for (n, s) in [(1usize, 1usize), (5, 1), (6, 2), (7, 3), (8, 5)] {
            let mut combo = (0..s).collect::<Vec<usize>>();
            let mut rank = 0u64;
            loop {
                let mut unranked = Vec::new();
                unrank_combination(rank, n, s, &mut unranked);
                assert_eq!(unranked, combo, "rank {rank} of C({n}, {s})");
                rank += 1;
                if !next_combination(&mut combo, n) {
                    break;
                }
            }
            assert_eq!(rank, binomial(n, s));
        }
    }

    #[test]
    fn streaming_matches_materialized_reference() {
        let inst = two_cluster_instance();
        for s in [1usize, 2] {
            let config = ApproxConfig::with_s(s).threads(4);
            let (ref_sol, ref_stats) = approx_alg_materialized(&inst, &config).unwrap();
            let (sol, stats) = approx_alg_with_stats(&inst, &config).unwrap();
            assert_eq!(
                sol.deployment().placements(),
                ref_sol.deployment().placements(),
                "s = {s}"
            );
            assert_eq!(sol.served_users(), ref_sol.served_users());
            assert_eq!(stats.subsets_enumerated, ref_stats.subsets_enumerated);
            assert_eq!(stats.subsets_chain_pruned, ref_stats.subsets_chain_pruned);
            assert_eq!(stats.subsets_evaluated, ref_stats.subsets_evaluated);
            assert_eq!(stats.subsets_unconnectable, ref_stats.subsets_unconnectable);
            assert_eq!(stats.best_seeds, ref_stats.best_seeds);
            assert_eq!(stats.gain_queries, ref_stats.gain_queries);
        }
    }

    #[test]
    fn unreachable_gateway_returns_the_empty_deployment() {
        let mut b = Instance::builder(grid(300.0, 1500.0), 450.0);
        b.add_user(Point2::new(100.0, 120.0), 2_000.0);
        b.add_uav(4, UavRadio::new(30.0, 5.0, 400.0));
        b.gateway(Point2::new(1.0e6, 1.0e6));
        let inst = b.build().unwrap();
        assert!(inst.gateway_cells().is_empty());
        let config = ApproxConfig::with_s(1).threads(2);
        let (sol, stats) = approx_alg_with_stats(&inst, &config).unwrap();
        sol.validate(&inst).unwrap();
        assert!(sol.deployment().placements().is_empty());
        assert_eq!(sol.served_users(), 0);
        assert_eq!(stats.gain_queries, 0);
        let (shard_sol, shard_stats) =
            crate::approx_alg_sharded(&inst, &config, &crate::ShardConfig::new()).unwrap();
        assert_eq!(shard_sol.deployment(), sol.deployment());
        assert_eq!(shard_stats.gain_queries, 0);
    }

    #[test]
    fn gain_queries_are_thread_count_invariant() {
        let inst = two_cluster_instance();
        let counts: Vec<u64> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                approx_alg_with_stats(&inst, &ApproxConfig::with_s(2).threads(t))
                    .unwrap()
                    .1
                    .gain_queries
            })
            .collect();
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[0], counts[2]);
    }
}
