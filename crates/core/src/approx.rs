//! Algorithm 2 — `approAlg`, the `O(√(s/K))`-approximation for the
//! maximum connected coverage problem (§III-E).
//!
//! For every `s`-subset of candidate locations (the *seeds*
//! `{v*_1 … v*_s}`):
//!
//! 1. run the two-matroid lazy greedy: deploy UAVs in non-increasing
//!    capacity order, each at the feasible location (w.r.t. the
//!    hop-budget matroid `M2`) with the largest exact marginal gain of
//!    the optimal assignment;
//! 2. connect the chosen locations with an MST over hop distances,
//!    expanding tree edges to shortest relay paths (Fig. 3);
//! 3. discard the subset if the connected set needs more than `K`
//!    UAVs; otherwise deploy the remaining (smaller) UAVs on the relay
//!    locations and score the deployment with the optimal assignment.
//!
//! The best subset wins. Two prunings keep the `C(m, s)` enumeration
//! tractable (both on by default; disable both to run the *literal*
//! paper algorithm with its full `O(K² n² m^{s+1})` enumeration):
//!
//! * **empty-seed pruning** — drops locations covering zero users from
//!   the seed pool (they can still appear as greedy picks or relays);
//! * **chain pruning** — the ratio analysis positions its witness
//!   seeds along a path split, so consecutive witness seeds sit at
//!   most `p*_i + 1` hops apart; subsets admitting no such ordering
//!   are skipped.
//!
//! Both prunings are heuristics: they retain the analysis' witness
//! subsets in the common case but may skip a subset that would have
//! scored higher (the relay bound `g` is only an upper bound on the
//! true connection cost). The test-suite checks that pruned runs never
//! *exceed* unpruned runs and stay competitive; EXPERIMENTS.md
//! quantifies the gap at evaluation scale.
//!
//! A third engineering default, the **leftover pass**, re-deploys the
//! `K − q_j` UAVs the paper's listing leaves grounded: each round it
//! spends `d` leftover UAVs to reach the unoccupied cell `d` hops from
//! the network with the best gain-per-UAV, relays included — a strict
//! improvement that preserves connectivity (and the gateway link).
//! `ApproxConfig::leftover_deployment(false)` restores the literal
//! behavior.

use crate::connecting::connect_via_mst;
use crate::oracle::CoverageOracle;
use crate::seed_matroid::seed_matroid;
use crate::solution::{score_deployment, Solution};
use crate::{CoreError, Instance, SegmentPlan};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::sync::atomic::{AtomicUsize, Ordering};
use uavnet_geom::CellIndex;
use uavnet_graph::bfs_hops;
use uavnet_matroid::{lazy_greedy, GreedyOptions, MarginalOracle as _, Matroid as _};

/// Configuration of [`approx_alg`].
///
/// # Examples
///
/// ```
/// use uavnet_core::ApproxConfig;
/// let config = ApproxConfig::with_s(3).threads(4).prune_chain(false);
/// assert_eq!(config.s(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ApproxConfig {
    s: usize,
    prune_chain: bool,
    prune_empty_seeds: bool,
    threads: usize,
    max_subsets: Option<usize>,
    deploy_leftovers: bool,
}

impl ApproxConfig {
    /// A configuration with seed count `s` and default pruning
    /// (both prunings on, one worker thread per available core).
    pub fn with_s(s: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ApproxConfig {
            s,
            prune_chain: true,
            prune_empty_seeds: true,
            threads,
            max_subsets: None,
            deploy_leftovers: true,
        }
    }

    /// Enables/disables the leftover pass: after the winning subset is
    /// connected, UAVs that Algorithm 2 would leave grounded
    /// (`q_j < K`) are deployed greedily on cells adjacent to the
    /// network while their marginal gain is positive. A strict
    /// improvement that preserves connectivity; disable for the
    /// literal paper algorithm.
    pub fn leftover_deployment(mut self, on: bool) -> Self {
        self.deploy_leftovers = on;
        self
    }

    /// Sets the number of worker threads for the subset sweep. The
    /// result is deterministic regardless of this value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables/disables the consecutive-seed hop-distance pruning.
    pub fn prune_chain(mut self, on: bool) -> Self {
        self.prune_chain = on;
        self
    }

    /// Enables/disables dropping zero-coverage locations from the seed
    /// pool.
    pub fn prune_empty_seeds(mut self, on: bool) -> Self {
        self.prune_empty_seeds = on;
        self
    }

    /// Aborts with an error if more than `limit` subsets survive
    /// pruning — a guard against accidentally huge enumerations.
    pub fn max_subsets(mut self, limit: usize) -> Self {
        self.max_subsets = Some(limit);
        self
    }

    /// The seed count `s`.
    pub fn s(&self) -> usize {
        self.s
    }

    /// Whether chain pruning is enabled.
    pub fn is_chain_pruning(&self) -> bool {
        self.prune_chain
    }

    /// Whether empty-seed pruning is enabled.
    pub fn is_empty_seed_pruning(&self) -> bool {
        self.prune_empty_seeds
    }

    /// Whether the leftover-deployment pass is enabled.
    pub fn is_leftover_deployment(&self) -> bool {
        self.deploy_leftovers
    }

    /// Worker threads for the subset sweep.
    pub fn num_threads(&self) -> usize {
        self.threads
    }
}

/// Run statistics of [`approx_alg_with_stats`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ApproxStats {
    /// The segment plan from Algorithm 1.
    pub plan: SegmentPlan,
    /// Locations admitted to the seed pool.
    pub seed_pool_size: usize,
    /// `s`-subsets enumerated before chain pruning.
    pub subsets_enumerated: usize,
    /// Subsets dropped by the chain pruning.
    pub subsets_chain_pruned: usize,
    /// Subsets fully evaluated (greedy + connection + scoring).
    pub subsets_evaluated: usize,
    /// Evaluated subsets whose connected set exceeded `K` UAVs or
    /// could not be connected at all.
    pub subsets_unconnectable: usize,
    /// The winning seed subset, if any subset produced a deployment.
    pub best_seeds: Option<Vec<CellIndex>>,
}

/// Runs Algorithm 2 and returns the best solution found.
///
/// Always returns a valid, connected deployment: if every seed subset
/// fails the relay budget, it falls back to the single best location
/// for the largest UAV (a one-node network is trivially connected).
///
/// # Errors
///
/// * [`CoreError::InvalidParameters`] if `s` is zero, exceeds the
///   fleet size or the number of candidate locations, or the surviving
///   enumeration exceeds the configured `max_subsets`.
///
/// See the [crate-level example](crate) for usage.
pub fn approx_alg(instance: &Instance, config: &ApproxConfig) -> Result<Solution, CoreError> {
    approx_alg_with_stats(instance, config).map(|(sol, _)| sol)
}

/// [`approx_alg`] plus run statistics.
pub fn approx_alg_with_stats(
    instance: &Instance,
    config: &ApproxConfig,
) -> Result<(Solution, ApproxStats), CoreError> {
    let k = instance.num_uavs();
    let s = config.s;
    let m = instance.num_locations();
    if s > m {
        return Err(CoreError::InvalidParameters(format!(
            "s = {s} exceeds the {m} candidate locations"
        )));
    }
    let plan = SegmentPlan::optimal(k, s)?;

    // Seed pool.
    let mut pool: Vec<usize> = (0..m)
        .filter(|&v| !config.prune_empty_seeds || instance.best_coverage_count(v) > 0)
        .collect();
    if pool.len() < s {
        // Degenerate coverage: refill so that the enumeration exists.
        pool = (0..m).collect();
    }

    // Hop distances between pool members for the chain pruning.
    let graph = instance.location_graph();
    let chain_budgets: Vec<usize> = plan.p()[1..s].iter().map(|&p| p + 1).collect();
    let pool_dists: Option<Vec<Vec<Option<u32>>>> = if config.prune_chain && s >= 2 {
        let index_of: Vec<Option<usize>> = {
            let mut idx = vec![None; m];
            for (i, &v) in pool.iter().enumerate() {
                idx[v] = Some(i);
            }
            idx
        };
        Some(
            pool.iter()
                .map(|&v| {
                    let d = bfs_hops(graph, v);
                    let mut row = vec![None; pool.len()];
                    for (loc, dist) in d.into_iter().enumerate() {
                        if let (Some(i), Some(dist)) = (index_of[loc], dist) {
                            row[i] = Some(dist);
                        }
                    }
                    row
                })
                .collect(),
        )
    } else {
        None
    };

    // Enumerate seed subsets (indices into the pool).
    let mut subsets: Vec<Vec<usize>> = Vec::new();
    let mut enumerated = 0usize;
    let mut chain_pruned = 0usize;
    let mut combo = (0..s).collect::<Vec<usize>>();
    if s <= pool.len() {
        loop {
            enumerated += 1;
            let keep = match &pool_dists {
                Some(d) => chain_feasible(d, &combo, &chain_budgets),
                None => true,
            };
            if keep {
                subsets.push(combo.iter().map(|&i| pool[i]).collect());
                if let Some(limit) = config.max_subsets {
                    if subsets.len() > limit {
                        return Err(CoreError::InvalidParameters(format!(
                            "more than {limit} seed subsets survive pruning; \
                             coarsen the grid or raise max_subsets"
                        )));
                    }
                }
            } else {
                chain_pruned += 1;
            }
            if !next_combination(&mut combo, pool.len()) {
                break;
            }
        }
    }

    // Parallel sweep over the surviving subsets.
    let next = AtomicUsize::new(0);
    let unconnectable = AtomicUsize::new(0);
    type Best = Option<(usize, usize, Vec<(usize, CellIndex)>, Vec<CellIndex>)>;
    let best: Mutex<Best> = Mutex::new(None);
    let threads = config.threads.min(subsets.len().max(1));
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(seeds) = subsets.get(i) else { break };
                match solve_subset(instance, &plan, seeds) {
                    Some((served, placements)) => {
                        let mut guard = best.lock();
                        let better = match &*guard {
                            None => true,
                            Some((bs, bi, _, _)) => served > *bs || (served == *bs && i < *bi),
                        };
                        if better {
                            *guard = Some((served, i, placements, seeds.clone()));
                        }
                    }
                    None => {
                        unconnectable.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    })
    .expect("subset sweep worker panicked");

    let best = best.into_inner();
    let stats = ApproxStats {
        plan,
        seed_pool_size: pool.len(),
        subsets_enumerated: enumerated,
        subsets_chain_pruned: chain_pruned,
        subsets_evaluated: subsets.len(),
        subsets_unconnectable: unconnectable.load(Ordering::Relaxed),
        best_seeds: best.as_ref().map(|(_, _, _, seeds)| seeds.clone()),
    };

    let mut placements = match best {
        Some((_, _, placements, _)) => placements,
        None => fallback_single_uav(instance),
    };
    if config.deploy_leftovers {
        deploy_leftovers(instance, &mut placements);
    }
    Ok((score_deployment(instance, placements), stats))
}

/// Greedily deploys the UAVs Algorithm 2 left grounded (`q_j < K`),
/// while the marginal gain of the optimal assignment stays positive.
///
/// Each round considers every *reachable* unoccupied cell: a cell `d`
/// hops from the network costs `d` leftover UAVs (`d − 1` zero-gain
/// relays along a shortest path, then the serving UAV). The round
/// deploys the chain maximizing gain per UAV spent, so the pass can
/// bridge toward a distant user pocket when enough fleet remains —
/// connectivity (and any gateway link) is preserved by construction.
fn deploy_leftovers(instance: &Instance, placements: &mut Vec<(usize, CellIndex)>) {
    use std::collections::VecDeque;
    use uavnet_flow::CapacitatedMatching;
    use uavnet_graph::{multi_source_hops, shortest_path};
    let graph = instance.location_graph();
    let m = instance.num_locations();
    // Undeployed UAVs, largest capacity first: servers pop from the
    // front, relay duty goes to the smallest leftovers at the back.
    let deployed: Vec<usize> = placements.iter().map(|&(u, _)| u).collect();
    let mut remaining: VecDeque<usize> = instance
        .uavs_by_capacity()
        .iter()
        .copied()
        .filter(|u| !deployed.contains(u))
        .collect();
    let mut matching = CapacitatedMatching::new(instance.num_users());
    let mut occupied = vec![false; m];
    for &(uav, loc) in placements.iter() {
        let st = matching.add_station(
            instance.uavs()[uav].capacity,
            instance.coverable(uav, loc).to_vec(),
        );
        matching.saturate(st);
        occupied[loc] = true;
    }
    while let Some(&server) = remaining.front() {
        let budget = remaining.len();
        // Hop distance from the current network; with nothing deployed
        // yet, any single cell costs one UAV.
        let dist: Vec<Option<u32>> = if placements.is_empty() {
            vec![Some(1); m]
        } else {
            multi_source_hops(graph, placements.iter().map(|&(_, l)| l))
        };
        let cap = instance.uavs()[server].capacity;
        let mut best: Option<(f64, u32, usize)> = None; // (ratio, dist, cell)
        for c in 0..m {
            if occupied[c] {
                continue;
            }
            let Some(d) = dist[c] else { continue };
            let d = d.max(1);
            if d as usize > budget {
                continue;
            }
            let gain = matching.evaluate_station(cap, instance.coverable(server, c));
            if gain == 0 {
                continue;
            }
            let ratio = f64::from(gain) / f64::from(d);
            let better = match best {
                None => true,
                Some((br, bd, bc)) => {
                    ratio > br + 1e-12 || ((ratio - br).abs() <= 1e-12 && (d, c) < (bd, bc))
                }
            };
            if better {
                best = Some((ratio, d, c));
            }
        }
        let Some((_, d, target)) = best else { break };
        fn place(
            instance: &Instance,
            matching: &mut CapacitatedMatching,
            occupied: &mut [bool],
            placements: &mut Vec<(usize, CellIndex)>,
            uav: usize,
            loc: usize,
        ) {
            let st = matching.add_station(
                instance.uavs()[uav].capacity,
                instance.coverable(uav, loc).to_vec(),
            );
            matching.saturate(st);
            occupied[loc] = true;
            placements.push((uav, loc));
        }
        if placements.is_empty() || d == 1 {
            let uav = remaining.pop_front().expect("checked front");
            place(instance, &mut matching, &mut occupied, placements, uav, target);
            continue;
        }
        // Walk a shortest chain from the network to the target: relay
        // cells take the smallest leftovers, the target takes `server`.
        let start = placements
            .iter()
            .map(|&(_, l)| l)
            .min_by_key(|&l| uavnet_graph::hop_distance(graph, l, target).unwrap_or(u32::MAX))
            .expect("non-empty placements");
        let path = shortest_path(graph, start, target).expect("finite hop distance");
        for &cell in path.iter().skip(1) {
            if occupied[cell] {
                continue; // an existing network cell en route
            }
            let uav = if cell == target {
                remaining.pop_front().expect("budget checked")
            } else {
                remaining.pop_back().expect("budget checked")
            };
            place(instance, &mut matching, &mut occupied, placements, uav, cell);
        }
    }
}

/// Best-effort fallback: the largest UAV alone at its best location
/// (restricted to gateway-capable cells when the scenario has an
/// uplink and any cell can reach it).
fn fallback_single_uav(instance: &Instance) -> Vec<(usize, CellIndex)> {
    let uav = instance.uavs_by_capacity()[0];
    let gateway_cells = instance.gateway_cells();
    let candidates: Vec<usize> = if instance.gateway().is_some() && !gateway_cells.is_empty() {
        gateway_cells
    } else {
        (0..instance.num_locations()).collect()
    };
    let best_loc = candidates
        .into_iter()
        .max_by_key(|&loc| {
            (
                instance
                    .coverage_count(uav, loc)
                    .min(instance.uavs()[uav].capacity as usize),
                std::cmp::Reverse(loc),
            )
        })
        .expect("grids have at least one cell");
    vec![(uav, best_loc)]
}

/// Advances `combo` to the next size-`|combo|` combination of
/// `0..n` in lexicographic order; `false` when exhausted.
fn next_combination(combo: &mut [usize], n: usize) -> bool {
    let s = combo.len();
    let mut i = s;
    while i > 0 {
        i -= 1;
        if combo[i] < n - s + i {
            combo[i] += 1;
            for j in i + 1..s {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Does some ordering of `combo` respect consecutive hop budgets?
fn chain_feasible(
    pool_dists: &[Vec<Option<u32>>],
    combo: &[usize],
    budgets: &[usize],
) -> bool {
    debug_assert_eq!(budgets.len() + 1, combo.len());
    let mut perm: Vec<usize> = combo.to_vec();
    permute_check(&mut perm, 0, pool_dists, budgets)
}

fn permute_check(
    perm: &mut [usize],
    fixed: usize,
    d: &[Vec<Option<u32>>],
    budgets: &[usize],
) -> bool {
    let n = perm.len();
    if fixed == n {
        return true;
    }
    for i in fixed..n {
        perm.swap(fixed, i);
        let ok = fixed == 0
            || matches!(d[perm[fixed - 1]][perm[fixed]], Some(dist) if dist as usize <= budgets[fixed - 1]);
        if ok && permute_check(perm, fixed + 1, d, budgets) {
            perm.swap(fixed, i);
            return true;
        }
        perm.swap(fixed, i);
    }
    false
}

/// Greedy + connection + scoring for one seed subset. Returns `None`
/// when the connected set would exceed the fleet.
fn solve_subset(
    instance: &Instance,
    plan: &SegmentPlan,
    seeds: &[usize],
) -> Option<(usize, Vec<(usize, CellIndex)>)> {
    let graph = instance.location_graph();
    let m2 = seed_matroid(graph, seeds, plan);
    let ground: Vec<usize> = (0..instance.num_locations())
        .filter(|&v| m2.depth_of(v).is_some())
        .collect();
    let mut oracle = CoverageOracle::new(instance);
    lazy_greedy(
        &mut oracle,
        &ground,
        |set, e| m2.can_extend(set, e),
        GreedyOptions {
            max_picks: plan.l_max(),
            allow_zero_gain: false,
        },
    );
    // Seeds must end up in the chosen set (§III-E); commit any the
    // greedy skipped for lack of marginal value.
    for &seed in seeds {
        if !oracle.placements().iter().any(|&(_, l)| l == seed) {
            oracle.next_uav()?;
            oracle.commit(seed);
        }
    }
    let locs: Vec<usize> = oracle.placements().iter().map(|&(_, l)| l).collect();
    let mut all = connect_via_mst(graph, &locs).ok()?;
    if instance.gateway().is_some() {
        let extra =
            crate::connecting::extend_to_gateway(graph, &all, |c| instance.is_gateway_cell(c))
                .ok()?;
        all.extend(extra);
    }
    if all.len() > instance.num_uavs() {
        return None;
    }
    // Deploy the remaining (smaller) UAVs on the relays; give larger
    // leftovers to relays with more coverable users.
    let mut relays: Vec<usize> = all[locs.len()..].to_vec();
    relays.sort_by_key(|&v| (Reverse(instance.best_coverage_count(v)), v));
    let mut placements = oracle.placements().to_vec();
    let order = instance.uavs_by_capacity();
    for (i, &relay) in relays.iter().enumerate() {
        placements.push((order[locs.len() + i], relay));
    }
    let assignment = crate::assign::assign_users(instance, &placements);
    Some((assignment.served, placements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uavnet_channel::UavRadio;
    use uavnet_geom::{AreaSpec, GridSpec, Point2};

    fn grid(cell: f64, side: f64) -> uavnet_geom::Grid {
        GridSpec::new(AreaSpec::new(side, side, 500.0).unwrap(), cell, 300.0)
            .unwrap()
            .build()
    }

    /// Two user clusters at opposite corners plus a sparse middle.
    fn two_cluster_instance() -> Instance {
        let mut b = Instance::builder(grid(300.0, 1500.0), 450.0);
        for i in 0..6 {
            b.add_user(Point2::new(100.0 + 10.0 * i as f64, 120.0), 2_000.0);
        }
        for i in 0..6 {
            b.add_user(Point2::new(1_350.0 + 10.0 * i as f64, 1_380.0), 2_000.0);
        }
        b.add_user(Point2::new(750.0, 750.0), 2_000.0);
        for cap in [4u32, 3, 3, 2, 2, 2] {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, 400.0));
        }
        b.build().unwrap()
    }

    #[test]
    fn solves_and_validates_two_clusters() {
        let inst = two_cluster_instance();
        let (sol, stats) = approx_alg_with_stats(&inst, &ApproxConfig::with_s(1).threads(2)).unwrap();
        sol.validate(&inst).unwrap();
        assert!(sol.served_users() >= 6, "served {}", sol.served_users());
        assert!(stats.subsets_evaluated > 0);
        assert!(stats.best_seeds.is_some());
    }

    #[test]
    fn s2_stays_close_to_s1_on_clusters() {
        // Only the *guarantee* is monotone in s, not every realized
        // value; on this instance the two must stay within a couple of
        // users of each other.
        let inst = two_cluster_instance();
        let s1 = approx_alg(&inst, &ApproxConfig::with_s(1).threads(2)).unwrap();
        let s2 = approx_alg(&inst, &ApproxConfig::with_s(2).threads(2)).unwrap();
        s1.validate(&inst).unwrap();
        s2.validate(&inst).unwrap();
        assert!(
            s2.served_users() + 2 >= s1.served_users(),
            "s=2 served {} far below s=1 served {}",
            s2.served_users(),
            s1.served_users()
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let inst = two_cluster_instance();
        let a = approx_alg(&inst, &ApproxConfig::with_s(2).threads(1)).unwrap();
        let b = approx_alg(&inst, &ApproxConfig::with_s(2).threads(4)).unwrap();
        assert_eq!(a.served_users(), b.served_users());
        assert_eq!(a.deployment().placements(), b.deployment().placements());
    }

    #[test]
    fn pruned_run_never_beats_unpruned() {
        let inst = two_cluster_instance();
        let pruned = approx_alg(&inst, &ApproxConfig::with_s(2).threads(2)).unwrap();
        let unpruned = approx_alg(
            &inst,
            &ApproxConfig::with_s(2)
                .threads(2)
                .prune_chain(false)
                .prune_empty_seeds(false),
        )
        .unwrap();
        pruned.validate(&inst).unwrap();
        unpruned.validate(&inst).unwrap();
        // The pruned sweep evaluates a subset of the full enumeration.
        assert!(pruned.served_users() <= unpruned.served_users());
        // …and still retains a competitive value on this instance.
        assert!(2 * pruned.served_users() >= unpruned.served_users());
    }

    #[test]
    fn respects_max_subsets_guard() {
        let inst = two_cluster_instance();
        let err = approx_alg(&inst, &ApproxConfig::with_s(2).max_subsets(1)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameters(_)));
    }

    #[test]
    fn rejects_oversized_s() {
        let inst = two_cluster_instance();
        assert!(approx_alg(&inst, &ApproxConfig::with_s(0)).is_err());
        assert!(approx_alg(&inst, &ApproxConfig::with_s(7)).is_err()); // K = 6
    }

    #[test]
    fn single_uav_fleet_still_works() {
        let mut b = Instance::builder(grid(300.0, 900.0), 600.0);
        b.add_user(Point2::new(450.0, 450.0), 2_000.0);
        b.add_user(Point2::new(460.0, 450.0), 2_000.0);
        b.add_uav(1, UavRadio::new(30.0, 5.0, 500.0));
        let inst = b.build().unwrap();
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1)).unwrap();
        sol.validate(&inst).unwrap();
        assert_eq!(sol.served_users(), 1);
        assert_eq!(sol.deployment().len(), 1);
    }

    #[test]
    fn no_coverable_users_falls_back_gracefully() {
        let mut b = Instance::builder(grid(300.0, 900.0), 600.0);
        b.add_user(Point2::new(450.0, 450.0), 1e15); // unservable rate
        b.add_uav(2, UavRadio::new(30.0, 5.0, 500.0));
        b.add_uav(2, UavRadio::new(30.0, 5.0, 500.0));
        let inst = b.build().unwrap();
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1)).unwrap();
        sol.validate(&inst).unwrap();
        assert_eq!(sol.served_users(), 0);
    }

    #[test]
    fn chain_feasibility_logic() {
        // Pool of 3 nodes on a line: distances 0-1: 1, 1-2: 1, 0-2: 2.
        let d = vec![
            vec![Some(0), Some(1), Some(2)],
            vec![Some(1), Some(0), Some(1)],
            vec![Some(2), Some(1), Some(0)],
        ];
        // Budget 1 between consecutive seeds: {0, 2} infeasible, but
        // {0, 1} and any ordering of {0, 1, 2} with budgets [1, 1]
        // feasible via the middle node.
        assert!(chain_feasible(&d, &[0, 1], &[1]));
        assert!(!chain_feasible(&d, &[0, 2], &[1]));
        assert!(chain_feasible(&d, &[0, 2], &[2]));
        assert!(chain_feasible(&d, &[0, 1, 2], &[1, 1]));
        assert!(chain_feasible(&d, &[2, 0, 1], &[1, 1])); // order-free
    }

    #[test]
    fn config_accessors_reflect_builders() {
        let c = ApproxConfig::with_s(3);
        assert_eq!(c.s(), 3);
        assert!(c.is_chain_pruning());
        assert!(c.is_empty_seed_pruning());
        assert!(c.is_leftover_deployment());
        assert!(c.num_threads() >= 1);
        let c = c
            .prune_chain(false)
            .prune_empty_seeds(false)
            .leftover_deployment(false)
            .threads(0); // clamped up to 1
        assert!(!c.is_chain_pruning());
        assert!(!c.is_empty_seed_pruning());
        assert!(!c.is_leftover_deployment());
        assert_eq!(c.num_threads(), 1);
    }

    #[test]
    fn more_uavs_than_cells_is_handled() {
        // K = 12 UAVs over a 3×3 grid (m = 9): at most 9 can deploy.
        let mut b = Instance::builder(grid(300.0, 900.0), 450.0);
        for i in 0..10 {
            b.add_user(Point2::new(80.0 + 75.0 * i as f64, 450.0), 2_000.0);
        }
        for _ in 0..12 {
            b.add_uav(1, UavRadio::new(30.0, 5.0, 400.0));
        }
        let inst = b.build().unwrap();
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1).threads(1)).unwrap();
        sol.validate(&inst).unwrap();
        assert!(sol.deployment().len() <= 9);
        assert!(sol.served_users() > 0);
    }

    #[test]
    fn gateway_constraint_is_honored() {
        // Same two-cluster zone, but the uplink vehicle parks at the
        // south-west corner; the winning deployment must reach it.
        let mut b = Instance::builder(grid(300.0, 1500.0), 450.0);
        for i in 0..6 {
            b.add_user(Point2::new(1_300.0 + 10.0 * i as f64, 1_380.0), 2_000.0);
        }
        b.gateway(Point2::new(0.0, 0.0));
        for cap in [4u32, 3, 3, 2, 2, 2, 2, 2] {
            b.add_uav(cap, UavRadio::new(30.0, 5.0, 400.0));
        }
        let inst = b.build().unwrap();
        assert!(!inst.gateway_cells().is_empty());
        let sol = approx_alg(&inst, &ApproxConfig::with_s(1).threads(2)).unwrap();
        sol.validate(&inst).unwrap();
        assert!(sol
            .deployment()
            .locations()
            .iter()
            .any(|&l| inst.is_gateway_cell(l)));
        assert!(sol.served_users() > 0);
    }

    #[test]
    fn stats_account_for_all_subsets() {
        let inst = two_cluster_instance();
        let (_, stats) = approx_alg_with_stats(&inst, &ApproxConfig::with_s(2).threads(2)).unwrap();
        assert_eq!(
            stats.subsets_enumerated,
            stats.subsets_evaluated + stats.subsets_chain_pruned
        );
        assert!(stats.subsets_unconnectable <= stats.subsets_evaluated);
    }
}
