//! Error types of the core crate.

use crate::connecting::ConnectError;
use crate::solution::ValidationError;
use crate::verify::VerifyError;
use std::error::Error;
use std::fmt;
use uavnet_graph::SubstrateError;

/// Errors raised while building instances or running the deployment
/// algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The instance under construction is malformed.
    InvalidInstance(String),
    /// The algorithm parameters are incompatible with the instance
    /// (e.g. `s` exceeds the number of UAVs or candidate locations).
    InvalidParameters(String),
    /// No feasible deployment exists under the given constraints.
    Infeasible(String),
    /// A produced solution failed independent validation.
    Validation(ValidationError),
    /// Locations could not be connected through relays (e.g. the
    /// survivor set of a fault spans severed components).
    Connect(ConnectError),
    /// A differential oracle of the verification harness found two
    /// supposedly equivalent computations disagreeing (including the
    /// incremental-vs-cold oracle guarding [`crate::SolverLoop`]).
    Verification(VerifyError),
    /// The connectivity substrate could not be built for the instance
    /// (e.g. the location graph exceeds the `u16` hop-matrix limit).
    Substrate(SubstrateError),
    /// A subset-sweep worker thread panicked. The payload is the
    /// worker's panic message; the sweep joins every remaining worker
    /// before surfacing this, so no thread is left running.
    Sweep(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidInstance(msg) => write!(f, "invalid instance: {msg}"),
            CoreError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            CoreError::Infeasible(msg) => write!(f, "infeasible: {msg}"),
            CoreError::Validation(e) => write!(f, "validation failed: {e}"),
            CoreError::Connect(e) => write!(f, "connection failed: {e}"),
            CoreError::Verification(e) => write!(f, "verification failed: {e}"),
            CoreError::Substrate(e) => write!(f, "substrate build failed: {e}"),
            CoreError::Sweep(msg) => write!(f, "subset-sweep worker panicked: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Validation(e) => Some(e),
            CoreError::Connect(e) => Some(e),
            CoreError::Verification(e) => Some(e),
            CoreError::Substrate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidationError> for CoreError {
    fn from(e: ValidationError) -> Self {
        CoreError::Validation(e)
    }
}

impl From<ConnectError> for CoreError {
    fn from(e: ConnectError) -> Self {
        CoreError::Connect(e)
    }
}

impl From<VerifyError> for CoreError {
    fn from(e: VerifyError) -> Self {
        CoreError::Verification(e)
    }
}

impl From<SubstrateError> for CoreError {
    fn from(e: SubstrateError) -> Self {
        CoreError::Substrate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InvalidParameters("s=5 but K=3".into());
        assert!(e.to_string().contains("s=5"));
        let e = CoreError::Infeasible("no connected subset".into());
        assert!(e.to_string().contains("infeasible"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<CoreError>();
    }
}
